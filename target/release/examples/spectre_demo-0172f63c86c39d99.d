/root/repo/target/release/examples/spectre_demo-0172f63c86c39d99.d: examples/spectre_demo.rs

/root/repo/target/release/examples/spectre_demo-0172f63c86c39d99: examples/spectre_demo.rs

examples/spectre_demo.rs:
