/root/repo/target/release/examples/parsec_smp-fc387e0d6b258ad7.d: examples/parsec_smp.rs

/root/repo/target/release/examples/parsec_smp-fc387e0d6b258ad7: examples/parsec_smp.rs

examples/parsec_smp.rs:
