/root/repo/target/release/examples/design_space-a7369c87faf485d2.d: examples/design_space.rs

/root/repo/target/release/examples/design_space-a7369c87faf485d2: examples/design_space.rs

examples/design_space.rs:
