/root/repo/target/release/examples/quickstart-16f7b60b4d86c87f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-16f7b60b4d86c87f: examples/quickstart.rs

examples/quickstart.rs:
