/root/repo/target/release/deps/fig4-6a0f3b8d80f6ba76.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-6a0f3b8d80f6ba76: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
