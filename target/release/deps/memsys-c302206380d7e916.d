/root/repo/target/release/deps/memsys-c302206380d7e916.d: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs

/root/repo/target/release/deps/memsys-c302206380d7e916: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs

crates/memsys/src/lib.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/dram.rs:
crates/memsys/src/hierarchy.rs:
crates/memsys/src/mesi.rs:
crates/memsys/src/mshr.rs:
crates/memsys/src/prefetch.rs:
crates/memsys/src/tlb.rs:
crates/memsys/src/types.rs:
