/root/repo/target/release/deps/fig9-5db58003d5937230.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-5db58003d5937230: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
