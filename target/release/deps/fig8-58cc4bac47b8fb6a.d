/root/repo/target/release/deps/fig8-58cc4bac47b8fb6a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-58cc4bac47b8fb6a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
