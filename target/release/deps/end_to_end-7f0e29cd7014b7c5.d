/root/repo/target/release/deps/end_to_end-7f0e29cd7014b7c5.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-7f0e29cd7014b7c5: tests/end_to_end.rs

tests/end_to_end.rs:
