/root/repo/target/release/deps/simkit-056aaff0b703c1d5.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/release/deps/libsimkit-056aaff0b703c1d5.rlib: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/release/deps/libsimkit-056aaff0b703c1d5.rmeta: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
