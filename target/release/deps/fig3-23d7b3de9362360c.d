/root/repo/target/release/deps/fig3-23d7b3de9362360c.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-23d7b3de9362360c: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
