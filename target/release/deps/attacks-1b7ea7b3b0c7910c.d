/root/repo/target/release/deps/attacks-1b7ea7b3b0c7910c.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/release/deps/attacks-1b7ea7b3b0c7910c: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
