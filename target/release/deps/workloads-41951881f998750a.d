/root/repo/target/release/deps/workloads-41951881f998750a.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/workloads-41951881f998750a: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
