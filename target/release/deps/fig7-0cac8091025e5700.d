/root/repo/target/release/deps/fig7-0cac8091025e5700.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-0cac8091025e5700: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
