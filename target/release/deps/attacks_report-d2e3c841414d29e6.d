/root/repo/target/release/deps/attacks_report-d2e3c841414d29e6.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/release/deps/attacks_report-d2e3c841414d29e6: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
