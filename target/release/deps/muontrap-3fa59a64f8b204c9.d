/root/repo/target/release/deps/muontrap-3fa59a64f8b204c9.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/release/deps/libmuontrap-3fa59a64f8b204c9.rlib: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/release/deps/libmuontrap-3fa59a64f8b204c9.rmeta: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
