/root/repo/target/release/deps/fig3-defffc5c6f2b57eb.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-defffc5c6f2b57eb: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
