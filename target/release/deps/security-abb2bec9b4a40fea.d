/root/repo/target/release/deps/security-abb2bec9b4a40fea.d: tests/security.rs

/root/repo/target/release/deps/security-abb2bec9b4a40fea: tests/security.rs

tests/security.rs:
