/root/repo/target/release/deps/uarch_isa-b57d915226d91360.d: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

/root/repo/target/release/deps/libuarch_isa-b57d915226d91360.rlib: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

/root/repo/target/release/deps/libuarch_isa-b57d915226d91360.rmeta: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

crates/uarch-isa/src/lib.rs:
crates/uarch-isa/src/inst.rs:
crates/uarch-isa/src/interp.rs:
crates/uarch-isa/src/mem.rs:
crates/uarch-isa/src/prog.rs:
crates/uarch-isa/src/reg.rs:
