/root/repo/target/release/deps/fig7-44a460eec0978c48.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-44a460eec0978c48: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
