/root/repo/target/release/deps/fig8-48d24243e30ffeac.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-48d24243e30ffeac: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
