/root/repo/target/release/deps/report-1f125dbcf258117a.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-1f125dbcf258117a: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
