/root/repo/target/release/deps/report-b54cdd823f888843.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-b54cdd823f888843: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
