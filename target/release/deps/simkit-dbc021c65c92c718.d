/root/repo/target/release/deps/simkit-dbc021c65c92c718.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/release/deps/simkit-dbc021c65c92c718: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
