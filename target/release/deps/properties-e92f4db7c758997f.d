/root/repo/target/release/deps/properties-e92f4db7c758997f.d: tests/properties.rs

/root/repo/target/release/deps/properties-e92f4db7c758997f: tests/properties.rs

tests/properties.rs:
