/root/repo/target/release/deps/muontrap-0a61debdbc198dfb.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/release/deps/muontrap-0a61debdbc198dfb: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
