/root/repo/target/release/deps/workloads-99f6c60cf140bf0f.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libworkloads-99f6c60cf140bf0f.rlib: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libworkloads-99f6c60cf140bf0f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
