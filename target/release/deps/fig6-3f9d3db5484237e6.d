/root/repo/target/release/deps/fig6-3f9d3db5484237e6.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-3f9d3db5484237e6: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
