/root/repo/target/release/deps/uarch_isa-a3a39e44c67314f3.d: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

/root/repo/target/release/deps/uarch_isa-a3a39e44c67314f3: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

crates/uarch-isa/src/lib.rs:
crates/uarch-isa/src/inst.rs:
crates/uarch-isa/src/interp.rs:
crates/uarch-isa/src/mem.rs:
crates/uarch-isa/src/prog.rs:
crates/uarch-isa/src/reg.rs:
