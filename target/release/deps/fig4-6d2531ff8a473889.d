/root/repo/target/release/deps/fig4-6d2531ff8a473889.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-6d2531ff8a473889: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
