/root/repo/target/release/deps/muontrap_repro-f9d0dadea85e08e1.d: src/lib.rs

/root/repo/target/release/deps/libmuontrap_repro-f9d0dadea85e08e1.rlib: src/lib.rs

/root/repo/target/release/deps/libmuontrap_repro-f9d0dadea85e08e1.rmeta: src/lib.rs

src/lib.rs:
