/root/repo/target/release/deps/ooo_core-9b0fea9c38b543b9.d: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/release/deps/libooo_core-9b0fea9c38b543b9.rlib: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/release/deps/libooo_core-9b0fea9c38b543b9.rmeta: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

crates/ooo-core/src/lib.rs:
crates/ooo-core/src/branch.rs:
crates/ooo-core/src/context.rs:
crates/ooo-core/src/core.rs:
crates/ooo-core/src/events.rs:
crates/ooo-core/src/memmodel.rs:
