/root/repo/target/release/deps/simsys-e75f8e6e6009b199.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/release/deps/simsys-e75f8e6e6009b199: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
