/root/repo/target/release/deps/fig5-dc5b67df4eae739f.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-dc5b67df4eae739f: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
