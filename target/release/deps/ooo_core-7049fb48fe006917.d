/root/repo/target/release/deps/ooo_core-7049fb48fe006917.d: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/release/deps/ooo_core-7049fb48fe006917: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

crates/ooo-core/src/lib.rs:
crates/ooo-core/src/branch.rs:
crates/ooo-core/src/context.rs:
crates/ooo-core/src/core.rs:
crates/ooo-core/src/events.rs:
crates/ooo-core/src/memmodel.rs:
