/root/repo/target/release/deps/memsys-a7d71cc9e1342f75.d: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs

/root/repo/target/release/deps/libmemsys-a7d71cc9e1342f75.rlib: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs

/root/repo/target/release/deps/libmemsys-a7d71cc9e1342f75.rmeta: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs

crates/memsys/src/lib.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/dram.rs:
crates/memsys/src/hierarchy.rs:
crates/memsys/src/mesi.rs:
crates/memsys/src/mshr.rs:
crates/memsys/src/prefetch.rs:
crates/memsys/src/tlb.rs:
crates/memsys/src/types.rs:
