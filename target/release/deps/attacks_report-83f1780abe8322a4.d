/root/repo/target/release/deps/attacks_report-83f1780abe8322a4.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/release/deps/attacks_report-83f1780abe8322a4: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
