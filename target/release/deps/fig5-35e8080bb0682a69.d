/root/repo/target/release/deps/fig5-35e8080bb0682a69.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-35e8080bb0682a69: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
