/root/repo/target/release/deps/attacks-97de4fc47f8c8c5d.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/release/deps/libattacks-97de4fc47f8c8c5d.rlib: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/release/deps/libattacks-97de4fc47f8c8c5d.rmeta: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
