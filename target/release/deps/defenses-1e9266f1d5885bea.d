/root/repo/target/release/deps/defenses-1e9266f1d5885bea.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/release/deps/libdefenses-1e9266f1d5885bea.rlib: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/release/deps/libdefenses-1e9266f1d5885bea.rmeta: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
