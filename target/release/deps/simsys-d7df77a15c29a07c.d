/root/repo/target/release/deps/simsys-d7df77a15c29a07c.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/release/deps/libsimsys-d7df77a15c29a07c.rlib: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/release/deps/libsimsys-d7df77a15c29a07c.rmeta: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
