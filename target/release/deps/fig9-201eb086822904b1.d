/root/repo/target/release/deps/fig9-201eb086822904b1.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-201eb086822904b1: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
