/root/repo/target/release/deps/table1-24359b6f31a7f9f0.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-24359b6f31a7f9f0: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
