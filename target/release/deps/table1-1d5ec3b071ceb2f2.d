/root/repo/target/release/deps/table1-1d5ec3b071ceb2f2.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-1d5ec3b071ceb2f2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
