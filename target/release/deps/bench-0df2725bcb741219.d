/root/repo/target/release/deps/bench-0df2725bcb741219.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/bench-0df2725bcb741219: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
