/root/repo/target/release/deps/golden_model-208d5218a0c0f7c8.d: tests/golden_model.rs

/root/repo/target/release/deps/golden_model-208d5218a0c0f7c8: tests/golden_model.rs

tests/golden_model.rs:
