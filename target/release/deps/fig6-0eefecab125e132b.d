/root/repo/target/release/deps/fig6-0eefecab125e132b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-0eefecab125e132b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
