/root/repo/target/release/deps/muontrap_repro-05bfd05aa4225190.d: src/lib.rs

/root/repo/target/release/deps/muontrap_repro-05bfd05aa4225190: src/lib.rs

src/lib.rs:
