/root/repo/target/release/deps/defenses-695b054efffdb4ec.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/release/deps/defenses-695b054efffdb4ec: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
