/root/repo/target/release/deps/bench-d3b669f40a496a47.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libbench-d3b669f40a496a47.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libbench-d3b669f40a496a47.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
