/root/repo/target/release/deps/session_acceptance-002ba5700fa67b1e.d: crates/bench/tests/session_acceptance.rs

/root/repo/target/release/deps/session_acceptance-002ba5700fa67b1e: crates/bench/tests/session_acceptance.rs

crates/bench/tests/session_acceptance.rs:

# env-dep:CARGO_BIN_EXE_fig3=/root/repo/target/release/fig3
