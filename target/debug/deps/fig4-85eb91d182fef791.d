/root/repo/target/debug/deps/fig4-85eb91d182fef791.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-85eb91d182fef791: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
