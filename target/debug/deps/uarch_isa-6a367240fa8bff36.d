/root/repo/target/debug/deps/uarch_isa-6a367240fa8bff36.d: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libuarch_isa-6a367240fa8bff36.rmeta: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs Cargo.toml

crates/uarch-isa/src/lib.rs:
crates/uarch-isa/src/inst.rs:
crates/uarch-isa/src/interp.rs:
crates/uarch-isa/src/mem.rs:
crates/uarch-isa/src/prog.rs:
crates/uarch-isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
