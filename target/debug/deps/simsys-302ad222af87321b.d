/root/repo/target/debug/deps/simsys-302ad222af87321b.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libsimsys-302ad222af87321b.rmeta: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs Cargo.toml

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
