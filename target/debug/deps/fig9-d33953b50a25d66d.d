/root/repo/target/debug/deps/fig9-d33953b50a25d66d.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-d33953b50a25d66d.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
