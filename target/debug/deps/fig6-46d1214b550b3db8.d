/root/repo/target/debug/deps/fig6-46d1214b550b3db8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-46d1214b550b3db8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
