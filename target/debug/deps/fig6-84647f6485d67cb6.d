/root/repo/target/debug/deps/fig6-84647f6485d67cb6.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-84647f6485d67cb6.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
