/root/repo/target/debug/deps/muontrap-94bbeaf16bcf5339.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/debug/deps/libmuontrap-94bbeaf16bcf5339.rlib: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/debug/deps/libmuontrap-94bbeaf16bcf5339.rmeta: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
