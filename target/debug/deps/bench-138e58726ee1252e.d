/root/repo/target/debug/deps/bench-138e58726ee1252e.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/bench-138e58726ee1252e: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
