/root/repo/target/debug/deps/fig3-3e602dbb3f125fdb.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-3e602dbb3f125fdb: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
