/root/repo/target/debug/deps/fig7-977ef27f25b7ecb5.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-977ef27f25b7ecb5.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
