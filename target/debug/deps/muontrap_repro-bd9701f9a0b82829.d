/root/repo/target/debug/deps/muontrap_repro-bd9701f9a0b82829.d: src/lib.rs

/root/repo/target/debug/deps/muontrap_repro-bd9701f9a0b82829: src/lib.rs

src/lib.rs:
