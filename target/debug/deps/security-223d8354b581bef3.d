/root/repo/target/debug/deps/security-223d8354b581bef3.d: tests/security.rs

/root/repo/target/debug/deps/security-223d8354b581bef3: tests/security.rs

tests/security.rs:
