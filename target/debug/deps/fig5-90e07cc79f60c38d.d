/root/repo/target/debug/deps/fig5-90e07cc79f60c38d.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-90e07cc79f60c38d.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
