/root/repo/target/debug/deps/fig5_size_sweep-b65523d572768620.d: crates/bench/benches/fig5_size_sweep.rs

/root/repo/target/debug/deps/fig5_size_sweep-b65523d572768620: crates/bench/benches/fig5_size_sweep.rs

crates/bench/benches/fig5_size_sweep.rs:
