/root/repo/target/debug/deps/simkit-cc7648302201541c.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsimkit-cc7648302201541c.rmeta: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
