/root/repo/target/debug/deps/bench-99d89ca8d8f6d8fa.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libbench-99d89ca8d8f6d8fa.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
