/root/repo/target/debug/deps/fig4-daddae08785d9c6d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-daddae08785d9c6d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
