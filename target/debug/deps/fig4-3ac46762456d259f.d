/root/repo/target/debug/deps/fig4-3ac46762456d259f.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-3ac46762456d259f: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
