/root/repo/target/debug/deps/simsys-df82c023ad7b2d13.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/debug/deps/libsimsys-df82c023ad7b2d13.rmeta: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
