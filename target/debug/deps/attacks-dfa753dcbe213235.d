/root/repo/target/debug/deps/attacks-dfa753dcbe213235.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/debug/deps/libattacks-dfa753dcbe213235.rmeta: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
