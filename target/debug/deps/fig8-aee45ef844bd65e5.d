/root/repo/target/debug/deps/fig8-aee45ef844bd65e5.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-aee45ef844bd65e5: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
