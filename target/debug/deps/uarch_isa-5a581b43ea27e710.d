/root/repo/target/debug/deps/uarch_isa-5a581b43ea27e710.d: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

/root/repo/target/debug/deps/uarch_isa-5a581b43ea27e710: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

crates/uarch-isa/src/lib.rs:
crates/uarch-isa/src/inst.rs:
crates/uarch-isa/src/interp.rs:
crates/uarch-isa/src/mem.rs:
crates/uarch-isa/src/prog.rs:
crates/uarch-isa/src/reg.rs:
