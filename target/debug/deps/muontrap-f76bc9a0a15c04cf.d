/root/repo/target/debug/deps/muontrap-f76bc9a0a15c04cf.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/debug/deps/libmuontrap-f76bc9a0a15c04cf.rmeta: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
