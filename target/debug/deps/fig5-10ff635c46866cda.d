/root/repo/target/debug/deps/fig5-10ff635c46866cda.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-10ff635c46866cda.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
