/root/repo/target/debug/deps/fig4-2907730bc8a8389a.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-2907730bc8a8389a.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
