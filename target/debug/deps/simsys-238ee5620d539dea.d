/root/repo/target/debug/deps/simsys-238ee5620d539dea.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/debug/deps/simsys-238ee5620d539dea: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
