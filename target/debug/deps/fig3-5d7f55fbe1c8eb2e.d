/root/repo/target/debug/deps/fig3-5d7f55fbe1c8eb2e.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5d7f55fbe1c8eb2e: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
