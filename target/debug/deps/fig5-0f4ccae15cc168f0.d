/root/repo/target/debug/deps/fig5-0f4ccae15cc168f0.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-0f4ccae15cc168f0.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
