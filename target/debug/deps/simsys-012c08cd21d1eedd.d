/root/repo/target/debug/deps/simsys-012c08cd21d1eedd.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/debug/deps/libsimsys-012c08cd21d1eedd.rmeta: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
