/root/repo/target/debug/deps/muontrap_repro-6d59dbe7c2785e19.d: src/lib.rs

/root/repo/target/debug/deps/libmuontrap_repro-6d59dbe7c2785e19.rlib: src/lib.rs

/root/repo/target/debug/deps/libmuontrap_repro-6d59dbe7c2785e19.rmeta: src/lib.rs

src/lib.rs:
