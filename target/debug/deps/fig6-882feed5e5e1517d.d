/root/repo/target/debug/deps/fig6-882feed5e5e1517d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-882feed5e5e1517d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
