/root/repo/target/debug/deps/attacks-1b75e94511683f32.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/debug/deps/libattacks-1b75e94511683f32.rlib: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/debug/deps/libattacks-1b75e94511683f32.rmeta: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
