/root/repo/target/debug/deps/table1-c0c83dd7a1f3dca7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c0c83dd7a1f3dca7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
