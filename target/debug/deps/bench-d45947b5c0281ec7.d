/root/repo/target/debug/deps/bench-d45947b5c0281ec7.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libbench-d45947b5c0281ec7.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
