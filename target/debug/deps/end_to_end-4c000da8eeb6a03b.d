/root/repo/target/debug/deps/end_to_end-4c000da8eeb6a03b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-4c000da8eeb6a03b.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
