/root/repo/target/debug/deps/fig8-b91b31f22488fe11.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-b91b31f22488fe11: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
