/root/repo/target/debug/deps/muontrap-02178d48b412ad8a.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/debug/deps/muontrap-02178d48b412ad8a: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
