/root/repo/target/debug/deps/fig6_assoc_sweep-7db64d8ee71de070.d: crates/bench/benches/fig6_assoc_sweep.rs

/root/repo/target/debug/deps/fig6_assoc_sweep-7db64d8ee71de070: crates/bench/benches/fig6_assoc_sweep.rs

crates/bench/benches/fig6_assoc_sweep.rs:
