/root/repo/target/debug/deps/bench-02fd49b44f14dc49.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/bench-02fd49b44f14dc49: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
