/root/repo/target/debug/deps/fig3-3a3f5d21b8def64b.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-3a3f5d21b8def64b.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
