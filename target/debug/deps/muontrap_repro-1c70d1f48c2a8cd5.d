/root/repo/target/debug/deps/muontrap_repro-1c70d1f48c2a8cd5.d: src/lib.rs

/root/repo/target/debug/deps/libmuontrap_repro-1c70d1f48c2a8cd5.rmeta: src/lib.rs

src/lib.rs:
