/root/repo/target/debug/deps/workloads-09e9c15368b89491.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libworkloads-09e9c15368b89491.rlib: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libworkloads-09e9c15368b89491.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
