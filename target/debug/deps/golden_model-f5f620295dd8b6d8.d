/root/repo/target/debug/deps/golden_model-f5f620295dd8b6d8.d: tests/golden_model.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_model-f5f620295dd8b6d8.rmeta: tests/golden_model.rs Cargo.toml

tests/golden_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
