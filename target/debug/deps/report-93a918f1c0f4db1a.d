/root/repo/target/debug/deps/report-93a918f1c0f4db1a.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-93a918f1c0f4db1a: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
