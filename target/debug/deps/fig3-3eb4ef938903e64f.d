/root/repo/target/debug/deps/fig3-3eb4ef938903e64f.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-3eb4ef938903e64f.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
