/root/repo/target/debug/deps/fig7_invalidate_rate-b41932688dcc33dc.d: crates/bench/benches/fig7_invalidate_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_invalidate_rate-b41932688dcc33dc.rmeta: crates/bench/benches/fig7_invalidate_rate.rs Cargo.toml

crates/bench/benches/fig7_invalidate_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
