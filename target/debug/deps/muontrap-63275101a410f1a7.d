/root/repo/target/debug/deps/muontrap-63275101a410f1a7.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/debug/deps/libmuontrap-63275101a410f1a7.rlib: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/debug/deps/libmuontrap-63275101a410f1a7.rmeta: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
