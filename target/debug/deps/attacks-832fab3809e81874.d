/root/repo/target/debug/deps/attacks-832fab3809e81874.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-832fab3809e81874.rmeta: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs Cargo.toml

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
