/root/repo/target/debug/deps/table1-316db85f99df4fe4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-316db85f99df4fe4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
