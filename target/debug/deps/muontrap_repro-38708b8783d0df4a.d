/root/repo/target/debug/deps/muontrap_repro-38708b8783d0df4a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmuontrap_repro-38708b8783d0df4a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
