/root/repo/target/debug/deps/fig9-235938335559d7f4.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-235938335559d7f4.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
