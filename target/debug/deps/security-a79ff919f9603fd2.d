/root/repo/target/debug/deps/security-a79ff919f9603fd2.d: tests/security.rs

/root/repo/target/debug/deps/libsecurity-a79ff919f9603fd2.rmeta: tests/security.rs

tests/security.rs:
