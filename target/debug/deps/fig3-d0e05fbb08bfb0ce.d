/root/repo/target/debug/deps/fig3-d0e05fbb08bfb0ce.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-d0e05fbb08bfb0ce.rmeta: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
