/root/repo/target/debug/deps/session_acceptance-03f460afd1f42f1f.d: crates/bench/tests/session_acceptance.rs

/root/repo/target/debug/deps/libsession_acceptance-03f460afd1f42f1f.rmeta: crates/bench/tests/session_acceptance.rs

crates/bench/tests/session_acceptance.rs:

# env-dep:CARGO_BIN_EXE_fig3=placeholder:fig3
