/root/repo/target/debug/deps/attacks_report-d3372b8faeb476c9.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/debug/deps/attacks_report-d3372b8faeb476c9: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
