/root/repo/target/debug/deps/fig5_size_sweep-ef3234366200c060.d: crates/bench/benches/fig5_size_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_size_sweep-ef3234366200c060.rmeta: crates/bench/benches/fig5_size_sweep.rs Cargo.toml

crates/bench/benches/fig5_size_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
