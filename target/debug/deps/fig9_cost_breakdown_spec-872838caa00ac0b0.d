/root/repo/target/debug/deps/fig9_cost_breakdown_spec-872838caa00ac0b0.d: crates/bench/benches/fig9_cost_breakdown_spec.rs

/root/repo/target/debug/deps/libfig9_cost_breakdown_spec-872838caa00ac0b0.rmeta: crates/bench/benches/fig9_cost_breakdown_spec.rs

crates/bench/benches/fig9_cost_breakdown_spec.rs:
