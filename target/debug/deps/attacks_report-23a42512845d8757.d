/root/repo/target/debug/deps/attacks_report-23a42512845d8757.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/debug/deps/attacks_report-23a42512845d8757: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
