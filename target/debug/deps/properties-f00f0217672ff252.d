/root/repo/target/debug/deps/properties-f00f0217672ff252.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f00f0217672ff252.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
