/root/repo/target/debug/deps/attacks-bc338544925a9b8d.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/debug/deps/attacks-bc338544925a9b8d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
