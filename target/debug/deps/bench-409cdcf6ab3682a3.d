/root/repo/target/debug/deps/bench-409cdcf6ab3682a3.d: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libbench-409cdcf6ab3682a3.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
