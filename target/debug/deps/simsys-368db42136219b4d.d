/root/repo/target/debug/deps/simsys-368db42136219b4d.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libsimsys-368db42136219b4d.rmeta: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs Cargo.toml

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
