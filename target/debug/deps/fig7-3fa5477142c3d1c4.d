/root/repo/target/debug/deps/fig7-3fa5477142c3d1c4.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-3fa5477142c3d1c4.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
