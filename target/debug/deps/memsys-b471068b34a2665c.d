/root/repo/target/debug/deps/memsys-b471068b34a2665c.d: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libmemsys-b471068b34a2665c.rmeta: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs Cargo.toml

crates/memsys/src/lib.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/dram.rs:
crates/memsys/src/hierarchy.rs:
crates/memsys/src/mesi.rs:
crates/memsys/src/mshr.rs:
crates/memsys/src/prefetch.rs:
crates/memsys/src/tlb.rs:
crates/memsys/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
