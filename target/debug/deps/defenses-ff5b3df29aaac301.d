/root/repo/target/debug/deps/defenses-ff5b3df29aaac301.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/debug/deps/libdefenses-ff5b3df29aaac301.rlib: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/debug/deps/libdefenses-ff5b3df29aaac301.rmeta: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
