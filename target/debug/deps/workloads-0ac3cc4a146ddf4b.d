/root/repo/target/debug/deps/workloads-0ac3cc4a146ddf4b.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libworkloads-0ac3cc4a146ddf4b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
