/root/repo/target/debug/deps/fig9-74981610895ddaf0.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-74981610895ddaf0: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
