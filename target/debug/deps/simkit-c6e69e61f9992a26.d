/root/repo/target/debug/deps/simkit-c6e69e61f9992a26.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-c6e69e61f9992a26.rmeta: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
