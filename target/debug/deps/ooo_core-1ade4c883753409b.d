/root/repo/target/debug/deps/ooo_core-1ade4c883753409b.d: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/debug/deps/ooo_core-1ade4c883753409b: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

crates/ooo-core/src/lib.rs:
crates/ooo-core/src/branch.rs:
crates/ooo-core/src/context.rs:
crates/ooo-core/src/core.rs:
crates/ooo-core/src/events.rs:
crates/ooo-core/src/memmodel.rs:
