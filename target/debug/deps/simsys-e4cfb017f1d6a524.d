/root/repo/target/debug/deps/simsys-e4cfb017f1d6a524.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/debug/deps/libsimsys-e4cfb017f1d6a524.rlib: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/debug/deps/libsimsys-e4cfb017f1d6a524.rmeta: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
