/root/repo/target/debug/deps/fig8-cf1b5f79cd120a34.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-cf1b5f79cd120a34.rmeta: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
