/root/repo/target/debug/deps/fig6-191456355d2d7532.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-191456355d2d7532.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
