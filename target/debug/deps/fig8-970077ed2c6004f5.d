/root/repo/target/debug/deps/fig8-970077ed2c6004f5.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-970077ed2c6004f5.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
