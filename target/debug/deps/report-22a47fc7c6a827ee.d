/root/repo/target/debug/deps/report-22a47fc7c6a827ee.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/libreport-22a47fc7c6a827ee.rmeta: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
