/root/repo/target/debug/deps/session_acceptance-f84f5d902fbd835c.d: crates/bench/tests/session_acceptance.rs

/root/repo/target/debug/deps/session_acceptance-f84f5d902fbd835c: crates/bench/tests/session_acceptance.rs

crates/bench/tests/session_acceptance.rs:

# env-dep:CARGO_BIN_EXE_fig3=/root/repo/target/debug/fig3
