/root/repo/target/debug/deps/table1-35a5274e69042f3b.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-35a5274e69042f3b.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
