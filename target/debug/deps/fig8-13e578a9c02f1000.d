/root/repo/target/debug/deps/fig8-13e578a9c02f1000.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-13e578a9c02f1000: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
