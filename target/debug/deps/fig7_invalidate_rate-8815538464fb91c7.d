/root/repo/target/debug/deps/fig7_invalidate_rate-8815538464fb91c7.d: crates/bench/benches/fig7_invalidate_rate.rs

/root/repo/target/debug/deps/libfig7_invalidate_rate-8815538464fb91c7.rmeta: crates/bench/benches/fig7_invalidate_rate.rs

crates/bench/benches/fig7_invalidate_rate.rs:
