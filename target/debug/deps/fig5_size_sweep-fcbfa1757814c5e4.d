/root/repo/target/debug/deps/fig5_size_sweep-fcbfa1757814c5e4.d: crates/bench/benches/fig5_size_sweep.rs

/root/repo/target/debug/deps/libfig5_size_sweep-fcbfa1757814c5e4.rmeta: crates/bench/benches/fig5_size_sweep.rs

crates/bench/benches/fig5_size_sweep.rs:
