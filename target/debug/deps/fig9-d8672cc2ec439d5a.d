/root/repo/target/debug/deps/fig9-d8672cc2ec439d5a.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-d8672cc2ec439d5a.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
