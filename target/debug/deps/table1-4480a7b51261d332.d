/root/repo/target/debug/deps/table1-4480a7b51261d332.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4480a7b51261d332: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
