/root/repo/target/debug/deps/ooo_core-c0d1c34308f289f3.d: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/debug/deps/libooo_core-c0d1c34308f289f3.rlib: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/debug/deps/libooo_core-c0d1c34308f289f3.rmeta: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

crates/ooo-core/src/lib.rs:
crates/ooo-core/src/branch.rs:
crates/ooo-core/src/context.rs:
crates/ooo-core/src/core.rs:
crates/ooo-core/src/events.rs:
crates/ooo-core/src/memmodel.rs:
