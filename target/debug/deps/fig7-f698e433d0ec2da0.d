/root/repo/target/debug/deps/fig7-f698e433d0ec2da0.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-f698e433d0ec2da0: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
