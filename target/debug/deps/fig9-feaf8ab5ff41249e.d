/root/repo/target/debug/deps/fig9-feaf8ab5ff41249e.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-feaf8ab5ff41249e: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
