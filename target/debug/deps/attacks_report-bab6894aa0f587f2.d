/root/repo/target/debug/deps/attacks_report-bab6894aa0f587f2.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/debug/deps/attacks_report-bab6894aa0f587f2: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
