/root/repo/target/debug/deps/simsys-742274f68809c5ef.d: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/debug/deps/libsimsys-742274f68809c5ef.rlib: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

/root/repo/target/debug/deps/libsimsys-742274f68809c5ef.rmeta: crates/simsys/src/lib.rs crates/simsys/src/experiment.rs crates/simsys/src/session.rs crates/simsys/src/system.rs

crates/simsys/src/lib.rs:
crates/simsys/src/experiment.rs:
crates/simsys/src/session.rs:
crates/simsys/src/system.rs:
