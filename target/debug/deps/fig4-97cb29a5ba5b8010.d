/root/repo/target/debug/deps/fig4-97cb29a5ba5b8010.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-97cb29a5ba5b8010.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
