/root/repo/target/debug/deps/fig8-571fd51d92859bf9.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-571fd51d92859bf9: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
