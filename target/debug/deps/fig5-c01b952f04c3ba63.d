/root/repo/target/debug/deps/fig5-c01b952f04c3ba63.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-c01b952f04c3ba63: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
