/root/repo/target/debug/deps/memsys-48fbcf708c69c515.d: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs

/root/repo/target/debug/deps/libmemsys-48fbcf708c69c515.rmeta: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs

crates/memsys/src/lib.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/dram.rs:
crates/memsys/src/hierarchy.rs:
crates/memsys/src/mesi.rs:
crates/memsys/src/mshr.rs:
crates/memsys/src/prefetch.rs:
crates/memsys/src/tlb.rs:
crates/memsys/src/types.rs:
