/root/repo/target/debug/deps/fig7-af09627b8e446f1d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-af09627b8e446f1d: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
