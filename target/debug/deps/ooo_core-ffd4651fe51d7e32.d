/root/repo/target/debug/deps/ooo_core-ffd4651fe51d7e32.d: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/debug/deps/libooo_core-ffd4651fe51d7e32.rmeta: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

crates/ooo-core/src/lib.rs:
crates/ooo-core/src/branch.rs:
crates/ooo-core/src/context.rs:
crates/ooo-core/src/core.rs:
crates/ooo-core/src/events.rs:
crates/ooo-core/src/memmodel.rs:
