/root/repo/target/debug/deps/fig4_parsec-7fe95d9ba875f35d.d: crates/bench/benches/fig4_parsec.rs

/root/repo/target/debug/deps/libfig4_parsec-7fe95d9ba875f35d.rmeta: crates/bench/benches/fig4_parsec.rs

crates/bench/benches/fig4_parsec.rs:
