/root/repo/target/debug/deps/fig4_parsec-e03aab86ee076af6.d: crates/bench/benches/fig4_parsec.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_parsec-e03aab86ee076af6.rmeta: crates/bench/benches/fig4_parsec.rs Cargo.toml

crates/bench/benches/fig4_parsec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
