/root/repo/target/debug/deps/muontrap-7ed5919a537e0dbb.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

/root/repo/target/debug/deps/libmuontrap-7ed5919a537e0dbb.rmeta: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
