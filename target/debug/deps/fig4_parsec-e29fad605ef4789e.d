/root/repo/target/debug/deps/fig4_parsec-e29fad605ef4789e.d: crates/bench/benches/fig4_parsec.rs

/root/repo/target/debug/deps/fig4_parsec-e29fad605ef4789e: crates/bench/benches/fig4_parsec.rs

crates/bench/benches/fig4_parsec.rs:
