/root/repo/target/debug/deps/fig7-ab0722b7dfd2a2cc.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-ab0722b7dfd2a2cc: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
