/root/repo/target/debug/deps/bench-14c40ccb8a31a74f.d: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libbench-14c40ccb8a31a74f.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
