/root/repo/target/debug/deps/simkit-640cc416de9bb653.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-640cc416de9bb653.rlib: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-640cc416de9bb653.rmeta: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
