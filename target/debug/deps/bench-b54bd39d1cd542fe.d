/root/repo/target/debug/deps/bench-b54bd39d1cd542fe.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libbench-b54bd39d1cd542fe.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libbench-b54bd39d1cd542fe.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
