/root/repo/target/debug/deps/fig3_spec-1f9b5a77d4e66ca0.d: crates/bench/benches/fig3_spec.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_spec-1f9b5a77d4e66ca0.rmeta: crates/bench/benches/fig3_spec.rs Cargo.toml

crates/bench/benches/fig3_spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
