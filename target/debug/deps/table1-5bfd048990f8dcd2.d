/root/repo/target/debug/deps/table1-5bfd048990f8dcd2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-5bfd048990f8dcd2.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
