/root/repo/target/debug/deps/workloads-b181c80db304a809.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libworkloads-b181c80db304a809.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
