/root/repo/target/debug/deps/attacks-fceb514a1b14ff83.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-fceb514a1b14ff83.rmeta: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs Cargo.toml

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
