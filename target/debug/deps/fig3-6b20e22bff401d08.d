/root/repo/target/debug/deps/fig3-6b20e22bff401d08.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-6b20e22bff401d08: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
