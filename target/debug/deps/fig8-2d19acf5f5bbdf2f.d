/root/repo/target/debug/deps/fig8-2d19acf5f5bbdf2f.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-2d19acf5f5bbdf2f.rmeta: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
