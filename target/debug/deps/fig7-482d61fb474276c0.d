/root/repo/target/debug/deps/fig7-482d61fb474276c0.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-482d61fb474276c0.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
