/root/repo/target/debug/deps/end_to_end-c3bc96b884c2c143.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c3bc96b884c2c143: tests/end_to_end.rs

tests/end_to_end.rs:
