/root/repo/target/debug/deps/report-2af59d3e382e6510.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-2af59d3e382e6510: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
