/root/repo/target/debug/deps/fig8_cost_breakdown_parsec-e134fe15680bb9a3.d: crates/bench/benches/fig8_cost_breakdown_parsec.rs

/root/repo/target/debug/deps/fig8_cost_breakdown_parsec-e134fe15680bb9a3: crates/bench/benches/fig8_cost_breakdown_parsec.rs

crates/bench/benches/fig8_cost_breakdown_parsec.rs:
