/root/repo/target/debug/deps/properties-37773e9e93cbfd6e.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-37773e9e93cbfd6e.rmeta: tests/properties.rs

tests/properties.rs:
