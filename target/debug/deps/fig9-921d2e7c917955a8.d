/root/repo/target/debug/deps/fig9-921d2e7c917955a8.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-921d2e7c917955a8: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
