/root/repo/target/debug/deps/fig9-e56517d57b58760b.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-e56517d57b58760b.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
