/root/repo/target/debug/deps/fig7-c3dc2b6240e118f8.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c3dc2b6240e118f8: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
