/root/repo/target/debug/deps/defenses-169fa0cab4e06c8d.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs Cargo.toml

/root/repo/target/debug/deps/libdefenses-169fa0cab4e06c8d.rmeta: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs Cargo.toml

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
