/root/repo/target/debug/deps/fig9_cost_breakdown_spec-eaa3258ad09783c1.d: crates/bench/benches/fig9_cost_breakdown_spec.rs

/root/repo/target/debug/deps/fig9_cost_breakdown_spec-eaa3258ad09783c1: crates/bench/benches/fig9_cost_breakdown_spec.rs

crates/bench/benches/fig9_cost_breakdown_spec.rs:
