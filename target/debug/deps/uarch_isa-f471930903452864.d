/root/repo/target/debug/deps/uarch_isa-f471930903452864.d: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

/root/repo/target/debug/deps/libuarch_isa-f471930903452864.rmeta: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

crates/uarch-isa/src/lib.rs:
crates/uarch-isa/src/inst.rs:
crates/uarch-isa/src/interp.rs:
crates/uarch-isa/src/mem.rs:
crates/uarch-isa/src/prog.rs:
crates/uarch-isa/src/reg.rs:
