/root/repo/target/debug/deps/fig8_cost_breakdown_parsec-f6acfdcc6672e6f1.d: crates/bench/benches/fig8_cost_breakdown_parsec.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_cost_breakdown_parsec-f6acfdcc6672e6f1.rmeta: crates/bench/benches/fig8_cost_breakdown_parsec.rs Cargo.toml

crates/bench/benches/fig8_cost_breakdown_parsec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
