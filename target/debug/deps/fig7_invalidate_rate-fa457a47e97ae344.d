/root/repo/target/debug/deps/fig7_invalidate_rate-fa457a47e97ae344.d: crates/bench/benches/fig7_invalidate_rate.rs

/root/repo/target/debug/deps/fig7_invalidate_rate-fa457a47e97ae344: crates/bench/benches/fig7_invalidate_rate.rs

crates/bench/benches/fig7_invalidate_rate.rs:
