/root/repo/target/debug/deps/table1-798db7adf8fe5769.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-798db7adf8fe5769.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
