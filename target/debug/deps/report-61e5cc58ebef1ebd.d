/root/repo/target/debug/deps/report-61e5cc58ebef1ebd.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/libreport-61e5cc58ebef1ebd.rmeta: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
