/root/repo/target/debug/deps/workloads-6a58f56ec4369e3c.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libworkloads-6a58f56ec4369e3c.rlib: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libworkloads-6a58f56ec4369e3c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
