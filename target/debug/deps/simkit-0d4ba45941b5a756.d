/root/repo/target/debug/deps/simkit-0d4ba45941b5a756.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-0d4ba45941b5a756.rmeta: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
