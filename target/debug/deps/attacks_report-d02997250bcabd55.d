/root/repo/target/debug/deps/attacks_report-d02997250bcabd55.d: crates/bench/src/bin/attacks_report.rs Cargo.toml

/root/repo/target/debug/deps/libattacks_report-d02997250bcabd55.rmeta: crates/bench/src/bin/attacks_report.rs Cargo.toml

crates/bench/src/bin/attacks_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
