/root/repo/target/debug/deps/properties-5faf0f033e4b21f4.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5faf0f033e4b21f4: tests/properties.rs

tests/properties.rs:
