/root/repo/target/debug/deps/fig9-f1f05d924ac18294.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-f1f05d924ac18294: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
