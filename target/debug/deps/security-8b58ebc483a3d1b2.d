/root/repo/target/debug/deps/security-8b58ebc483a3d1b2.d: tests/security.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity-8b58ebc483a3d1b2.rmeta: tests/security.rs Cargo.toml

tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
