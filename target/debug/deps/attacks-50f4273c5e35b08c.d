/root/repo/target/debug/deps/attacks-50f4273c5e35b08c.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/debug/deps/libattacks-50f4273c5e35b08c.rlib: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/debug/deps/libattacks-50f4273c5e35b08c.rmeta: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
