/root/repo/target/debug/deps/attacks_report-8bf4e83e6eb79468.d: crates/bench/src/bin/attacks_report.rs Cargo.toml

/root/repo/target/debug/deps/libattacks_report-8bf4e83e6eb79468.rmeta: crates/bench/src/bin/attacks_report.rs Cargo.toml

crates/bench/src/bin/attacks_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
