/root/repo/target/debug/deps/fig5-8ccbf5a6bbfdf006.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-8ccbf5a6bbfdf006: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
