/root/repo/target/debug/deps/fig8_cost_breakdown_parsec-6290d071974458be.d: crates/bench/benches/fig8_cost_breakdown_parsec.rs

/root/repo/target/debug/deps/libfig8_cost_breakdown_parsec-6290d071974458be.rmeta: crates/bench/benches/fig8_cost_breakdown_parsec.rs

crates/bench/benches/fig8_cost_breakdown_parsec.rs:
