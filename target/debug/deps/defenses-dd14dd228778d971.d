/root/repo/target/debug/deps/defenses-dd14dd228778d971.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/debug/deps/libdefenses-dd14dd228778d971.rmeta: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
