/root/repo/target/debug/deps/session_acceptance-24b16bc9899f9d25.d: crates/bench/tests/session_acceptance.rs Cargo.toml

/root/repo/target/debug/deps/libsession_acceptance-24b16bc9899f9d25.rmeta: crates/bench/tests/session_acceptance.rs Cargo.toml

crates/bench/tests/session_acceptance.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_fig3=placeholder:fig3
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
