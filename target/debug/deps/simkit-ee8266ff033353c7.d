/root/repo/target/debug/deps/simkit-ee8266ff033353c7.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/simkit-ee8266ff033353c7: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
