/root/repo/target/debug/deps/fig6_assoc_sweep-d958d92d784ea214.d: crates/bench/benches/fig6_assoc_sweep.rs

/root/repo/target/debug/deps/libfig6_assoc_sweep-d958d92d784ea214.rmeta: crates/bench/benches/fig6_assoc_sweep.rs

crates/bench/benches/fig6_assoc_sweep.rs:
