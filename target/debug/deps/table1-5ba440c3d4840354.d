/root/repo/target/debug/deps/table1-5ba440c3d4840354.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-5ba440c3d4840354.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
