/root/repo/target/debug/deps/fig3-5efd15165d8f9027.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5efd15165d8f9027: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
