/root/repo/target/debug/deps/defenses-df3a3c4bf0331c62.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/debug/deps/defenses-df3a3c4bf0331c62: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
