/root/repo/target/debug/deps/attacks_report-c8a45dcb4fb98c17.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/debug/deps/libattacks_report-c8a45dcb4fb98c17.rmeta: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
