/root/repo/target/debug/deps/ooo_core-ea5a3fa89b0e66f3.d: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs Cargo.toml

/root/repo/target/debug/deps/libooo_core-ea5a3fa89b0e66f3.rmeta: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs Cargo.toml

crates/ooo-core/src/lib.rs:
crates/ooo-core/src/branch.rs:
crates/ooo-core/src/context.rs:
crates/ooo-core/src/core.rs:
crates/ooo-core/src/events.rs:
crates/ooo-core/src/memmodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
