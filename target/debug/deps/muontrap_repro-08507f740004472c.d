/root/repo/target/debug/deps/muontrap_repro-08507f740004472c.d: src/lib.rs

/root/repo/target/debug/deps/libmuontrap_repro-08507f740004472c.rlib: src/lib.rs

/root/repo/target/debug/deps/libmuontrap_repro-08507f740004472c.rmeta: src/lib.rs

src/lib.rs:
