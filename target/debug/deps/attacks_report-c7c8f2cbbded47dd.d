/root/repo/target/debug/deps/attacks_report-c7c8f2cbbded47dd.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/debug/deps/attacks_report-c7c8f2cbbded47dd: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
