/root/repo/target/debug/deps/fig3_spec-36b1e95c787debde.d: crates/bench/benches/fig3_spec.rs

/root/repo/target/debug/deps/libfig3_spec-36b1e95c787debde.rmeta: crates/bench/benches/fig3_spec.rs

crates/bench/benches/fig3_spec.rs:
