/root/repo/target/debug/deps/fig7-8778abbc2876a6ca.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-8778abbc2876a6ca.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
