/root/repo/target/debug/deps/report-9ed20926ee4d2093.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-9ed20926ee4d2093.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
