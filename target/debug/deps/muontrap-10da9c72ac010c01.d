/root/repo/target/debug/deps/muontrap-10da9c72ac010c01.d: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libmuontrap-10da9c72ac010c01.rmeta: crates/muontrap/src/lib.rs crates/muontrap/src/filter_cache.rs crates/muontrap/src/filter_tlb.rs crates/muontrap/src/model.rs Cargo.toml

crates/muontrap/src/lib.rs:
crates/muontrap/src/filter_cache.rs:
crates/muontrap/src/filter_tlb.rs:
crates/muontrap/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
