/root/repo/target/debug/deps/attacks-4ab3f3decaefcd3f.d: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

/root/repo/target/debug/deps/libattacks-4ab3f3decaefcd3f.rmeta: crates/attacks/src/lib.rs crates/attacks/src/litmus.rs crates/attacks/src/spectre.rs

crates/attacks/src/lib.rs:
crates/attacks/src/litmus.rs:
crates/attacks/src/spectre.rs:
