/root/repo/target/debug/deps/fig4-8fe2a83cd3dd76be.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-8fe2a83cd3dd76be.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
