/root/repo/target/debug/deps/table1-8fc52f7e45df6d93.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-8fc52f7e45df6d93: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
