/root/repo/target/debug/deps/simkit-b1ad664411202928.d: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-b1ad664411202928.rlib: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

/root/repo/target/debug/deps/libsimkit-b1ad664411202928.rmeta: crates/simkit/src/lib.rs crates/simkit/src/addr.rs crates/simkit/src/config.rs crates/simkit/src/cycles.rs crates/simkit/src/json.rs crates/simkit/src/rng.rs crates/simkit/src/stats.rs

crates/simkit/src/lib.rs:
crates/simkit/src/addr.rs:
crates/simkit/src/config.rs:
crates/simkit/src/cycles.rs:
crates/simkit/src/json.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/stats.rs:
