/root/repo/target/debug/deps/fig5-4b649c1da4efc926.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-4b649c1da4efc926.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
