/root/repo/target/debug/deps/memsys-4cf85729e9ea323d.d: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libmemsys-4cf85729e9ea323d.rmeta: crates/memsys/src/lib.rs crates/memsys/src/cache.rs crates/memsys/src/dram.rs crates/memsys/src/hierarchy.rs crates/memsys/src/mesi.rs crates/memsys/src/mshr.rs crates/memsys/src/prefetch.rs crates/memsys/src/tlb.rs crates/memsys/src/types.rs Cargo.toml

crates/memsys/src/lib.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/dram.rs:
crates/memsys/src/hierarchy.rs:
crates/memsys/src/mesi.rs:
crates/memsys/src/mshr.rs:
crates/memsys/src/prefetch.rs:
crates/memsys/src/tlb.rs:
crates/memsys/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
