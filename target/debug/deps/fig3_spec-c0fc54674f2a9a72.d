/root/repo/target/debug/deps/fig3_spec-c0fc54674f2a9a72.d: crates/bench/benches/fig3_spec.rs

/root/repo/target/debug/deps/fig3_spec-c0fc54674f2a9a72: crates/bench/benches/fig3_spec.rs

crates/bench/benches/fig3_spec.rs:
