/root/repo/target/debug/deps/report-b365ecb5064a9a0f.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-b365ecb5064a9a0f: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
