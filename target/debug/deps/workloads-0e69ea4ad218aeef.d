/root/repo/target/debug/deps/workloads-0e69ea4ad218aeef.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/workloads-0e69ea4ad218aeef: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
