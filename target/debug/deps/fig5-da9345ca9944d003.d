/root/repo/target/debug/deps/fig5-da9345ca9944d003.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-da9345ca9944d003: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
