/root/repo/target/debug/deps/fig3-39735576ee152f9a.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-39735576ee152f9a.rmeta: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
