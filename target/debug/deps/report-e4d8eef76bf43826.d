/root/repo/target/debug/deps/report-e4d8eef76bf43826.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-e4d8eef76bf43826.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
