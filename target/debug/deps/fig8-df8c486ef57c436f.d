/root/repo/target/debug/deps/fig8-df8c486ef57c436f.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-df8c486ef57c436f.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
