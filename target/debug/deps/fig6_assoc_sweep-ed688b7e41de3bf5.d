/root/repo/target/debug/deps/fig6_assoc_sweep-ed688b7e41de3bf5.d: crates/bench/benches/fig6_assoc_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_assoc_sweep-ed688b7e41de3bf5.rmeta: crates/bench/benches/fig6_assoc_sweep.rs Cargo.toml

crates/bench/benches/fig6_assoc_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
