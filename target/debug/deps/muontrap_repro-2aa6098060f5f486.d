/root/repo/target/debug/deps/muontrap_repro-2aa6098060f5f486.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmuontrap_repro-2aa6098060f5f486.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
