/root/repo/target/debug/deps/fig6-f759575c66709e00.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-f759575c66709e00.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
