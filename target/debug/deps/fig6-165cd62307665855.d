/root/repo/target/debug/deps/fig6-165cd62307665855.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-165cd62307665855: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
