/root/repo/target/debug/deps/attacks_report-a46ecc7e81d43dd0.d: crates/bench/src/bin/attacks_report.rs

/root/repo/target/debug/deps/libattacks_report-a46ecc7e81d43dd0.rmeta: crates/bench/src/bin/attacks_report.rs

crates/bench/src/bin/attacks_report.rs:
