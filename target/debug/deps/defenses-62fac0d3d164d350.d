/root/repo/target/debug/deps/defenses-62fac0d3d164d350.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/debug/deps/libdefenses-62fac0d3d164d350.rmeta: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
