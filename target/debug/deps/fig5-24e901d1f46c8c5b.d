/root/repo/target/debug/deps/fig5-24e901d1f46c8c5b.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-24e901d1f46c8c5b: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
