/root/repo/target/debug/deps/defenses-4c2fbbf4b4a5972a.d: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/debug/deps/libdefenses-4c2fbbf4b4a5972a.rlib: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

/root/repo/target/debug/deps/libdefenses-4c2fbbf4b4a5972a.rmeta: crates/defenses/src/lib.rs crates/defenses/src/invisispec.rs crates/defenses/src/stt.rs crates/defenses/src/unprotected.rs

crates/defenses/src/lib.rs:
crates/defenses/src/invisispec.rs:
crates/defenses/src/stt.rs:
crates/defenses/src/unprotected.rs:
