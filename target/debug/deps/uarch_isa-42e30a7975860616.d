/root/repo/target/debug/deps/uarch_isa-42e30a7975860616.d: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

/root/repo/target/debug/deps/libuarch_isa-42e30a7975860616.rmeta: crates/uarch-isa/src/lib.rs crates/uarch-isa/src/inst.rs crates/uarch-isa/src/interp.rs crates/uarch-isa/src/mem.rs crates/uarch-isa/src/prog.rs crates/uarch-isa/src/reg.rs

crates/uarch-isa/src/lib.rs:
crates/uarch-isa/src/inst.rs:
crates/uarch-isa/src/interp.rs:
crates/uarch-isa/src/mem.rs:
crates/uarch-isa/src/prog.rs:
crates/uarch-isa/src/reg.rs:
