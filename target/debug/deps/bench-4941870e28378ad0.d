/root/repo/target/debug/deps/bench-4941870e28378ad0.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libbench-4941870e28378ad0.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libbench-4941870e28378ad0.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
