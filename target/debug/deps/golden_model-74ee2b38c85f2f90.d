/root/repo/target/debug/deps/golden_model-74ee2b38c85f2f90.d: tests/golden_model.rs

/root/repo/target/debug/deps/libgolden_model-74ee2b38c85f2f90.rmeta: tests/golden_model.rs

tests/golden_model.rs:
