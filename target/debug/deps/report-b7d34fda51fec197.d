/root/repo/target/debug/deps/report-b7d34fda51fec197.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-b7d34fda51fec197: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
