/root/repo/target/debug/deps/workloads-17f448f463456a3e.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-17f448f463456a3e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/parsec.rs crates/workloads/src/spec.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
