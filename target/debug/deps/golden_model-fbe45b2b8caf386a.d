/root/repo/target/debug/deps/golden_model-fbe45b2b8caf386a.d: tests/golden_model.rs

/root/repo/target/debug/deps/golden_model-fbe45b2b8caf386a: tests/golden_model.rs

tests/golden_model.rs:
