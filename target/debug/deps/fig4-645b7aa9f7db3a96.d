/root/repo/target/debug/deps/fig4-645b7aa9f7db3a96.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-645b7aa9f7db3a96: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
