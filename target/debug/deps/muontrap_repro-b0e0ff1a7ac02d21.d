/root/repo/target/debug/deps/muontrap_repro-b0e0ff1a7ac02d21.d: src/lib.rs

/root/repo/target/debug/deps/libmuontrap_repro-b0e0ff1a7ac02d21.rmeta: src/lib.rs

src/lib.rs:
