/root/repo/target/debug/deps/fig9_cost_breakdown_spec-a5baabfb79db1433.d: crates/bench/benches/fig9_cost_breakdown_spec.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_cost_breakdown_spec-a5baabfb79db1433.rmeta: crates/bench/benches/fig9_cost_breakdown_spec.rs Cargo.toml

crates/bench/benches/fig9_cost_breakdown_spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
