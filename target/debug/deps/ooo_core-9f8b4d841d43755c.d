/root/repo/target/debug/deps/ooo_core-9f8b4d841d43755c.d: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/debug/deps/libooo_core-9f8b4d841d43755c.rlib: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

/root/repo/target/debug/deps/libooo_core-9f8b4d841d43755c.rmeta: crates/ooo-core/src/lib.rs crates/ooo-core/src/branch.rs crates/ooo-core/src/context.rs crates/ooo-core/src/core.rs crates/ooo-core/src/events.rs crates/ooo-core/src/memmodel.rs

crates/ooo-core/src/lib.rs:
crates/ooo-core/src/branch.rs:
crates/ooo-core/src/context.rs:
crates/ooo-core/src/core.rs:
crates/ooo-core/src/events.rs:
crates/ooo-core/src/memmodel.rs:
