/root/repo/target/debug/deps/fig6-d5cf621c6cfa769b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d5cf621c6cfa769b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
