/root/repo/target/debug/deps/fig4-c3398d831803a9fc.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-c3398d831803a9fc.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
