/root/repo/target/debug/examples/spectre_demo-e2a69424686a1ad3.d: examples/spectre_demo.rs

/root/repo/target/debug/examples/libspectre_demo-e2a69424686a1ad3.rmeta: examples/spectre_demo.rs

examples/spectre_demo.rs:
