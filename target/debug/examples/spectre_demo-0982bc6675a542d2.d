/root/repo/target/debug/examples/spectre_demo-0982bc6675a542d2.d: examples/spectre_demo.rs Cargo.toml

/root/repo/target/debug/examples/libspectre_demo-0982bc6675a542d2.rmeta: examples/spectre_demo.rs Cargo.toml

examples/spectre_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
