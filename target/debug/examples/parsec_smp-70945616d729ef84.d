/root/repo/target/debug/examples/parsec_smp-70945616d729ef84.d: examples/parsec_smp.rs

/root/repo/target/debug/examples/libparsec_smp-70945616d729ef84.rmeta: examples/parsec_smp.rs

examples/parsec_smp.rs:
