/root/repo/target/debug/examples/spectre_demo-08edaa16f77036de.d: examples/spectre_demo.rs

/root/repo/target/debug/examples/spectre_demo-08edaa16f77036de: examples/spectre_demo.rs

examples/spectre_demo.rs:
