/root/repo/target/debug/examples/parsec_smp-2d12ee428419f100.d: examples/parsec_smp.rs Cargo.toml

/root/repo/target/debug/examples/libparsec_smp-2d12ee428419f100.rmeta: examples/parsec_smp.rs Cargo.toml

examples/parsec_smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
