/root/repo/target/debug/examples/quickstart-712495eed88271de.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-712495eed88271de: examples/quickstart.rs

examples/quickstart.rs:
