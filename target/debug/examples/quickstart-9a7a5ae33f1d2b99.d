/root/repo/target/debug/examples/quickstart-9a7a5ae33f1d2b99.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9a7a5ae33f1d2b99.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
