/root/repo/target/debug/examples/quickstart-bff25b0b6fa3ce12.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-bff25b0b6fa3ce12.rmeta: examples/quickstart.rs

examples/quickstart.rs:
