/root/repo/target/debug/examples/design_space-bc535c203156d336.d: examples/design_space.rs

/root/repo/target/debug/examples/libdesign_space-bc535c203156d336.rmeta: examples/design_space.rs

examples/design_space.rs:
