/root/repo/target/debug/examples/parsec_smp-b6dac0734258ef70.d: examples/parsec_smp.rs

/root/repo/target/debug/examples/parsec_smp-b6dac0734258ef70: examples/parsec_smp.rs

examples/parsec_smp.rs:
