/root/repo/target/debug/examples/design_space-8ebb98414ccd7485.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-8ebb98414ccd7485: examples/design_space.rs

examples/design_space.rs:
