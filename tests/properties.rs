//! Property-style tests over the core data structures and invariants.
//!
//! The seed version of this file used `proptest`; the build runs offline with
//! no registry access, so these tests drive the same randomised properties
//! with the deterministic [`SimRng`] instead. Each property runs a fixed
//! number of seeded cases, so failures reproduce exactly.

use memsys::cache::CacheArray;
use memsys::MesiState;
use muontrap::FilterCache;
use muontrap_repro::prelude::*;
use ooo_core::memmodel::FixedLatencyMemory;
use simkit::addr::{LineAddr, VirtAddr};
use simkit::config::CacheConfig;
use simkit::cycles::Cycle;
use simkit::rng::SimRng;
use simkit::stats::{geometric_mean, Histogram, StatSet};
use simkit::timeq::{EventQueue, ServiceLaw, TimedServer};
use uarch_isa::inst::{eval_alu, AluOp, MemWidth};
use uarch_isa::mem::SparseMemory;
use uarch_isa::Interpreter;

/// Runs `body` once per seeded case, passing a per-case RNG. A failing case is
/// reported by its seed so it can be replayed in isolation.
fn for_each_case(cases: u64, mut body: impl FnMut(&mut SimRng)) {
    for seed in 0..cases {
        let mut rng = SimRng::seed_from(0x5eed_0000 + seed);
        body(&mut rng);
    }
}

// ---------------------------------------------------------------------------
// simkit invariants
// ---------------------------------------------------------------------------

#[test]
fn rng_below_always_respects_its_bound() {
    for_each_case(64, |rng| {
        let bound = rng.in_range(1, 1_000_000);
        let mut sampler = SimRng::seed_from(rng.next_u64());
        for _ in 0..64 {
            assert!(sampler.below(bound) < bound);
        }
    });
}

#[test]
fn rng_shuffle_is_a_permutation() {
    for_each_case(64, |rng| {
        let len = rng.below(64) as usize;
        let mut values: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    });
}

#[test]
fn geometric_mean_lies_between_min_and_max() {
    for_each_case(64, |rng| {
        let len = rng.in_range(1, 20) as usize;
        let values: Vec<f64> = (0..len).map(|_| 0.01 + rng.next_f64() * 99.99).collect();
        let g = geometric_mean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            g >= min * 0.999 && g <= max * 1.001,
            "geomean {g} outside [{min}, {max}]"
        );
    });
}

#[test]
fn histogram_counts_every_sample() {
    for_each_case(32, |rng| {
        let len = rng.below(200) as usize;
        let samples: Vec<u64> = (0..len).map(|_| rng.below(10_000)).collect();
        let mut h = Histogram::new(64, 32);
        for s in &samples {
            h.record(*s);
        }
        assert_eq!(h.count(), samples.len() as u64);
        let bucketed: u64 = (0..32).map(|i| h.bucket(i)).sum::<u64>() + h.overflow();
        assert_eq!(bucketed, samples.len() as u64);
    });
}

#[test]
fn stat_merge_is_additive() {
    for_each_case(64, |rng| {
        let a = rng.below(1_000_000);
        let b = rng.below(1_000_000);
        let mut s1 = StatSet::new();
        s1.add("x", a);
        let mut s2 = StatSet::new();
        s2.add("x", b);
        s1.merge(&s2);
        assert_eq!(s1.counter("x"), a + b);
    });
}

#[test]
fn alu_add_sub_round_trip() {
    for_each_case(128, |rng| {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let sum = eval_alu(AluOp::Add, a, b);
        assert_eq!(eval_alu(AluOp::Sub, sum, b), a);
        assert_eq!(eval_alu(AluOp::Xor, eval_alu(AluOp::Xor, a, b), b), a);
    });
}

// ---------------------------------------------------------------------------
// Sparse memory vs a reference model
// ---------------------------------------------------------------------------

#[test]
fn sparse_memory_matches_a_hashmap_model() {
    for_each_case(32, |rng| {
        let len = rng.in_range(1, 200) as usize;
        let ops: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.below(0x4000), rng.next_u64()))
            .collect();
        let mut memory = SparseMemory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, value) in &ops {
            let aligned = addr & !7;
            memory.write(VirtAddr::new(aligned), *value, MemWidth::Double);
            model.insert(aligned, *value);
        }
        for (addr, expected) in &model {
            assert_eq!(
                memory.read(VirtAddr::new(*addr), MemWidth::Double),
                *expected
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Cache array invariants
// ---------------------------------------------------------------------------

#[test]
fn cache_occupancy_never_exceeds_capacity_and_mru_is_resident() {
    for_each_case(32, |rng| {
        let len = rng.in_range(1, 300) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(256)).collect();
        let mut cache: CacheArray<()> = CacheArray::new(&CacheConfig::new(2048, 4, 1, 4), 64);
        for line in &lines {
            cache.insert(LineAddr::new(*line), MesiState::Shared, ());
            assert!(cache.occupancy() <= cache.capacity_lines());
            // The line just inserted must be resident (most recently used).
            assert!(cache.contains(LineAddr::new(*line)));
        }
        // Invalidate-all always empties the cache.
        cache.invalidate_all();
        assert_eq!(cache.occupancy(), 0);
    });
}

#[test]
fn cache_lookup_agrees_with_peek() {
    for_each_case(32, |rng| {
        let len = rng.in_range(1, 100) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(64)).collect();
        let mut cache: CacheArray<()> = CacheArray::new(&CacheConfig::new(1024, 2, 1, 4), 64);
        for line in &lines {
            cache.insert(LineAddr::new(*line), MesiState::Exclusive, ());
        }
        for line in 0u64..64 {
            let peeked = cache.peek(LineAddr::new(line)).is_some();
            let looked = cache.lookup(LineAddr::new(line)).is_some();
            assert_eq!(peeked, looked);
        }
    });
}

// ---------------------------------------------------------------------------
// Filter cache invariants
// ---------------------------------------------------------------------------

#[test]
fn filter_cache_flush_is_total_and_committed_bit_is_monotonic() {
    for_each_case(24, |rng| {
        let len = rng.in_range(1, 200) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(128)).collect();
        let mut filter = FilterCache::new(&CacheConfig::new(2048, 4, 1, 4), 64);
        for (i, line) in lines.iter().enumerate() {
            let addr = LineAddr::new(*line);
            filter.insert_speculative(
                addr,
                VirtAddr::new(line * 64),
                memsys::ServiceLevel::Dram,
                false,
                Cycle::new(i as u64),
            );
            // Newly inserted speculative lines are uncommitted.
            assert!(!filter.is_committed(addr));
            if i % 3 == 0 {
                filter.mark_committed(addr);
                assert!(filter.is_committed(addr));
            }
        }
        let occupancy = filter.occupancy();
        assert!(occupancy <= filter.capacity_lines());
        let dropped = filter.flush();
        assert_eq!(dropped, occupancy);
        assert_eq!(filter.occupancy(), 0);
        for line in &lines {
            assert!(!filter.contains(LineAddr::new(*line)));
        }
    });
}

// ---------------------------------------------------------------------------
// Time-queue properties: the event-driven core's scheduling primitives
// ---------------------------------------------------------------------------

#[test]
fn event_queue_drains_in_timestamp_then_payload_order() {
    for_each_case(64, |rng| {
        let len = rng.in_range(1, 400) as usize;
        let pushed: Vec<(Cycle, u64)> = (0..len)
            .map(|_| (Cycle::new(rng.below(10_000)), rng.next_u64()))
            .collect();
        let mut q: EventQueue<u64> = EventQueue::new();
        for (at, payload) in &pushed {
            q.push(*at, *payload);
        }
        assert_eq!(q.len(), len);
        let mut popped = Vec::new();
        while let Some(entry) = q.pop_due(Cycle::NEVER) {
            popped.push(entry);
        }
        assert!(q.is_empty());
        // Earliest-first, payload breaking ties — and nothing lost or invented.
        for pair in popped.windows(2) {
            assert!(pair[0] <= pair[1], "heap order violated: {pair:?}");
        }
        let mut expected = pushed.clone();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    });
}

#[test]
fn event_queue_never_releases_a_future_event() {
    for_each_case(64, |rng| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut now = Cycle::ZERO;
        let mut last_popped = Cycle::ZERO;
        let mut seq = 0u64;
        for _ in 0..300 {
            match rng.below(3) {
                // Schedule work at or after the current time.
                0 => {
                    q.push(now.saturating_add(rng.below(100)), seq);
                    seq += 1;
                }
                // Let time pass.
                1 => now = now.saturating_add(rng.below(50)),
                // Drain whatever is due.
                _ => {
                    while let Some((at, _)) = q.pop_due(now) {
                        assert!(at <= now, "popped an event from the future");
                        // All pushes were at-or-after their push-time `now`
                        // and `now` is monotone, so due events drain in order.
                        assert!(at >= last_popped, "completion order went backwards");
                        last_popped = at;
                    }
                    // After draining, nothing due remains (an empty queue
                    // reports `Cycle::NEVER`).
                    assert!(q.peek() > now);
                }
            }
        }
    });
}

#[test]
fn backpressured_requests_never_complete_ahead_of_accepted_ones() {
    for_each_case(64, |rng| {
        let latency = rng.in_range(1, 50);
        let capacity = rng.in_range(1, 8) as usize;
        let mut server =
            TimedServer::serialized(ServiceLaw::fixed(latency)).with_queue_capacity(capacity);
        let mut now = Cycle::ZERO;
        let mut last_ready = Cycle::ZERO;
        for _ in 0..100 {
            now = now.saturating_add(rng.below(latency * 2));
            match server.request(now, 0) {
                Ok(ticket) => {
                    assert!(
                        ticket.ready_at >= last_ready,
                        "serialized completions must be FIFO"
                    );
                    assert!(ticket.latency(now) >= latency, "service law undercut");
                    last_ready = ticket.ready_at;
                }
                Err(refused) => {
                    // A full queue refuses outright: nothing was enqueued, so
                    // the retry cannot jump ahead of already-accepted work.
                    assert!(refused.retry_at > now, "retry hint must be in the future");
                    now = refused.retry_at;
                    let ticket = server
                        .request(now, 0)
                        .expect("the oldest slot frees exactly at retry_at");
                    assert!(
                        ticket.ready_at >= last_ready,
                        "backpressured request reordered ahead of accepted ones"
                    );
                    last_ready = ticket.ready_at;
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Random programs: out-of-order core vs functional interpreter
// ---------------------------------------------------------------------------

/// Generates a random but always-terminating straight-line program: a mix of
/// ALU operations, stores and loads over a small scratch region, ending in a
/// halt. Control flow is exercised by the workload-level golden tests; here we
/// stress dataflow, forwarding and memory ordering.
fn random_program(ops: &[(u8, u8, u8, u8, i64)]) -> uarch_isa::Program {
    let mut b = ProgramBuilder::new("random");
    b.li(Reg::X1, 0x9000); // scratch base
    for (i, (kind, rd, rs1, rs2)) in ops
        .iter()
        .map(|(k, a, b_, c, _)| (*k, *a, *b_, *c))
        .enumerate()
    {
        let rd = Reg::from_index(1 + (rd as usize % 29));
        let rs1 = Reg::from_index(1 + (rs1 as usize % 29));
        let rs2 = Reg::from_index(1 + (rs2 as usize % 29));
        let imm = ops[i].4 % 64;
        match kind % 6 {
            0 => {
                b.add(rd, rs1, rs2);
            }
            1 => {
                b.alui(AluOp::Xor, rd, rs1, imm);
            }
            2 => {
                b.mul(rd, rs1, rs2);
            }
            3 => {
                // Aligned store into the scratch region.
                b.andi(Reg::X30, rs1, 0x1f8);
                b.add(Reg::X30, Reg::X30, Reg::X1);
                b.store(rs2, Reg::X30, 0);
            }
            4 => {
                // Aligned load from the scratch region.
                b.andi(Reg::X30, rs1, 0x1f8);
                b.add(Reg::X30, Reg::X30, Reg::X1);
                b.load(rd, Reg::X30, 0);
            }
            _ => {
                b.alui(AluOp::Add, rd, rs1, imm);
            }
        }
    }
    b.halt();
    b.build().expect("random straight-line program builds")
}

#[test]
fn out_of_order_core_matches_interpreter_on_random_programs() {
    for_each_case(32, |rng| {
        let len = rng.in_range(1, 60) as usize;
        let ops: Vec<(u8, u8, u8, u8, i64)> = (0..len)
            .map(|_| {
                (
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    rng.next_u64() as i64,
                )
            })
            .collect();
        let program = random_program(&ops);

        let mut interp = Interpreter::new(&program);
        let golden = interp.run(1_000_000).expect("interpreter halts");

        let cfg = SystemConfig::paper_default();
        let mut core = ooo_core::OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        core.run_to_halt(ThreadContext::new(program, 0), &mut mem, 10_000_000)
            .expect("core halts");
        let finished = core.swap_thread(None).expect("context");

        assert_eq!(finished.regs.snapshot(), golden.regs.snapshot());
    });
}

#[test]
fn event_driven_and_naive_loops_report_identical_timing() {
    // The event queue is a pure wall-clock optimisation: skipping idle cycles
    // and crediting them lazily must not change a single reported number.
    for_each_case(8, |rng| {
        let len = rng.in_range(1, 40) as usize;
        let ops: Vec<(u8, u8, u8, u8, i64)> = (0..len)
            .map(|_| {
                (
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    rng.next_u64() as i64,
                )
            })
            .collect();
        let program = random_program(&ops);
        let kind = if rng.below(2) == 0 {
            DefenseKind::Unprotected
        } else {
            DefenseKind::MuonTrap
        };
        let cfg = SystemConfig::small_test();
        let run = |fast_forward: bool| {
            let mut sys = System::new(&cfg, build_defense(kind, &cfg));
            sys.set_fast_forward(fast_forward);
            let process = sys.add_process();
            sys.add_thread(process, program.clone());
            sys.run(10_000_000)
        };
        let event_driven = run(true);
        let naive = run(false);
        assert_eq!(event_driven.cycles, naive.cycles, "cycle counts diverged");
        assert_eq!(event_driven.committed, naive.committed);
        assert_eq!(event_driven.completed, naive.completed);
        assert_eq!(event_driven.context_switches, naive.context_switches);
    });
}

// ---------------------------------------------------------------------------
// MuonTrap end-to-end invariants under random access sequences
// ---------------------------------------------------------------------------

#[test]
fn speculative_accesses_never_reach_the_non_speculative_hierarchy() {
    use ooo_core::memmodel::{MemAccessCtx, MemoryModel};
    for_each_case(24, |rng| {
        let len = rng.in_range(1, 80) as usize;
        let addrs: Vec<u64> = (0..len).map(|_| rng.below(0x80_000)).collect();
        let cfg = SystemConfig::paper_default();
        let mut mt = muontrap::MuonTrap::new(&cfg);
        for (i, raw) in addrs.iter().enumerate() {
            let vaddr = VirtAddr::new(0x10_0000 + (raw & !7));
            let ctx = MemAccessCtx::simple(
                0,
                vaddr,
                VirtAddr::new(0x40_0000),
                Cycle::new(i as u64 * 3),
                false,
            );
            let _ = mt.load(&ctx);
            let line = mt.phys_line(0, vaddr);
            assert!(
                !mt.hierarchy().own_l1_contains(0, line) && !mt.hierarchy().l2_contains(line),
                "speculative line {line:?} leaked into the non-speculative hierarchy"
            );
        }
        // After a domain switch nothing speculative survives anywhere.
        mt.on_domain_switch(
            0,
            ooo_core::DomainSwitch::ContextSwitch,
            Cycle::new(1_000_000),
        );
        assert_eq!(mt.data_filter_occupancy(0), 0);
    });
}

// ---------------------------------------------------------------------------
// store lease protocol invariants
// ---------------------------------------------------------------------------

/// Drives random interleavings of claim / heartbeat / expire / steal / done /
/// release over an in-memory store with a test clock, checking the protocol
/// invariants the sharded runner and the `fleet` supervisor rely on:
///
/// * **at most one owner per unit** — every observed transition is justified
///   by the lease state the step started from, and a lost lease never
///   heartbeats back to life;
/// * **`Stolen { previous }` names the real previous owner** — exactly the
///   lease on file the instant before the steal, and only ever a dead one;
/// * **no done unit is ever re-executed** — once a completion persisted the
///   entry, every later lease winner finds it and serves it cached.
#[test]
fn lease_state_machine_preserves_ownership_and_done_invariants() {
    use simkit::fingerprint::Fingerprint;
    use simsys::store::LeaseState;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let workload = spec_suite(Scale::Tiny).into_iter().next().unwrap();
    let config = SystemConfig::small_test();
    let result = simulate(&workload, DefenseKind::Unprotected, &config);
    let actors = ["shard-a", "shard-b", "shard-c"];
    let run = "prop-run";
    let ttl = 500u64;

    for_each_case(48, |rng| {
        let clock = Arc::new(AtomicU64::new(1_000_000));
        let store = ResultStore::in_memory().with_clock(Arc::clone(&clock));
        let key = Fingerprint(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
        let mut completed = false;
        let mut executions = 0u32;
        for _step in 0..120 {
            let actor = actors[rng.below(actors.len() as u64) as usize];
            let now = clock.load(Ordering::Relaxed);
            let prev = store.read_lease(key);
            match rng.below(10) {
                0..=3 => {
                    // Claim. Every outcome must be justified by `prev`.
                    let won = match store.try_lease(key, actor, run, ttl).unwrap() {
                        LeaseState::Acquired => {
                            assert!(prev.is_none(), "fresh acquire over a live lease");
                            true
                        }
                        LeaseState::Stolen { previous } => {
                            assert_eq!(previous, prev, "Stolen must name the real previous holder");
                            match &previous {
                                None => {}
                                Some(p) if p.done => assert!(
                                    !store.contains(key),
                                    "a done lease backed by an entry must never be stolen"
                                ),
                                Some(p) => assert!(
                                    now.saturating_sub(p.acquired_unix_ms) > p.ttl_ms,
                                    "stole from a live holder"
                                ),
                            }
                            true
                        }
                        LeaseState::Busy(info) => {
                            assert_eq!(Some(&info), prev.as_ref(), "Busy reports the holder");
                            if info.done {
                                assert!(
                                    store.contains(key),
                                    "done without an entry must be stolen, not waited on"
                                );
                            } else {
                                assert!(
                                    now.saturating_sub(info.acquired_unix_ms) <= info.ttl_ms,
                                    "an expired holder must be stolen, not waited on"
                                );
                            }
                            false
                        }
                    };
                    if won {
                        // The winner runs the executor's cached-check: a
                        // completed unit MUST be found in the store.
                        let hit = store.get(key);
                        if completed {
                            assert!(hit.is_some(), "a done unit was about to be re-executed");
                        }
                        match rng.below(3) {
                            0 if hit.is_none() => {
                                // Execute and complete.
                                executions += 1;
                                store.put(key, &result).unwrap();
                                store.mark_done(key, actor, run).unwrap();
                                completed = true;
                            }
                            0 => {
                                // Cached: record provenance without executing.
                                store.mark_done(key, actor, run).unwrap();
                            }
                            1 => store.release_lease(key), // clean walk-away
                            _ => {}                        // crash: abandon the lease
                        }
                    }
                }
                4..=5 => {
                    // Heartbeat: lands iff the exact live owner asks.
                    let ok = store.heartbeat_lease(key, actor, run, ttl).unwrap();
                    let expected = matches!(
                        &prev,
                        Some(p) if p.owner == actor && p.run_id == run && !p.done
                    );
                    assert_eq!(
                        ok, expected,
                        "heartbeat must land iff the caller still holds the lease"
                    );
                    match store.read_lease(key) {
                        after if !ok => {
                            assert_eq!(after, prev, "a refused heartbeat must write nothing")
                        }
                        Some(after) => {
                            assert_eq!(after.owner, actor);
                            assert_eq!(after.acquired_unix_ms, now, "a beat restamps to now");
                        }
                        None => panic!("a landed heartbeat cannot erase the lease"),
                    }
                }
                6..=7 => {
                    clock.fetch_add(rng.in_range(1, 800), Ordering::Relaxed);
                }
                8 => {
                    // Release — but only by the believed owner, as the
                    // runner does; unconditional removal is its own test.
                    if matches!(&prev, Some(p) if p.owner == actor && !p.done) {
                        store.release_lease(key);
                        assert_eq!(store.read_lease(key), None);
                    }
                }
                _ => {
                    assert_eq!(
                        store.completed_during(key, run),
                        matches!(&prev, Some(p) if p.done && p.run_id == run),
                        "completed_during mirrors the done marker"
                    );
                }
            }
        }
        if completed {
            assert_eq!(executions, 1, "a unit that completed executed exactly once");
            assert_eq!(store.get(key).as_ref(), Some(&result));
        }
    });
}

/// The single-owner invariant, witnessed at its sharpest point: the moment a
/// lease is stolen, the victim's heartbeats are dead forever — there is no
/// interleaving in which both the thief and the victim hold the unit.
#[test]
fn a_stolen_lease_never_heartbeats_for_its_previous_owner() {
    use simkit::fingerprint::Fingerprint;
    use simsys::store::LeaseState;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    for_each_case(32, |rng| {
        let clock = Arc::new(AtomicU64::new(1_000_000));
        let store = ResultStore::in_memory().with_clock(Arc::clone(&clock));
        let key = Fingerprint(rng.next_u64() as u128);
        let ttl = rng.in_range(100, 10_000);
        assert_eq!(
            store.try_lease(key, "victim", "run", ttl).unwrap(),
            LeaseState::Acquired
        );
        // Beat a few times; each restamp restarts the TTL window.
        for _ in 0..rng.below(4) {
            clock.fetch_add(rng.in_range(0, ttl), Ordering::Relaxed);
            assert!(store.heartbeat_lease(key, "victim", "run", ttl).unwrap());
        }
        // One TTL past the last beat, the thief takes it.
        clock.fetch_add(ttl + 1, Ordering::Relaxed);
        match store.try_lease(key, "thief", "run", ttl).unwrap() {
            LeaseState::Stolen { previous } => {
                let previous = previous.expect("the victim's lease was on file");
                assert_eq!(previous.owner, "victim");
            }
            other => panic!("expired lease must be stolen, got {other:?}"),
        }
        // The victim is dead to the protocol, at any later time.
        clock.fetch_add(rng.below(2 * ttl), Ordering::Relaxed);
        assert!(
            !store.heartbeat_lease(key, "victim", "run", ttl).unwrap(),
            "a stolen lease heartbeat back to life: two owners at once"
        );
        assert_eq!(store.read_lease(key).unwrap().owner, "thief");
    });
}
