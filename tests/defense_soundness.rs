//! The defense zoo's soundness matrix, in executable form: every litmus
//! attack (2–6) and the end-to-end Spectre attack must fail against every
//! *sound* defense — Fence, DelayLoads, SafeBet and MuonTrap — and must
//! still succeed against the leaky baselines (Unprotected and the
//! insecure-L0 strawman), otherwise the litmus is vacuous and "the defense
//! stopped it" means nothing.
//!
//! The matrix is then cross-validated against the static gadget census the
//! same way `tests/speclint_cross.rs` validates the unprotected baseline:
//! every statically flagged attack embodiment must correspond to a dynamic
//! attack that is neutralised under each sound defense and still leaks under
//! each leaky baseline. Finally, the Fence model is bounded against its
//! program-level twin: running a `-fenced` corpus program under Fence must
//! cost the same as running the original under Fence (the model *is* the
//! transformation, applied in hardware).

use attacks::litmus::run_litmus_suite;
use attacks::spectre::spectre_prime_probe_with_secret;
use bench::lint::corpus_census;
use muontrap_repro::prelude::*;
use speclint::AnalyzerConfig;

fn config() -> SystemConfig {
    SystemConfig::paper_default()
}

/// The defenses the zoo claims are sound: every attack must fail.
fn sound_defenses() -> [DefenseKind; 4] {
    [
        DefenseKind::Fence,
        DefenseKind::DelayLoads,
        DefenseKind::SafeBet,
        DefenseKind::MuonTrap,
    ]
}

/// The configurations the zoo uses as leaky ground truth: every attack must
/// succeed, proving the probes are not vacuous.
fn leaky_baselines() -> [DefenseKind; 2] {
    [DefenseKind::Unprotected, DefenseKind::InsecureL0]
}

/// The full dynamic outcome set for one defense: the five litmus attacks
/// plus the end-to-end Spectre attack, named like the litmus outcomes so the
/// census join below can treat them uniformly.
fn dynamic_outcomes(kind: DefenseKind, cfg: &SystemConfig) -> Vec<AttackOutcome> {
    let mut outcomes = run_litmus_suite(kind, cfg);
    let spectre = spectre_prime_probe_with_secret(kind, cfg, 9);
    outcomes.push(AttackOutcome::new(
        "attack 1: spectre prime+probe",
        kind.label(),
        spectre.leaked,
        String::new(),
    ));
    outcomes
}

#[test]
fn every_sound_defense_neutralises_the_full_litmus_suite() {
    let cfg = config();
    for kind in sound_defenses() {
        let outcomes = run_litmus_suite(kind, &cfg);
        assert_eq!(outcomes.len(), 5);
        for outcome in outcomes {
            assert!(
                !outcome.leaked,
                "{} must stop {}: {}",
                kind.label(),
                outcome.attack,
                outcome.detail
            );
        }
    }
}

#[test]
fn every_sound_defense_stops_the_end_to_end_spectre_attack() {
    let cfg = config();
    for kind in sound_defenses() {
        for secret in [5u64, 12] {
            let outcome = spectre_prime_probe_with_secret(kind, &cfg, secret);
            assert!(
                !outcome.leaked,
                "{} must stop Spectre (secret {secret}, recovered {}, latencies {:?})",
                kind.label(),
                outcome.recovered,
                outcome.probe_latencies
            );
        }
    }
}

#[test]
fn the_leaky_baselines_fall_to_every_attack() {
    // Both baselines leak on all six attacks — including attack 4 on the
    // unprotected hierarchy, where the "filter-cache" probe degenerates to an
    // ordinary shared-cache channel. Without this, the sound half of the
    // matrix would be unfalsifiable.
    let cfg = config();
    for kind in leaky_baselines() {
        let outcomes = dynamic_outcomes(kind, &cfg);
        assert_eq!(outcomes.len(), 6);
        for outcome in outcomes {
            assert!(
                outcome.leaked,
                "{} must be vulnerable to {} or the litmus is vacuous: {}",
                kind.label(),
                outcome.attack,
                outcome.detail
            );
        }
    }
}

#[test]
fn the_census_agrees_with_the_dynamic_matrix_on_every_defense() {
    // The speclint_cross.rs join, extended across the zoo: a statically
    // flagged attack embodiment corresponds to a dynamic attack that leaks
    // under each leaky baseline and is neutralised under each sound defense.
    let cfg = config();
    let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());
    let sound: Vec<Vec<AttackOutcome>> = sound_defenses()
        .iter()
        .map(|&k| dynamic_outcomes(k, &cfg))
        .collect();
    let leaky: Vec<Vec<AttackOutcome>> = leaky_baselines()
        .iter()
        .map(|&k| dynamic_outcomes(k, &cfg))
        .collect();
    let mut joined = 0;
    for entry in attacks::attack_corpus() {
        let report = census
            .report(entry.program.name())
            .unwrap_or_else(|| panic!("{} in census", entry.program.name()));
        assert_eq!(
            !report.is_clean(),
            entry.expect_gadget,
            "static verdict for {}",
            entry.program.name()
        );
        let Some(attack) = entry.litmus_attack else {
            continue;
        };
        joined += 1;
        for outcomes in &leaky {
            let outcome = outcomes
                .iter()
                .find(|o| o.attack == attack)
                .unwrap_or_else(|| panic!("dynamic outcome for `{attack}`"));
            assert!(
                outcome.leaked,
                "`{attack}` is flagged statically but does not leak under {}",
                outcome.defense
            );
        }
        for outcomes in &sound {
            let outcome = outcomes
                .iter()
                .find(|o| o.attack == attack)
                .unwrap_or_else(|| panic!("dynamic outcome for `{attack}`"));
            assert!(
                !outcome.leaked,
                "`{attack}` is flagged statically and still leaks under {}",
                outcome.defense
            );
        }
    }
    assert_eq!(joined, 6, "all six attacks join the census");
}

#[test]
fn fence_costs_the_same_as_the_program_level_fence_transformation() {
    // The Fence model claims to be the `-fenced` program transformation
    // applied in hardware, so for each corpus pair the original program under
    // Fence must run in (nearly) the same number of cycles as the fenced twin
    // under Fence: both serialise at exactly the same branches.
    let cfg = config();
    let corpus = attacks::attack_corpus();
    let mut pairs = 0;
    for entry in &corpus {
        let name = entry.program.name().to_string();
        let Some(base) = name.strip_suffix("-fenced") else {
            continue;
        };
        pairs += 1;
        let twin = corpus
            .iter()
            .find(|e| e.program.name() == base)
            .expect("gadget twin exists");
        let run = |program: &uarch_isa::prog::Program| {
            let mut system = System::new(&cfg, build_defense(DefenseKind::Fence, &cfg));
            system.load_workload(std::slice::from_ref(program), false);
            system.run(1_000_000)
        };
        let original = run(&twin.program);
        let fenced = run(&entry.program);
        assert!(original.completed, "{base} must complete under Fence");
        assert!(fenced.completed, "{name} must complete under Fence");
        let max = original.cycles.max(fenced.cycles);
        let diff = original.cycles.abs_diff(fenced.cycles);
        assert!(
            diff * 20 <= max,
            "Fence({base}) = {} cycles vs Fence({name}) = {} cycles: the model must \
             match the program-level transformation within 5%",
            original.cycles,
            fenced.cycles
        );
    }
    assert_eq!(pairs, 5, "one fenced twin per litmus attack");
}

#[test]
fn the_shootout_set_covers_the_sound_defenses_and_a_leaky_strawman() {
    // The shoot-out figure's defense set is the zoo this suite proves things
    // about: all four sound defenses present, plus the insecure-L0 strawman
    // whose leaks the_leaky_baselines_fall_to_every_attack demonstrates.
    let set = DefenseKind::shootout_set();
    for kind in sound_defenses() {
        assert!(set.contains(&kind), "{} in shoot-out", kind.label());
    }
    assert!(set.contains(&DefenseKind::InsecureL0));
    assert!(!set.contains(&DefenseKind::Unprotected), "1.0 baseline");
}
