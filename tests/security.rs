//! Cross-crate security integration tests: the executable form of the paper's
//! security argument. Every attack must succeed against the unprotected
//! baseline (otherwise the litmus is vacuous) and must fail against MuonTrap.

use attacks::litmus;
use attacks::spectre::spectre_prime_probe_with_secret;
use muontrap_repro::prelude::*;

fn config() -> SystemConfig {
    SystemConfig::paper_default()
}

#[test]
fn spectre_prime_probe_succeeds_against_the_unprotected_baseline() {
    for secret in [5u64, 12] {
        let outcome = spectre_prime_probe_with_secret(DefenseKind::Unprotected, &config(), secret);
        assert!(
            outcome.leaked && outcome.recovered == secret,
            "the attack must work on an unprotected machine (secret {secret}, recovered {}, \
             latencies {:?})",
            outcome.recovered,
            outcome.probe_latencies
        );
    }
}

#[test]
fn spectre_prime_probe_fails_against_muontrap() {
    for secret in [5u64, 12] {
        let outcome = spectre_prime_probe_with_secret(DefenseKind::MuonTrap, &config(), secret);
        assert!(
            !outcome.leaked,
            "MuonTrap must block the attack (secret {secret}, recovered {}, latencies {:?})",
            outcome.recovered, outcome.probe_latencies
        );
    }
}

#[test]
fn spectre_prime_probe_fails_against_muontrap_with_clear_on_misspeculate() {
    let outcome =
        spectre_prime_probe_with_secret(DefenseKind::MuonTrapClearOnMisspeculate, &config(), 7);
    assert!(!outcome.leaked);
}

#[test]
fn spectre_prime_probe_fails_against_invisispec_and_stt() {
    // The comparison defenses also stop the basic cache-channel Spectre attack
    // (that is their purpose); they just cost more performance.
    for kind in [
        DefenseKind::InvisiSpecSpectre,
        DefenseKind::InvisiSpecFuture,
        DefenseKind::SttSpectre,
    ] {
        let outcome = spectre_prime_probe_with_secret(kind, &config(), 9);
        assert!(
            !outcome.leaked,
            "{} should block the basic Spectre attack",
            kind.label()
        );
    }
}

#[test]
fn an_insecure_l0_is_not_a_defense() {
    let outcome = spectre_prime_probe_with_secret(DefenseKind::InsecureL0, &config(), 6);
    assert!(
        outcome.leaked,
        "a filter cache without MuonTrap's protections must still leak"
    );
}

#[test]
fn litmus_attacks_2_to_6_leak_on_the_baseline_and_not_under_muontrap() {
    let cfg = config();
    let baseline = litmus::run_litmus_suite(DefenseKind::Unprotected, &cfg);
    let protected = litmus::run_litmus_suite(DefenseKind::MuonTrap, &cfg);
    assert_eq!(baseline.len(), 5);
    assert_eq!(protected.len(), 5);

    // Attack 4 specifically targets filter caches, so the unprotected system
    // (which has none) is trivially immune to it; every other attack must
    // succeed against the baseline.
    for outcome in &baseline {
        if outcome.attack.starts_with("attack 4") {
            continue;
        }
        assert!(
            outcome.leaked,
            "baseline should be vulnerable to {}",
            outcome.attack
        );
    }
    for outcome in &protected {
        assert!(!outcome.leaked, "MuonTrap must stop {}", outcome.attack);
    }
}

#[test]
fn disabling_individual_protections_reopens_the_matching_channel() {
    let cfg = config();
    // Without the prefetcher protection, the prefetcher channel re-opens.
    let mut no_prefetch_protection = ProtectionConfig::muontrap_default();
    no_prefetch_protection.prefetch_at_commit = false;
    assert!(litmus::prefetch_attack_leaks(
        DefenseKind::MuonTrapCustom(no_prefetch_protection),
        &cfg
    ));
    // Without the instruction filter cache, the I-cache channel re-opens.
    let mut no_ifcache = ProtectionConfig::muontrap_default();
    no_ifcache.instruction_filter_cache = false;
    assert!(litmus::icache_attack_leaks(
        DefenseKind::MuonTrapCustom(no_ifcache),
        &cfg
    ));
    // The full configuration closes both.
    assert!(!litmus::prefetch_attack_leaks(DefenseKind::MuonTrap, &cfg));
    assert!(!litmus::icache_attack_leaks(DefenseKind::MuonTrap, &cfg));
}
