//! Integration tests for the sharded work-stealing runner: multi-shard runs
//! must reproduce the single-process report exactly, crashed shards' work
//! must be reclaimable with nothing lost or repeated, and the streaming
//! JSONL event logs must round-trip through the merge.

use muontrap_repro::prelude::*;
use simsys::runner::{self, RunEvent, ShardOptions, UnitKind};
use simsys::store::LeaseState;
use workloads::domain_switch_suite;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "muontrap-runner-test-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

/// A small mixed grid: an explicit Unprotected column (the derived-cell
/// path), two real defenses, two workloads.
fn grid(store: Option<&std::path::Path>) -> ExperimentSession {
    let session = ExperimentSession::new()
        .title("runner integration grid")
        .scale(Scale::Tiny)
        .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
        .defenses([
            DefenseKind::Unprotected,
            DefenseKind::MuonTrap,
            DefenseKind::SttSpectre,
        ])
        .config(SystemConfig::small_test())
        .threads(2);
    match store {
        Some(path) => session.with_store(path),
        None => session,
    }
}

/// Zeroes the one nondeterministic report field so runs compare bytewise.
fn canonical_json(mut report: RunReport) -> String {
    report.wall_clock_ms = 0.0;
    report.to_json().to_string_pretty()
}

#[test]
fn two_shard_run_merges_to_the_single_process_report_byte_for_byte() {
    let single_dir = temp_dir("single");
    let sharded_dir = temp_dir("sharded");
    let single = grid(Some(&single_dir)).run();

    // Two shards, two threads each, racing over one store directory.
    let logs: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|shard_id| {
                let dir = sharded_dir.clone();
                scope.spawn(move || {
                    let mut log: Vec<u8> = Vec::new();
                    let options = ShardOptions::new(shard_id, 2, "itest-run");
                    grid(Some(&dir))
                        .run_sharded(&options, &mut log)
                        .expect("shard runs");
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let plan = grid(Some(&sharded_dir)).plan();
    let mut events = Vec::new();
    for log in &logs {
        events.extend(runner::read_events(log.as_slice()).expect("logs parse"));
    }
    // No simulation ran twice: every Completed unit is unique across shards.
    let completed: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, RunEvent::Completed { .. }))
        .filter_map(RunEvent::unit)
        .collect();
    let mut deduped = completed.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(
        completed.len(),
        deduped.len(),
        "lease files must prevent duplicated simulations"
    );
    assert_eq!(completed.len(), plan.expected_cold_sims());

    let wall = runner::merged_wall_clock_ms(events.iter());
    assert!(wall > 0.0, "shards report their wall clock");
    let merged = runner::merge_events(&plan, events, wall).expect("merge completes");
    assert_eq!(
        canonical_json(merged),
        canonical_json(single),
        "a two-shard run must reproduce the single-process report exactly"
    );
    std::fs::remove_dir_all(&single_dir).ok();
    std::fs::remove_dir_all(&sharded_dir).ok();
}

#[test]
fn killed_shard_leaves_a_reclaimable_lease_and_the_resumed_run_loses_nothing() {
    let dir = temp_dir("resume");
    let session = grid(Some(&dir));
    let plan = session.plan();
    let store = ResultStore::open(&dir).unwrap();

    // Simulate a shard that died mid-run: it completed one baseline and one
    // cell (results + done markers on disk, its event log lost with the
    // pod), and crashed while holding the lease on another cell.
    let run_id = "resume-run";
    let dead_baseline = &plan.baselines[0];
    let dead_cell = plan
        .cells
        .iter()
        .find(|c| !c.copies_baseline && c.baseline == Some(dead_baseline.fingerprint))
        .expect("a simulatable cell shares the first baseline");
    for unit in [dead_baseline, dead_cell] {
        let result = simulate(&unit.workload, unit.defense, &unit.config);
        store.put(unit.fingerprint, &result).unwrap();
        store
            .mark_done(unit.fingerprint, "dead-shard", run_id)
            .unwrap();
    }
    let crashed_cell = plan
        .cells
        .iter()
        .find(|c| !c.copies_baseline && c.fingerprint != dead_cell.fingerprint)
        .expect("another simulatable cell exists");
    assert_eq!(
        store
            .try_lease(crashed_cell.fingerprint, "dead-shard", run_id, 1)
            .unwrap(),
        LeaseState::Acquired
    );
    std::thread::sleep(std::time::Duration::from_millis(10));

    // Resume with the same run id: the expired lease is stolen, the two
    // finished units are served from the store, and nothing is simulated
    // twice.
    let mut log: Vec<u8> = Vec::new();
    let mut options = ShardOptions::new(0, 1, run_id);
    options.lease_ttl_ms = 1_000;
    let summary = session
        .run_sharded(&options, &mut log)
        .expect("resume runs");
    assert_eq!(
        summary.sims_executed,
        plan.expected_cold_sims() - 2,
        "the dead shard's two finished units must not re-simulate"
    );
    assert_eq!(
        summary.units_cached + summary.units_executed,
        summary.units_total
    );

    let events = runner::read_events(log.as_slice()).unwrap();
    let merged = runner::merge_events(&plan, events.iter().cloned(), 0.0).expect("grid completes");
    assert_eq!(merged.cells.len(), plan.cells.len(), "no cell may be lost");
    // Store provenance: freshness is run-scoped, so the dead shard's units
    // (same run id) read as fresh, not cached, in the resumed report...
    assert_eq!(merged.sims_executed, summary.sims_executed);
    for cell in &merged.cells {
        assert!(
            !cell.cached,
            "{}/{} must count as computed during this run",
            cell.workload, cell.column
        );
    }
    // ...and the stolen lease now belongs to the resumed shard, done.
    assert!(store.completed_during(crashed_cell.fingerprint, run_id));

    // A later, distinct run sees a fully warm store: zero simulations.
    let mut warm_log: Vec<u8> = Vec::new();
    let warm = session
        .run_sharded(&ShardOptions::new(0, 1, "later-run"), &mut warm_log)
        .expect("warm run");
    assert_eq!(warm.sims_executed, 0, "warm store must satisfy everything");
    assert_eq!(warm.cached_rate(), 1.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn event_logs_round_trip_through_jsonl_and_merge() {
    let dir = temp_dir("roundtrip");
    let session = grid(Some(&dir));
    let plan = session.plan();
    let mut log: Vec<u8> = Vec::new();
    session
        .run_sharded(&ShardOptions::new(0, 1, "rt-run"), &mut log)
        .expect("shard runs");

    // Every JSONL line parses, re-serialises identically, and the parsed
    // stream merges into a complete report.
    let text = String::from_utf8(log.clone()).expect("logs are UTF-8 JSONL");
    let events = runner::read_events(log.as_slice()).expect("every line parses");
    assert_eq!(text.lines().count(), events.len());
    for (line, event) in text.lines().zip(&events) {
        let reparsed: RunEvent = {
            use simkit::json;
            RunEvent::from_json(&json::parse(line).unwrap()).unwrap()
        };
        assert_eq!(&reparsed, event);
        assert_eq!(event.to_json().to_string_compact(), line);
    }
    // The log narrates the protocol: claims precede completions, every unit
    // resolves, and the shard signs off.
    assert!(events.iter().any(|e| matches!(e, RunEvent::Claimed { .. })));
    assert!(matches!(events.last(), Some(RunEvent::ShardDone { .. })));
    let resolved: Vec<_> = events.iter().filter_map(RunEvent::unit).collect();
    for cell in &plan.cells {
        assert!(
            resolved.contains(&(UnitKind::Cell, cell.index)),
            "cell {} must appear in the stream",
            cell.index
        );
    }

    let merged = runner::merge_events(&plan, events, 0.0).expect("parsed log rebuilds the report");
    // And the merged report matches a plain in-process rerun served from the
    // same (now warm) store.
    let warm = grid(Some(&dir)).run();
    assert_eq!(merged.cells.len(), warm.cells.len());
    for (a, b) in merged.cells.iter().zip(&warm.cells) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.normalized_time, b.normalized_time);
        assert_eq!(a.stats, b.stats);
    }
    assert_eq!(warm.sims_executed, 0, "the sharded run left the store warm");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_only_stores_serve_figure_grids_without_writing() {
    let dir = temp_dir("readonly");
    // Fill the store with a normal run.
    let cold = grid(Some(&dir)).run();
    assert!(cold.sims_executed > 0);
    let entries_after_fill = ResultStore::open(&dir).unwrap().len();

    // A read-only rerun of the same grid is fully warm and writes nothing.
    let ro = ResultStore::read_only(&dir);
    let warm = grid(None).store(Some(ro)).run();
    assert_eq!(warm.sims_executed, 0);
    assert_eq!(warm.cache_hit_rate(), 1.0);

    // A *larger* grid on the same read-only store simulates the new cells
    // but still writes nothing.
    let bigger = ExperimentSession::new()
        .title("readonly bigger grid")
        .workloads(domain_switch_suite(Scale::Tiny))
        .defenses([DefenseKind::MuonTrap])
        .config(SystemConfig::small_test())
        .threads(2)
        .store(Some(ResultStore::read_only(&dir)))
        .run();
    assert!(bigger.sims_executed > 0, "misses simulate");
    assert_eq!(
        ResultStore::open(&dir).unwrap().len(),
        entries_after_fill,
        "a read-only store must never grow"
    );
    std::fs::remove_dir_all(&dir).ok();
}
