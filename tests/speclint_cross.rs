//! Cross-validation of the static analyzer against the dynamic attack suite:
//! the two views of "does this program leak under speculation?" must agree.
//!
//! * The Spectre victim — the exact program the end-to-end dynamic attack
//!   executes — must be statically flagged with a `v1-load` gadget whose taint
//!   chain is the gadget body the attack exploits; the attacker program (all
//!   addresses from immediates and `rdcycle`) must analyze clean.
//! * The gadget-free kernel classes (streaming, compute-bound, stencil) must
//!   analyze clean: their addresses are all counter-derived.
//! * Every litmus embodiment in [`attacks::attack_corpus`] must agree with
//!   its dynamic litmus outcome under the unprotected baseline: the attack
//!   leaks dynamically ⇒ its µISA embodiment carries a gadget statically, and
//!   its fenced twin is clean.

use attacks::litmus::run_litmus_suite;
use attacks::spectre::spectre_prime_probe_with_secret;
use bench::lint::corpus_census;
use defenses::DefenseKind;
use simkit::config::SystemConfig;
use speclint::{analyze_program, AnalyzerConfig, GadgetClass};
use workloads::Scale;

#[test]
fn the_spectre_victim_is_flagged_with_the_gadget_the_attack_exploits() {
    let victim = attacks::spectre::victim_program(9, 24);
    let report = analyze_program(&victim, &AnalyzerConfig::default());
    assert!(!report.is_clean(), "the victim carries the classic gadget");
    let v1: Vec<_> = report
        .gadgets
        .iter()
        .filter(|g| g.class == GadgetClass::V1Load)
        .collect();
    assert!(
        !v1.is_empty(),
        "the leak is a v1-load: {:?}",
        report.gadgets
    );
    // The taint chain is the gadget body: speculative secret load → shift →
    // probe-address add → dependent probe load (the transmitter).
    assert!(
        v1.iter().any(|g| g.chain.len() >= 3),
        "the chain must walk the secret through the probe-address arithmetic: {v1:?}"
    );
}

#[test]
fn the_spectre_attacker_is_statically_clean() {
    let attacker = attacks::spectre::attacker_program();
    let report = analyze_program(&attacker, &AnalyzerConfig::default());
    assert!(
        report.is_clean(),
        "the attacker only times lines it addresses from immediates: {:?}",
        report.gadgets
    );
}

#[test]
fn counter_addressed_kernel_classes_are_statically_clean() {
    // Streaming, compute-bound and stencil kernels derive every address from
    // loop counters and immediates — no speculative load feeds another
    // memory access, so the analyzer must not cry wolf on them.
    let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());
    for name in [
        "bwaves",
        "lbm",
        "milc",
        "libquantum",
        "GemsFDTD", // streaming
        "calculix",
        "gamess",
        "gromacs",
        "namd",
        "povray",
        "tonto", // compute
        "cactusADM",
        "leslie3d",
        "zeusmp", // stencil
    ] {
        let report = census
            .report(name)
            .unwrap_or_else(|| panic!("{name} in census"));
        assert!(
            report.is_clean(),
            "{name} must be gadget-free: {:?}",
            report.gadgets
        );
        assert!(
            report.branches > 0,
            "{name} vacuously clean without branches"
        );
    }
}

#[test]
fn static_verdicts_agree_with_the_dynamic_attacks_on_the_unprotected_baseline() {
    let config = SystemConfig::paper_default();
    let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());

    // Dynamic ground truth under the unprotected baseline: every attack leaks.
    let mut dynamic = run_litmus_suite(DefenseKind::Unprotected, &config);
    let spectre = spectre_prime_probe_with_secret(DefenseKind::Unprotected, &config, 9);
    dynamic.push(attacks::AttackOutcome::new(
        "attack 1: spectre prime+probe",
        DefenseKind::Unprotected.label(),
        spectre.leaked,
        String::new(),
    ));

    for entry in attacks::attack_corpus() {
        let report = census
            .report(entry.program.name())
            .unwrap_or_else(|| panic!("{} in census", entry.program.name()));
        assert_eq!(
            !report.is_clean(),
            entry.expect_gadget,
            "static verdict for {} ({})",
            entry.program.name(),
            entry.note
        );
        let Some(attack) = entry.litmus_attack else {
            continue;
        };
        let outcome = dynamic
            .iter()
            .find(|o| o.attack == attack)
            .unwrap_or_else(|| panic!("dynamic outcome for `{attack}`"));
        // The join itself: a program statically flagged as this attack's
        // embodiment must correspond to an attack that actually leaks on the
        // unprotected machine — the static analysis over-approximates real,
        // demonstrated leaks, not hypothetical ones.
        assert!(
            outcome.leaked,
            "`{attack}` is flagged statically ({}) but does not leak dynamically",
            entry.program.name()
        );
    }
}

#[test]
fn fenced_twins_are_clean_while_their_gadget_twin_is_flagged() {
    let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());
    let mut pairs = 0;
    for entry in attacks::attack_corpus() {
        let name = entry.program.name().to_string();
        let Some(base) = name.strip_suffix("-fenced") else {
            continue;
        };
        pairs += 1;
        let fenced = census.report(&name).expect("fenced twin in census");
        let gadget = census.report(base).expect("gadget twin in census");
        assert!(fenced.is_clean(), "{name}: {:?}", fenced.gadgets);
        assert!(!gadget.is_clean(), "{base} must be flagged");
    }
    assert_eq!(pairs, 5, "one fenced twin per litmus attack");
}

#[test]
fn the_census_is_deterministic() {
    let config = AnalyzerConfig::default();
    let a = corpus_census(Scale::Tiny, &config);
    let b = corpus_census(Scale::Tiny, &config);
    assert_eq!(a, b);
    use simkit::json::ToJson;
    assert_eq!(
        a.to_json().to_string_pretty(),
        b.to_json().to_string_pretty()
    );
}
