//! Golden-equivalence proof for the hot-loop overhaul.
//!
//! The allocation-free, event-skipping simulator loop is a pure performance
//! change: every `RunReport` (cells, cycle counts, normalised times, the full
//! per-core `CoreStats` and memory-model statistics) must be **bit-identical**
//! to the naive one-tick-per-cycle loop it replaced. These tests pin that
//! down two ways:
//!
//! 1. **Recorded goldens.** `tests/goldens/hotpath/<figure>-<scale>.json`
//!    were recorded *before* the optimisation landed (naive loop, per-cycle
//!    allocations, quadratic ROB scans). Every [`bench::FIGURE_NAMES`] entry
//!    is re-run through the optimised loop and compared against its golden
//!    with the wall clock zeroed — cycle-skipping must be invisible in every
//!    reported number. The tiny-scale sweep runs in the default test suite;
//!    the small-scale sweep is `#[ignore]`d (minutes of simulation) and runs
//!    in the CI perf-smoke job under `--release`.
//! 2. **Live naive-vs-optimised comparison.** `fast_forward_is_invisible`
//!    (below) re-runs grids in the same binary with the event-skipping loop
//!    disabled (`ExperimentSession` machinery untouched) and asserts the
//!    reports match field-for-field — so the equivalence also holds on
//!    whatever machine the tests run on, not just the recording host.
//!
//! Regenerate the goldens (only after an *intentional* semantic change, with
//! a store-format bump) with:
//!
//! ```text
//! MUONTRAP_REGEN_GOLDENS=1 cargo test --release --test hotpath_golden -- --include-ignored
//! ```

use std::path::PathBuf;

use bench::{figure_session, FIGURE_NAMES};
use simkit::config::SystemConfig;
use simkit::json::{self, Json, ToJson};
use workloads::Scale;

fn golden_path(name: &str, scale: Scale) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens/hotpath")
        .join(format!("{name}-{}.json", scale.name()))
}

/// Runs one figure grid deterministically (no store, one worker thread) and
/// returns its report as a JSON tree with the wall clock zeroed.
fn normalized_report(name: &str, scale: Scale) -> Json {
    let session = figure_session(name, scale, &SystemConfig::paper_default(), 1, None)
        .unwrap_or_else(|| panic!("figure {name} must resolve"));
    let mut report = session.run();
    report.wall_clock_ms = 0.0;
    // Round-trip through the serialiser so float formatting matches the
    // recorded golden exactly.
    json::parse(&report.to_json().to_string_pretty()).expect("report serialises to valid JSON")
}

/// Reports the path of the first difference between two JSON trees, or `None`
/// if they are equal. Keeps golden-mismatch panics readable.
fn first_difference(path: &str, a: &Json, b: &Json) -> Option<String> {
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            if fa.len() != fb.len() {
                return Some(format!(
                    "{path}: object sizes differ ({} vs {})",
                    fa.len(),
                    fb.len()
                ));
            }
            for ((ka, va), (kb, vb)) in fa.iter().zip(fb.iter()) {
                if ka != kb {
                    return Some(format!("{path}: keys diverge (`{ka}` vs `{kb}`)"));
                }
                if let Some(diff) = first_difference(&format!("{path}.{ka}"), va, vb) {
                    return Some(diff);
                }
            }
            None
        }
        (Json::Arr(aa), Json::Arr(ab)) => {
            if aa.len() != ab.len() {
                return Some(format!(
                    "{path}: array lengths differ ({} vs {})",
                    aa.len(),
                    ab.len()
                ));
            }
            for (i, (va, vb)) in aa.iter().zip(ab.iter()).enumerate() {
                if let Some(diff) = first_difference(&format!("{path}[{i}]"), va, vb) {
                    return Some(diff);
                }
            }
            None
        }
        _ if a == b => None,
        _ => Some(format!("{path}: {a:?} != {b:?}")),
    }
}

fn check_figure_against_golden(name: &str, scale: Scale) {
    let path = golden_path(name, scale);
    let produced = normalized_report(name, scale);
    if std::env::var_os("MUONTRAP_REGEN_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, produced.to_string_pretty()).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with MUONTRAP_REGEN_GOLDENS=1",
            path.display()
        )
    });
    let golden = json::parse(&text).expect("golden parses");
    if let Some(diff) = first_difference("report", &produced, &golden) {
        panic!(
            "{name} at {} scale diverges from the pre-optimization golden:\n  {diff}\n\
             The optimised hot loop must be bit-identical to the naive loop.",
            scale.name()
        );
    }
}

/// Every figure at tiny scale against the pre-optimization recording. Fast
/// enough for the default `cargo test` suite.
#[test]
fn tiny_reports_match_pre_optimization_goldens() {
    for name in FIGURE_NAMES {
        check_figure_against_golden(name, Scale::Tiny);
    }
}

/// Every figure at the paper's small scale against the pre-optimization
/// recording. Minutes of simulation — run explicitly (CI perf-smoke does):
/// `cargo test --release --test hotpath_golden -- --ignored`.
#[test]
#[ignore = "minutes of simulation; run with --release --ignored (CI perf-smoke job does)"]
fn small_reports_match_pre_optimization_goldens() {
    for name in FIGURE_NAMES {
        check_figure_against_golden(name, Scale::Small);
    }
}

/// Live equivalence on this machine: the same `System`s run with the
/// event-skipping loop enabled and disabled must produce identical reports —
/// cycle counts, committed instructions, context switches and every single
/// statistic. Covers single- and multi-core workloads, preemption (more
/// threads than cores), memory-retry defenses and domain switches.
#[test]
fn fast_forward_is_invisible() {
    use defenses::{build_defense, DefenseKind};
    use simsys::system::System;
    use workloads::{domain_switch_suite, parsec_suite, spec_suite};

    let cfg = SystemConfig::small_test();
    let mut picks: Vec<workloads::Workload> = Vec::new();
    picks.extend(spec_suite(Scale::Tiny).into_iter().take(3));
    picks.extend(parsec_suite(Scale::Tiny, cfg.cores).into_iter().take(2));
    picks.extend(domain_switch_suite(Scale::Tiny));

    for kind in [
        DefenseKind::Unprotected,
        DefenseKind::MuonTrap,
        DefenseKind::InvisiSpecFuture,
        DefenseKind::SttSpectre,
    ] {
        for workload in &picks {
            let run = |fast_forward: bool| {
                let mut system = System::new(&cfg, build_defense(kind, &cfg));
                system.set_fast_forward(fast_forward);
                system.load_workload(&workload.thread_programs, workload.shared_memory);
                system.run(workload.cycle_budget)
            };
            let fast = run(true);
            let naive = run(false);
            let label = format!("{} under {kind:?}", workload.name);
            assert_eq!(fast.cycles, naive.cycles, "cycles diverge: {label}");
            assert_eq!(
                fast.committed, naive.committed,
                "committed diverge: {label}"
            );
            assert_eq!(
                fast.completed, naive.completed,
                "completion diverges: {label}"
            );
            assert_eq!(
                fast.context_switches, naive.context_switches,
                "scheduling diverges: {label}"
            );
            assert_eq!(fast.stats, naive.stats, "statistics diverge: {label}");
        }
    }

    // Preemption path: more threads than cores, so the fast-forward must
    // stop exactly on scheduler-quantum expiries.
    let mut one_core = SystemConfig::small_test();
    one_core.cores = 1;
    one_core.scheduler_quantum = 1_500;
    for kind in [DefenseKind::MuonTrap, DefenseKind::Unprotected] {
        let run = |fast_forward: bool| {
            let mut system = System::new(&one_core, build_defense(kind, &one_core));
            system.set_fast_forward(fast_forward);
            for workload in spec_suite(Scale::Tiny).iter().take(2) {
                system.load_workload(&workload.thread_programs, workload.shared_memory);
            }
            system.run(20_000_000)
        };
        let fast = run(true);
        let naive = run(false);
        assert!(naive.context_switches >= 2, "test must exercise preemption");
        assert_eq!(fast.cycles, naive.cycles, "preemption cycles diverge");
        assert_eq!(fast.context_switches, naive.context_switches);
        assert_eq!(fast.stats, naive.stats, "preemption statistics diverge");
    }
}
