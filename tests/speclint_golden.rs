//! Pins the `speclint` gadget census to `SPECLINT_baseline.json` at the
//! repository root, so any change to the analyzer, the workload kernels or
//! the attack corpus that shifts a static verdict shows up as a reviewable
//! diff (and CI fails until the baseline is regenerated on purpose).
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! MUONTRAP_REGEN_SPECLINT=1 cargo test --test speclint_golden
//! ```

use std::path::PathBuf;

use bench::lint::corpus_census;
use simkit::json::{self, ToJson};
use speclint::AnalyzerConfig;
use workloads::Scale;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("SPECLINT_baseline.json")
}

/// The canonical baseline document: the tiny-scale census (the corpus's
/// control flow is scale-invariant; tiny keeps the recording fast) with the
/// default analyzer configuration, pretty-printed with a trailing newline.
fn baseline_document() -> String {
    let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());
    let mut text = census.to_json().to_string_pretty();
    text.push('\n');
    text
}

#[test]
fn census_matches_the_committed_baseline() {
    let path = baseline_path();
    let produced = baseline_document();
    if std::env::var_os("MUONTRAP_REGEN_SPECLINT").is_some() {
        std::fs::write(&path, &produced).expect("write baseline");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing baseline {} ({e}); regenerate with MUONTRAP_REGEN_SPECLINT=1",
            path.display()
        )
    });
    assert_eq!(
        produced, committed,
        "the gadget census diverges from SPECLINT_baseline.json. If the \
         analyzer/corpus change is intentional, regenerate with \
         MUONTRAP_REGEN_SPECLINT=1 and review the diff."
    );
}

#[test]
fn the_committed_baseline_is_valid_json_with_the_expected_shape() {
    if std::env::var_os("MUONTRAP_REGEN_SPECLINT").is_some() {
        return; // the sibling test is rewriting it
    }
    let text = std::fs::read_to_string(baseline_path()).expect("baseline exists");
    let parsed = json::parse(&text).expect("baseline parses");
    use simkit::json::Json;
    assert!(parsed.get("window").and_then(Json::as_u64).is_some());
    assert!(parsed.get("total_gadgets").and_then(Json::as_u64).is_some());
    let programs = parsed
        .get("programs")
        .and_then(Json::as_arr)
        .expect("programs array");
    assert!(
        programs.len() >= 40,
        "the corpus spans both suites plus the attack programs"
    );
}
