//! Chaos suite: the whole sharded lease/entry protocol under seeded fault
//! injection.
//!
//! Each case runs a two-figure sharded session over one store whose backend
//! is a [`FaultBackend`]: every read, write, lease create and removal may
//! suffer a torn write, a lost create-new race, a stale read, a transient
//! I/O error or injected latency, with the mix drawn from a seeded
//! [`SimRng`](simkit) stream. Shards that die from injected errors are
//! retried (the production `fleet` supervisor's restart path), with a test
//! clock advanced past the lease TTL so abandoned leases expire
//! deterministically instead of by sleeping.
//!
//! The acceptance bar, per seed:
//! * the merge covers the grid — **no lost cells** (``merge_events`` fails
//!   the test on any hole) and **no duplicated cells** (checked explicitly);
//! * the merged reports are **byte-identical to the unfaulted run** after
//!   canonicalisation. Canonical form zeroes wall-clock and the
//!   executed/cached *provenance* tallies: a fault landing between "entry
//!   persisted" and "lease marked done" legitimately turns a fresh cell
//!   into a cached-looking one on retry, so provenance may flip under
//!   faults — but the figure payload (cycles, normalised time, baselines)
//!   must never move by a byte.
//!
//! A failing seed prints its number and the full injected-fault log as a
//! `(op, fault)` script; feeding that to [`FaultBackend::scripted`] replays
//! the exact interleaving (see `a_seeded_failure_replays_exactly_from_its_
//! script`), which is how any future failure gets pinned as a regression
//! test instead of a flake.
//!
//! The default sweep keeps `cargo test` quick; the 110-seed sweep behind
//! `#[ignore]` is what the CI `store-chaos` job runs with
//! `--release -- --include-ignored`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use muontrap_repro::prelude::*;
use simsys::runner::{self, RunEvent};
use simsys::store::{FaultBackend, FaultConfig, FaultRecord, MemBackend};

/// Lease TTL for chaos runs; expiry happens by advancing [`test_clock`]
/// past it, never by sleeping.
const TTL_MS: u64 = 1_000;

/// Injected transient errors abort shard attempts; with the chaos mix a
/// handful of retries always converges — hitting this bound means the
/// protocol stopped making progress, which is exactly a finding.
const MAX_ATTEMPTS: usize = 60;

fn figure_a(store: &ResultStore) -> ExperimentSession {
    ExperimentSession::new()
        .title("chaos figure A")
        .scale(Scale::Tiny)
        .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
        .defenses([
            DefenseKind::Unprotected,
            DefenseKind::MuonTrap,
            DefenseKind::SttSpectre,
        ])
        .config(SystemConfig::small_test())
        .threads(1)
        .store(Some(store.clone()))
}

fn figure_b(store: &ResultStore) -> ExperimentSession {
    ExperimentSession::new()
        .title("chaos figure B")
        .scale(Scale::Tiny)
        .workloads(spec_suite(Scale::Tiny).into_iter().skip(2).take(2))
        .defenses([DefenseKind::MuonTrap, DefenseKind::SttSpectre])
        .config(SystemConfig::small_test())
        .threads(1)
        .store(Some(store.clone()))
}

/// Canonical report form for fault-tolerant byte comparison: wall clock and
/// execution/cache provenance zeroed (see the module docs for why those may
/// legitimately flip under faults), figure payload untouched.
fn canonical(mut report: RunReport) -> String {
    report.wall_clock_ms = 0.0;
    report.sims_executed = 0;
    report.baseline_sims = 0;
    for cell in &mut report.cells {
        cell.cached = false;
    }
    report.to_json().to_string_pretty()
}

fn shard_opts(shard: usize, count: usize, run_id: &str) -> ShardOptions {
    let mut opts = ShardOptions::new(shard, count, run_id);
    opts.lease_ttl_ms = TTL_MS;
    // No heartbeat thread: time is the test clock's, not the wall's.
    opts.heartbeat_ms = 0;
    opts.poll_ms = 1;
    opts
}

/// Runs every shard of one figure sequentially (deterministic interleaving
/// under the frozen clock), retrying attempts that die from injected
/// faults, and returns every attempt's events — crashed attempts included,
/// exactly like feeding a killed shard's partial log to `merge`.
fn run_figure_sharded(
    build: impl Fn(&ResultStore) -> ExperimentSession,
    store: &ResultStore,
    clock: &AtomicU64,
    run_id: &str,
    shards: usize,
    context: &dyn Fn() -> String,
) -> Vec<RunEvent> {
    let mut events = Vec::new();
    for shard in 0..shards {
        for attempt in 1..=MAX_ATTEMPTS {
            // Whatever leases the previous attempt abandoned expire now.
            clock.fetch_add(TTL_MS + 1, Ordering::Relaxed);
            let mut sink: Vec<u8> = Vec::new();
            let outcome = build(store).run_sharded(&shard_opts(shard, shards, run_id), &mut sink);
            events.extend(
                runner::read_events(std::io::BufReader::new(&sink[..]))
                    .expect("attempt logs are well-formed JSONL"),
            );
            match outcome {
                Ok(_) => break,
                Err(_) if attempt < MAX_ATTEMPTS => continue,
                Err(e) => panic!(
                    "shard {shard} of `{run_id}` made no progress in {MAX_ATTEMPTS} attempts: {e}\n{}",
                    context()
                ),
            }
        }
    }
    events
}

/// Merges one figure's event pile and asserts the no-lost/no-duplicate
/// invariants, with `context` (seed + fault log) attached to any failure.
fn merge_checked(
    session: ExperimentSession,
    events: Vec<RunEvent>,
    context: &dyn Fn() -> String,
) -> RunReport {
    let plan = session.plan();
    let wall_clock_ms = runner::merged_wall_clock_ms(events.iter());
    let report = merge_events(&plan, events, wall_clock_ms)
        .unwrap_or_else(|e| panic!("cells were lost: {e}\n{}", context()));
    let mut seen = std::collections::BTreeSet::new();
    for cell in &report.cells {
        assert!(
            seen.insert((cell.workload.clone(), cell.column.clone())),
            "duplicated cell {}/{}\n{}",
            cell.workload,
            cell.column,
            context()
        );
    }
    assert_eq!(
        report.cells.len(),
        report.workloads.len() * report.columns.len(),
        "grid incomplete\n{}",
        context()
    );
    report
}

/// One full chaos case: both figures, sharded, over one faulted store.
/// Returns the canonical merged reports and the injected-fault log.
fn chaos_run(seed: u64, config: &FaultConfig) -> (String, String, Vec<FaultRecord>) {
    let mem = Arc::new(MemBackend::new());
    let faulty = Arc::new(FaultBackend::seeded(
        Arc::clone(&mem) as _,
        seed,
        config.clone(),
    ));
    run_over(seed, Arc::clone(&faulty) as _, &faulty)
}

/// The harness body, shared by seeded and scripted runs.
fn run_over(
    seed: u64,
    backend: Arc<dyn simsys::store::StoreBackend>,
    faulty: &Arc<FaultBackend>,
) -> (String, String, Vec<FaultRecord>) {
    let clock = Arc::new(AtomicU64::new(1_700_000_000_000));
    let store = ResultStore::with_backend(backend).with_clock(Arc::clone(&clock));
    let log = Arc::clone(faulty);
    let context = move || {
        let script: Vec<(u64, String)> = log
            .injected()
            .iter()
            .map(|r| (r.op, format!("{:?}", r.fault)))
            .collect();
        format!("seed {seed:#x}; replay script (op, fault): {script:?}")
    };
    let events_a = run_figure_sharded(figure_a, &store, &clock, "chaos-a", 2, &context);
    let events_b = run_figure_sharded(figure_b, &store, &clock, "chaos-b", 2, &context);
    let report_a = merge_checked(figure_a(&store), events_a, &context);
    let report_b = merge_checked(figure_b(&store), events_b, &context);
    (canonical(report_a), canonical(report_b), faulty.injected())
}

/// The unfaulted truth both figures must converge to, canonicalised.
fn reference() -> (String, String) {
    let store = ResultStore::in_memory();
    (
        canonical(figure_a(&store).run()),
        canonical(figure_b(&store).run()),
    )
}

fn sweep(seeds: std::ops::Range<u64>) {
    let (want_a, want_b) = reference();
    let config = FaultConfig::chaos();
    let mut injected_total = 0usize;
    for seed in seeds {
        let (got_a, got_b, injected) = chaos_run(seed, &config);
        injected_total += injected.len();
        assert_eq!(got_a, want_a, "figure A diverged under seed {seed:#x}");
        assert_eq!(got_b, want_b, "figure B diverged under seed {seed:#x}");
    }
    assert!(
        injected_total > 0,
        "the chaos config never fired — the sweep tested nothing"
    );
}

#[test]
fn chaos_seeds_converge_to_the_unfaulted_report() {
    sweep(0..16);
}

/// The full 110-seed acceptance sweep; slow in debug, so CI's `store-chaos`
/// job runs it with `--release -- --include-ignored`.
#[test]
#[ignore = "110-seed sweep; run in release via CI's store-chaos job"]
fn chaos_hundred_plus_seed_sweep() {
    sweep(16..126);
}

#[test]
fn a_seeded_run_replays_exactly_from_its_script() {
    // The regression-replay mode: take any seeded run's injected-fault log,
    // feed it back as a script over a fresh store, and the protocol walks
    // the *identical* interleaving — same injections at the same operation
    // indices, same merged bytes. This is how a failing seed from the sweep
    // above gets pinned forever.
    let config = FaultConfig::chaos();
    let seed = 0xc4a0_5eed;
    let (seeded_a, seeded_b, injected) = chaos_run(seed, &config);
    assert!(
        !injected.is_empty(),
        "pick a seed that actually injects faults"
    );

    let script: Vec<(u64, simsys::store::Fault)> =
        injected.iter().map(|r| (r.op, r.fault)).collect();
    let mem = Arc::new(MemBackend::new());
    let replayed = Arc::new(FaultBackend::scripted(
        Arc::clone(&mem) as _,
        script.iter().copied(),
    ));
    let (replay_a, replay_b, replay_log) = run_over(seed, Arc::clone(&replayed) as _, &replayed);
    assert_eq!(replay_a, seeded_a);
    assert_eq!(replay_b, seeded_b);
    let as_pairs = |log: &[FaultRecord]| -> Vec<(u64, simsys::store::Fault)> {
        log.iter().map(|r| (r.op, r.fault)).collect()
    };
    assert_eq!(
        as_pairs(&replay_log),
        script,
        "the replay must fire exactly the recorded faults at the recorded ops"
    );
    let _ = seeded_a;
}

#[test]
fn concurrently_racing_faulted_shards_still_converge() {
    // The real-concurrency variant: two OS threads race over one faulted
    // store with the real wall clock and a short TTL. The interleaving is
    // nondeterministic, so there is no byte-level replay here — the
    // invariants (nothing lost, nothing duplicated, canonical bytes equal
    // the unfaulted run) must hold for *every* interleaving.
    let (want_a, _) = reference();
    let config = FaultConfig::chaos();
    for seed in 0..4u64 {
        let mem = Arc::new(MemBackend::new());
        let faulty = Arc::new(FaultBackend::seeded(
            Arc::clone(&mem) as _,
            seed,
            config.clone(),
        ));
        let store = ResultStore::with_backend(Arc::clone(&faulty) as _);
        let context = {
            let faulty = Arc::clone(&faulty);
            move || format!("seed {seed:#x}; injected: {:?}", faulty.injected())
        };
        let logs: Vec<Vec<RunEvent>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|shard| {
                    let store = store.clone();
                    scope.spawn(move || {
                        let mut events = Vec::new();
                        for attempt in 1.. {
                            let mut opts = shard_opts(shard, 2, "chaos-race");
                            // Real clock: short TTL so abandoned leases
                            // expire while the poll loop waits.
                            opts.lease_ttl_ms = 200;
                            let mut sink: Vec<u8> = Vec::new();
                            let outcome = figure_a(&store).run_sharded(&opts, &mut sink);
                            events.extend(
                                runner::read_events(std::io::BufReader::new(&sink[..]))
                                    .expect("attempt logs are well-formed JSONL"),
                            );
                            match outcome {
                                Ok(_) => break,
                                Err(e) => {
                                    assert!(attempt < MAX_ATTEMPTS, "shard {shard} stuck: {e}")
                                }
                            }
                        }
                        events
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let events: Vec<RunEvent> = logs.into_iter().flatten().collect();
        let report = merge_checked(figure_a(&store), events, &context);
        assert_eq!(canonical(report), want_a, "{}", context());
    }
}
