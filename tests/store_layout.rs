//! Golden on-disk layout tests for the filesystem store backend.
//!
//! The `StoreBackend` refactor must leave `FsBackend` bit-compatible with
//! the pre-trait store: the same entry paths, the same pretty-JSON entry
//! bytes, the same compact single-line lease files with the same key order
//! — so existing store directories (including CI artifacts and multi-host
//! shares) keep working across the refactor in both directions. These tests
//! pin every byte of that contract; if one fails, bump
//! [`simsys::store::STORE_FORMAT_VERSION`] instead of shipping a silent
//! layout change.

use muontrap_repro::prelude::*;
use simkit::fingerprint::Fingerprint;
use simsys::store::cell_fingerprint;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "muontrap-layout-test-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

fn sample() -> (Workload, SystemConfig) {
    (
        spec_suite(Scale::Tiny).into_iter().next().unwrap(),
        SystemConfig::small_test(),
    )
}

#[test]
fn entries_live_at_two_hex_slash_thirty_hex_dot_json() {
    let root = temp_dir("paths");
    let store = ResultStore::open(&root).unwrap();
    let (w, cfg) = sample();
    let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
    let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
    store.put(key, &result).unwrap();

    let hex = key.to_hex();
    assert_eq!(hex.len(), 32);
    let expected = root.join(&hex[..2]).join(format!("{}.json", &hex[2..]));
    assert!(
        expected.is_file(),
        "entry must land at <root>/<2 hex>/<30 hex>.json, not {:?}",
        std::fs::read_dir(&root).map(|dir| dir
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect::<Vec<_>>())
    );
    assert_eq!(store.entry_path(key), expected);
    // No other files: one entry, one two-level path, no litter.
    let mut files = Vec::new();
    for dir in std::fs::read_dir(&root).unwrap().filter_map(|e| e.ok()) {
        if dir.path().is_dir() {
            files.extend(
                std::fs::read_dir(dir.path())
                    .unwrap()
                    .filter_map(|e| e.ok())
                    .map(|e| e.path()),
            );
        }
    }
    assert_eq!(files, vec![expected]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn entry_bytes_are_the_golden_pretty_json_envelope() {
    let root = temp_dir("entry-bytes");
    let store = ResultStore::open(&root).unwrap();
    let (w, cfg) = sample();
    let key = cell_fingerprint(&w, DefenseKind::SttSpectre, &cfg);
    let result = simulate(&w, DefenseKind::SttSpectre, &cfg);
    store.put(key, &result).unwrap();

    let golden = Json::obj([
        ("fingerprint", Json::Str(key.to_hex())),
        ("result", result.to_json()),
    ])
    .to_string_pretty();
    let on_disk = std::fs::read_to_string(store.entry_path(key)).unwrap();
    assert_eq!(
        on_disk, golden,
        "entry files must stay byte-identical to the pre-backend layout"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn hand_planted_legacy_entries_are_served_as_hits() {
    // A directory written by the *old* store code (reconstructed here byte
    // for byte, without going through ResultStore::put) must read back as
    // hits: that is what backward bit-compatibility means for reads.
    let root = temp_dir("legacy");
    let (w, cfg) = sample();
    let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
    let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
    let hex = key.to_hex();
    let dir = root.join(&hex[..2]);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join(format!("{}.json", &hex[2..])),
        Json::obj([
            ("fingerprint", Json::Str(hex.clone())),
            ("result", result.to_json()),
        ])
        .to_string_pretty(),
    )
    .unwrap();

    let store = ResultStore::open(&root).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(key), Some(result), "legacy entries must hit");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn lease_files_are_compact_single_lines_with_stable_key_order() {
    let root = temp_dir("lease-bytes");
    let store = ResultStore::open(&root).unwrap();
    let (w, cfg) = sample();
    let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
    store.try_lease(key, "owner-a", "run-1", 12_345).unwrap();

    let path = root.join(".leases").join(format!("{}.lease", key.to_hex()));
    assert!(
        path.is_file(),
        "lease must land at <root>/.leases/<32 hex>.lease"
    );
    assert_eq!(store.lease_path(key), path);
    let raw = std::fs::read_to_string(&path).unwrap();
    assert!(
        !raw.contains('\n'),
        "lease files are single-line compact JSON"
    );
    // Byte-level key order: parse and reserialise through LeaseInfo's own
    // ToJson — equality proves the file uses exactly that field order
    // (owner, run_id, acquired_unix_ms, ttl_ms, done) and spacing.
    let parsed = store.read_lease(key).unwrap();
    assert_eq!(parsed.owner, "owner-a");
    assert_eq!(parsed.run_id, "run-1");
    assert_eq!(parsed.ttl_ms, 12_345);
    assert!(!parsed.done);
    assert_eq!(raw, parsed.to_json().to_string_compact());
    assert!(
        raw.starts_with("{\"owner\":"),
        "owner leads the lease envelope: {raw}"
    );

    // Done markers rewrite in place with the same shape, ttl_ms 0.
    store.mark_done(key, "owner-a", "run-1").unwrap();
    let raw = std::fs::read_to_string(&path).unwrap();
    let parsed = store.read_lease(key).unwrap();
    assert!(parsed.done);
    assert_eq!(parsed.ttl_ms, 0, "done leases never expire");
    assert_eq!(raw, parsed.to_json().to_string_compact());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_pre_refactor_store_tree_round_trips_through_both_apis() {
    // Write through ResultStore, then read the same tree through a second,
    // completely fresh handle (a different process in real deployments) and
    // assert entry + lease + done marker agree — the cross-process contract
    // multi-host runs depend on.
    let root = temp_dir("roundtrip");
    let (w, cfg) = sample();
    let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
    let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
    {
        let writer = ResultStore::open(&root).unwrap();
        writer.put(key, &result).unwrap();
        writer.try_lease(key, "w", "run-9", 60_000).unwrap();
        writer.mark_done(key, "w", "run-9").unwrap();
    }
    let reader = ResultStore::open(&root).unwrap();
    assert_eq!(reader.get(key), Some(result));
    assert!(reader.completed_during(key, "run-9"));
    assert!(!reader.completed_during(key, "run-10"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fingerprints_and_hex_addresses_are_stable() {
    // The address derivation itself: equal inputs → equal 32-char hex; a
    // config change moves the address. (The *values* are version-salted, so
    // we pin properties, not constants.)
    let (w, cfg) = sample();
    let a = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
    let b = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
    assert_eq!(a, b);
    assert_eq!(a.to_hex().len(), 32);
    assert_eq!(Fingerprint::parse_hex(&a.to_hex()), Some(a));
    let other = cell_fingerprint(&w, DefenseKind::SttSpectre, &cfg);
    assert_ne!(a, other, "the defense is part of the address");
}
