//! `Program::validate()` over every program the repository can construct:
//! the workload suites at every scale, every thread's program, and the attack
//! corpus. Structural invariants (branch targets in range, no falling off the
//! end, non-overlapping data segments) hold corpus-wide — the debug-build
//! hook in `ProgramBuilder::build` checks whatever a test happens to build,
//! this test checks everything, in release builds too.

use uarch_isa::prog::Program;
use workloads::{domain_switch_suite, parsec_suite, spec_suite, Scale};

fn check(program: &Program, context: &str) {
    if let Err(e) = program.validate() {
        panic!("{context}: program `{}` is invalid: {e}", program.name());
    }
}

#[test]
fn every_workload_program_at_every_scale_validates() {
    for scale in [Scale::Tiny, Scale::Small, Scale::Large] {
        for workload in spec_suite(scale) {
            for program in &workload.thread_programs {
                check(program, &format!("spec {:?} {}", scale, workload.name));
            }
        }
        for cores in [1, 4] {
            for workload in parsec_suite(scale, cores) {
                for program in &workload.thread_programs {
                    check(
                        program,
                        &format!("parsec {:?} x{cores} {}", scale, workload.name),
                    );
                }
            }
        }
        for workload in domain_switch_suite(scale) {
            for program in &workload.thread_programs {
                check(program, &format!("domain {:?} {}", scale, workload.name));
            }
        }
    }
}

#[test]
fn every_attack_corpus_program_validates() {
    for entry in attacks::attack_corpus() {
        check(&entry.program, "attack corpus");
    }
    let victim = attacks::spectre::victim_program(3, 8);
    check(&victim, "spectre victim (alternate parameters)");
}
