//! Cross-crate performance integration tests: sanity-check the *shape* of the
//! headline results on a reduced scale. These are not the paper's numbers
//! (the figure binaries in the `bench` crate regenerate those); they guard
//! against regressions that would flip the qualitative conclusions.
//!
//! All grids run through [`ExperimentSession`], so baselines are shared and
//! cells run in parallel.

use muontrap_repro::prelude::*;

fn config() -> SystemConfig {
    SystemConfig::paper_default()
}

#[test]
fn every_workload_completes_under_every_defense_at_tiny_scale() {
    let cfg = SystemConfig::small_test();
    let kinds = [
        DefenseKind::Unprotected,
        DefenseKind::InsecureL0,
        DefenseKind::MuonTrap,
        DefenseKind::MuonTrapClearOnMisspeculate,
        DefenseKind::InvisiSpecSpectre,
        DefenseKind::InvisiSpecFuture,
        DefenseKind::SttSpectre,
        DefenseKind::SttFuture,
    ];
    for suite in [
        spec_suite(Scale::Tiny),
        parsec_suite(Scale::Tiny, cfg.cores),
    ] {
        let report = ExperimentSession::new()
            .workloads(suite)
            .defenses(kinds)
            .config(cfg.clone())
            .run();
        for cell in &report.cells {
            assert!(
                cell.completed,
                "{} did not complete under {}",
                cell.workload, cell.column
            );
            assert!(cell.committed > 0);
        }
    }
}

#[test]
fn muontrap_overhead_stays_in_a_plausible_band_on_spec_like_kernels() {
    // The paper's headline: 4% average slowdown on SPEC CPU2006, with a worst
    // case of 47% and some speedups. At Tiny scale we only require each kernel
    // to stay within a generous band and the geomean to stay close to 1.
    let report = ExperimentSession::new()
        .workloads(spec_suite(Scale::Tiny))
        .defenses([DefenseKind::MuonTrap])
        .config(config())
        .run();
    for cell in &report.cells {
        assert!(
            cell.normalized_time > 0.4 && cell.normalized_time < 1.9,
            "{}: normalised time {} far outside the plausible band",
            cell.workload,
            cell.normalized_time
        );
    }
    let geomean = report.geomeans()[0];
    assert!(
        geomean > 0.8 && geomean < 1.35,
        "SPEC-like geomean {geomean} should be close to 1 (paper: 1.04)"
    );
}

#[test]
fn protection_mechanisms_accumulate_without_catastrophic_slowdown() {
    // Figure 8/9 shape: each successively enabled mechanism changes
    // performance only modestly on a representative kernel.
    let suite = spec_suite(Scale::Tiny);
    let workload = suite
        .iter()
        .find(|w| w.name == "hmmer")
        .expect("kernel exists");
    let report = ExperimentSession::new()
        .workloads([workload.clone()])
        .defenses_labeled(bench_configs().into_iter().map(|(l, k)| (l.to_string(), k)))
        .config(config())
        .run();
    for cell in &report.cells {
        assert!(
            cell.normalized_time > 0.4 && cell.normalized_time < 2.0,
            "{}: normalised time {} out of band",
            cell.column,
            cell.normalized_time
        );
    }
}

/// The cumulative configurations of figures 8/9, reconstructed here so this
/// test does not depend on the bench crate.
fn bench_configs() -> Vec<(&'static str, DefenseKind)> {
    let fcache_only = ProtectionConfig {
        data_filter_cache: true,
        secure_filter: true,
        coherence_protection: false,
        instruction_filter_cache: false,
        prefetch_at_commit: false,
        clear_on_misspeculate: false,
        parallel_l1_access: false,
        filter_tlb: true,
    };
    let full = ProtectionConfig::muontrap_default();
    vec![
        ("insecure-l0", DefenseKind::InsecureL0),
        ("fcache-only", DefenseKind::MuonTrapCustom(fcache_only)),
        ("full", DefenseKind::MuonTrapCustom(full)),
        ("clear-misspec", DefenseKind::MuonTrapClearOnMisspeculate),
        ("parallel-l1", DefenseKind::MuonTrapParallelL1),
    ]
}

#[test]
fn parallel_l1_lookup_is_not_slower_than_serial_lookup() {
    let suite = spec_suite(Scale::Tiny);
    let workload = suite
        .iter()
        .find(|w| w.name == "omnetpp")
        .expect("kernel exists");
    let report = ExperimentSession::new()
        .workloads([workload.clone()])
        .defenses([DefenseKind::MuonTrap, DefenseKind::MuonTrapParallelL1])
        .config(config())
        .run();
    let serial = report.cell(0, 0).normalized_time;
    let parallel = report.cell(0, 1).normalized_time;
    assert!(
        parallel <= serial + 0.02,
        "parallel L0/L1 lookup ({parallel}) must not be slower than serial ({serial})"
    );
}

#[test]
fn undersized_filter_caches_hurt_cache_sensitive_parallel_workloads() {
    // Figure 5 shape: a one-line filter cache is substantially worse than the
    // 2 KiB default for at least one Parsec-like kernel. The sweep shares one
    // baseline per workload, so this costs 3 simulations, not 4.
    let cfg = config();
    let suite = parsec_suite(Scale::Tiny, cfg.cores);
    let workload = suite
        .iter()
        .find(|w| w.name == "streamcluster")
        .expect("kernel exists");
    let report = ExperimentSession::new()
        .workloads([workload.clone()])
        .defenses([DefenseKind::MuonTrap])
        .config_sweep([
            ("64 B".to_string(), cfg.with_data_filter(64, 1)),
            ("2 KiB".to_string(), cfg.with_data_filter(2048, 32)),
        ])
        .run();
    assert_eq!(report.baseline_sims, 1);
    let tiny = report.cell(0, 0).normalized_time;
    let default = report.cell(0, 1).normalized_time;
    assert!(
        tiny >= default,
        "a 64 B filter cache ({tiny}) should not beat the 2 KiB one ({default})"
    );
}

#[test]
fn context_switch_flush_cost_appears_in_time_sliced_runs() {
    // Two processes sharing one core force regular filter flushes; the run
    // still completes and the flush counters line up with the switches.
    let mut cfg = SystemConfig::small_test();
    cfg.cores = 1;
    cfg.scheduler_quantum = 5_000;
    let suite = spec_suite(Scale::Tiny);
    let a = suite.iter().find(|w| w.name == "hmmer").unwrap();
    let model = build_defense(DefenseKind::MuonTrap, &cfg);
    let mut system = System::new(&cfg, model);
    let pid_a = system.add_process();
    let pid_b = system.add_process();
    system.add_thread(pid_a, a.thread_programs[0].clone());
    system.add_thread(pid_b, a.thread_programs[0].clone());
    let report = system.run(60_000_000);
    assert!(report.completed);
    assert!(report.context_switches > 2);
    assert!(
        report.stats.counter("muontrap.context_switch_flushes") >= report.context_switches,
        "every context switch must flush the filter caches"
    );
}

#[test]
fn warm_result_store_regenerates_a_mixed_grid_without_simulating() {
    // End-to-end store check at the facade level: a grid mixing named and
    // custom defenses (the hardest keying case — custom kinds share a label
    // and differ only in their ProtectionConfig payload) regenerates from a
    // warm store with zero simulations and identical numbers.
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir =
        std::env::temp_dir().join(format!("muontrap-e2e-store-{}-{nanos}", std::process::id()));
    let suite = spec_suite(Scale::Tiny);
    let grid = || {
        ExperimentSession::new()
            .workloads(suite.iter().take(2).cloned())
            .defenses_labeled(bench_configs().into_iter().map(|(l, k)| (l.to_string(), k)))
            .config(SystemConfig::small_test())
            .with_store(&dir)
    };
    let cold = grid().run();
    assert_eq!(cold.sims_executed, cold.total_sims());
    assert_eq!(cold.cached_cells(), 0);

    let warm = grid().run();
    assert_eq!(warm.sims_executed, 0, "warm store must satisfy the grid");
    assert_eq!(warm.cached_cells(), warm.cells.len());
    for (a, b) in cold.cells.iter().zip(&warm.cells) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.normalized_time, b.normalized_time);
        assert_eq!(a.stats, b.stats);
    }
    std::fs::remove_dir_all(&dir).ok();
}
