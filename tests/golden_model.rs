//! Cross-crate integration test: the out-of-order core must be architecturally
//! equivalent to the in-order functional interpreter for every workload in
//! both suites, under every memory model. Timing may differ wildly; committed
//! register state and instruction counts must not.

use muontrap_repro::prelude::*;
use ooo_core::memmodel::FixedLatencyMemory;
use uarch_isa::Interpreter;

/// Runs a single-threaded program on the out-of-order core with the given
/// memory model and returns the halted thread context.
fn run_on_core(program: &uarch_isa::Program, mem: &mut dyn MemoryModel) -> ooo_core::ThreadContext {
    let cfg = SystemConfig::paper_default();
    let mut core = ooo_core::OooCore::new(0, &cfg);
    core.run_to_halt(ThreadContext::new(program.clone(), 0), mem, 50_000_000)
        .expect("program halts on the out-of-order core");
    core.swap_thread(None).expect("thread context returned")
}

#[test]
fn spec_like_kernels_match_the_interpreter_under_fixed_latency_memory() {
    for workload in spec_suite(Scale::Tiny) {
        let program = &workload.thread_programs[0];
        let mut interp = Interpreter::new(program);
        let golden = interp.run(20_000_000).expect("interpreter halts");

        let mut mem = FixedLatencyMemory::default();
        let finished = run_on_core(program, &mut mem);

        assert_eq!(
            finished.regs.snapshot(),
            golden.regs.snapshot(),
            "architectural register mismatch for {}",
            workload.name
        );
    }
}

#[test]
fn representative_kernels_match_the_interpreter_under_muontrap_and_baseline() {
    // The memory model must never change architectural results, only timing.
    let cfg = SystemConfig::paper_default();
    let names = ["mcf", "sjeng", "gcc", "calculix", "lbm"];
    let suite = spec_suite(Scale::Tiny);
    for name in names {
        let workload = suite
            .iter()
            .find(|w| w.name == name)
            .expect("kernel exists");
        let program = &workload.thread_programs[0];
        let mut interp = Interpreter::new(program);
        let golden = interp.run(20_000_000).expect("interpreter halts");

        for kind in [
            DefenseKind::Unprotected,
            DefenseKind::MuonTrap,
            DefenseKind::SttFuture,
        ] {
            let mut mem = build_defense(kind, &cfg);
            let finished = run_on_core(program, mem.as_mut());
            assert_eq!(
                finished.regs.snapshot(),
                golden.regs.snapshot(),
                "architectural mismatch for {name} under {}",
                kind.label()
            );
        }
    }
}

#[test]
fn committed_instruction_counts_match_the_interpreter() {
    let cfg = SystemConfig::paper_default();
    let suite = spec_suite(Scale::Tiny);
    let workload = suite
        .iter()
        .find(|w| w.name == "gobmk")
        .expect("kernel exists");
    let program = &workload.thread_programs[0];
    let mut interp = Interpreter::new(program);
    let golden = interp.run(20_000_000).expect("interpreter halts");

    let mut core = ooo_core::OooCore::new(0, &cfg);
    let mut mem = build_defense(DefenseKind::MuonTrap, &cfg);
    core.run_to_halt(
        ThreadContext::new(program.clone(), 0),
        mem.as_mut(),
        50_000_000,
    )
    .expect("halts");
    assert_eq!(
        core.stats().committed,
        golden.retired,
        "the out-of-order core must commit exactly the instructions the program retires"
    );
}
