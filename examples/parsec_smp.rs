//! Multicore example: run the Parsec-like shared-memory workloads on four
//! cores under every defense and print normalised execution times — a reduced
//! version of figure 4 of the paper.
//!
//! ```text
//! cargo run --release --example parsec_smp
//! ```

use muontrap_repro::prelude::*;

fn main() {
    let config = SystemConfig::paper_default();
    let suite = parsec_suite(Scale::Small, config.cores);
    let kinds = [
        DefenseKind::MuonTrap,
        DefenseKind::InvisiSpecSpectre,
        DefenseKind::InvisiSpecFuture,
        DefenseKind::SttSpectre,
        DefenseKind::SttFuture,
    ];

    print!("{:<16}", "workload");
    for k in &kinds {
        print!("{:>22}", k.label());
    }
    println!();

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for workload in &suite {
        let results = normalized_times(workload, &kinds, &config);
        print!("{:<16}", workload.name);
        for (i, (_, value)) in results.iter().enumerate() {
            print!("{value:>22.3}");
            columns[i].push(*value);
        }
        println!();
    }
    print!("{:<16}", "geomean");
    for column in &columns {
        print!("{:>22.3}", geometric_mean(column));
    }
    println!();
    println!("\n(Lower is better; 1.0 matches the unprotected baseline. The paper reports a");
    println!("geomean speedup for MuonTrap on Parsec and substantial slowdowns for the");
    println!("InvisiSpec and STT 'Future' variants.)");
}
