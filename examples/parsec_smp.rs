//! Multicore example: run the Parsec-like shared-memory workloads on four
//! cores under every defense and print normalised execution times — a reduced
//! version of figure 4 of the paper.
//!
//! ```text
//! cargo run --release --example parsec_smp
//! ```

use muontrap_repro::prelude::*;

fn main() {
    let config = SystemConfig::paper_default();
    // One session grid: the whole suite × five defenses, one shared baseline
    // per workload, cells fanned out across every core of the host.
    let report = ExperimentSession::new()
        .title("Parsec-like (4 threads), normalised execution time")
        .scale(Scale::Small)
        .workloads(parsec_suite(Scale::Small, config.cores))
        .defenses(DefenseKind::figure3_set())
        .config(config)
        .run();

    print!("{:<16}", "workload");
    for column in &report.columns {
        print!("{column:>22}");
    }
    println!();
    for (w, name) in report.workloads.iter().enumerate() {
        print!("{name:<16}");
        for c in 0..report.columns.len() {
            print!("{:>22.3}", report.cell(w, c).normalized_time);
        }
        println!();
    }
    print!("{:<16}", "geomean");
    for geomean in report.geomeans() {
        print!("{geomean:>22.3}");
    }
    println!();
    println!(
        "\n({} baseline + {} protected simulations on {} threads, {:.0} ms wall clock.)",
        report.baseline_sims,
        report.cells.len(),
        report.threads,
        report.wall_clock_ms
    );
    println!("\n(Lower is better; 1.0 matches the unprotected baseline. The paper reports a");
    println!("geomean speedup for MuonTrap on Parsec and substantial slowdowns for the");
    println!("InvisiSpec and STT 'Future' variants.)");
}
