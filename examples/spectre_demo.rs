//! Spectre demonstration: run the full prime-and-probe attack (Attack 1 of
//! the paper) against several memory-system configurations and show exactly
//! what the attacker observes in each case.
//!
//! ```text
//! cargo run --release --example spectre_demo
//! ```

use attacks::spectre::spectre_prime_probe_with_secret;
use muontrap_repro::prelude::*;

fn main() {
    let config = SystemConfig::paper_default();
    let secret = 11u64;
    println!("The victim process holds the secret value {secret}.");
    println!("The attacker process shares one read-only page (the probe array) with it.\n");

    for kind in [
        DefenseKind::Unprotected,
        DefenseKind::InsecureL0,
        DefenseKind::MuonTrap,
        DefenseKind::MuonTrapClearOnMisspeculate,
        DefenseKind::InvisiSpecSpectre,
        DefenseKind::SttSpectre,
    ] {
        let outcome = spectre_prime_probe_with_secret(kind, &config, secret);
        println!("=== {} ===", kind.label());
        println!("  probe-line latencies observed by the attacker (cycles):");
        print!("   ");
        for (i, lat) in outcome.probe_latencies.iter().enumerate() {
            if i >= 2 {
                print!(" [{i:>2}]{lat:>5}");
            }
        }
        println!();
        println!(
            "  attacker's guess: {}   actual secret: {}   leaked: {}",
            outcome.recovered, outcome.secret, outcome.leaked
        );
        println!();
    }

    println!("Attacks 2-6 (litmus form) against the unprotected baseline and MuonTrap:");
    for kind in [DefenseKind::Unprotected, DefenseKind::MuonTrap] {
        println!("--- {} ---", kind.label());
        for outcome in attacks::litmus::run_litmus_suite(kind, &config) {
            println!("  {:42} leaked: {}", outcome.attack, outcome.leaked);
        }
    }
}
