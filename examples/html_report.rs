//! A single evaluation figure rendered end-to-end into a self-contained
//! HTML page — the `--html` path of the figure binaries, driven in code.
//!
//! ```text
//! cargo run --release --example html_report
//! ```
//!
//! The flow is the whole rendering stack in four steps: resolve the figure's
//! session from the by-name registry, run the grid, look up the figure's
//! chart metadata (shape, axis titles, caption, paper cross-reference), and
//! fold the chart plus provenance into one HTML document with zero external
//! assets — open the printed path in any browser, no server, no network.
//! The all-figures version of the same artefact is
//! `report --html report.html`.

use simkit::config::SystemConfig;
use workloads::Scale;

fn main() {
    // The §4.8 domain-switch stress grid: small enough to simulate in
    // seconds at tiny scale, and its page carries both a chart and the
    // flush-counter summary table.
    let name = "domain";
    let config = SystemConfig::paper_default();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let session = bench::figure_session(name, Scale::Tiny, &config, threads, None)
        .expect("domain is a registered figure");

    println!("simulating the `{name}` grid at tiny scale…");
    let report = session.run();
    println!(
        "…{} cells in {:.0} ms ({} simulations)",
        report.cells.len(),
        report.wall_clock_ms,
        report.sims_executed
    );

    let meta = bench::render::figure_meta(name).expect("registered figures have metadata");
    println!("chart: {:?} · {}", meta.kind, meta.paper_section);

    let html = bench::render::figure_document(name, &report, "html-report-example")
        .expect("registered figures render");
    let path = std::env::temp_dir().join("muontrap-html-report-example.html");
    std::fs::write(&path, &html).expect("write the page");

    println!(
        "\nwrote {} ({} bytes, {} chart, {} table)",
        path.display(),
        html.len(),
        html.matches("<svg ").count(),
        html.matches("<table>").count(),
    );
    println!("open it in a browser — every asset is inline.");
    assert!(!html.contains("http"), "the page must stay self-contained");
}
