//! Design-space exploration: sweep the data filter cache's size and
//! associativity on a subset of the Parsec-like suite, reproducing the shape
//! of figures 5 and 6 of the paper at a reduced scale.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use muontrap_repro::prelude::*;
use simsys::experiment::with_filter_cache;

fn main() {
    let config = SystemConfig::paper_default();
    // Two cache-sensitive kernels keep the example quick; the `fig5`/`fig6`
    // binaries in the `bench` crate run the full suite.
    let suite = parsec_suite(Scale::Tiny, config.cores);
    let chosen: Vec<&Workload> = suite
        .iter()
        .filter(|w| w.name == "streamcluster" || w.name == "freqmine")
        .collect();

    println!("== Filter-cache size sweep (fully associative), normalised execution time ==");
    print!("{:<16}", "size");
    for w in &chosen {
        print!("{:>16}", w.name);
    }
    println!();
    for size in [64u64, 256, 1024, 2048, 4096] {
        let cfg = with_filter_cache(&config, size, (size / config.line_bytes) as usize);
        print!("{:<16}", format!("{size} B"));
        for w in &chosen {
            let t = normalized_time(w, DefenseKind::MuonTrap, &cfg);
            print!("{t:>16.3}");
        }
        println!();
    }

    println!("\n== 2 KiB filter-cache associativity sweep, normalised execution time ==");
    print!("{:<16}", "ways");
    for w in &chosen {
        print!("{:>16}", w.name);
    }
    println!();
    for ways in [1usize, 2, 4, 8, 32] {
        let cfg = with_filter_cache(&config, 2048, ways);
        print!("{:<16}", format!("{ways}-way"));
        for w in &chosen {
            let t = normalized_time(w, DefenseKind::MuonTrap, &cfg);
            print!("{t:>16.3}");
        }
        println!();
    }

    println!("\nExpected shape (paper, figures 5 and 6): large slowdowns below ~256 B,");
    println!("diminishing returns past 2 KiB, and full performance recovered by 4-way associativity.");
}
