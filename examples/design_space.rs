//! Design-space exploration: sweep the data filter cache's size and
//! associativity on a subset of the Parsec-like suite, reproducing the shape
//! of figures 5 and 6 of the paper at a reduced scale.
//!
//! Each sweep is one [`ExperimentSession`] with a `config_sweep` axis; the
//! unprotected baseline ignores filter-cache geometry, so every sweep point
//! shares the same per-workload baseline run.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use muontrap_repro::prelude::*;

fn print_sweep(report: &RunReport) {
    print!("{:<16}", "config");
    for name in &report.workloads {
        print!("{name:>16}");
    }
    println!();
    for (c, label) in report.columns.iter().enumerate() {
        print!("{label:<16}");
        for w in 0..report.workloads.len() {
            print!("{:>16.3}", report.cell(w, c).normalized_time);
        }
        println!();
    }
}

fn main() {
    let config = SystemConfig::paper_default();
    // Two cache-sensitive kernels keep the example quick; the `fig5`/`fig6`
    // binaries in the `bench` crate run the full suite.
    let chosen: Vec<Workload> = parsec_suite(Scale::Tiny, config.cores)
        .into_iter()
        .filter(|w| w.name == "streamcluster" || w.name == "freqmine")
        .collect();

    println!("== Filter-cache size sweep (fully associative), normalised execution time ==");
    let sizes = ExperimentSession::new()
        .workloads(chosen.clone())
        .defenses([DefenseKind::MuonTrap])
        .config_sweep([64u64, 256, 1024, 2048, 4096].map(|size| {
            (
                format!("{size} B"),
                config.with_data_filter(size, (size / config.line_bytes) as usize),
            )
        }))
        .run();
    print_sweep(&sizes);

    println!("\n== 2 KiB filter-cache associativity sweep, normalised execution time ==");
    let ways = ExperimentSession::new()
        .workloads(chosen)
        .defenses([DefenseKind::MuonTrap])
        .config_sweep(
            [1usize, 2, 4, 8, 32]
                .map(|ways| (format!("{ways}-way"), config.with_data_filter(2048, ways))),
        )
        .run();
    print_sweep(&ways);

    println!(
        "\n(Each sweep ran {} simulations but only {} baselines: the unprotected",
        sizes.cells.len() + sizes.baseline_sims,
        sizes.baseline_sims
    );
    println!("machine ignores filter-cache geometry, so sweep points share baselines.)");
    println!("\nExpected shape (paper, figures 5 and 6): large slowdowns below ~256 B,");
    println!(
        "diminishing returns past 2 KiB, and full performance recovered by 4-way associativity."
    );
}
