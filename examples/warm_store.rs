//! The content-addressed result store in action: run a figure-3-shaped grid
//! twice against the same store directory and watch the second run complete
//! without executing a single simulation.
//!
//! ```text
//! cargo run --release --example warm_store
//! ```
//!
//! The same mechanism backs every figure binary via `--store DIR` (or the
//! `MUONTRAP_STORE` environment variable), so regenerating the paper's
//! evaluation after a code change only re-simulates what the change actually
//! invalidated — the store keys on workload code, machine/defense
//! configuration and the simulator version.

use std::time::Instant;

use muontrap_repro::prelude::*;

fn main() {
    // Unique per run (pid alone can be recycled, leaving a stale warm store
    // behind if a previous run crashed before its cleanup).
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "muontrap-warm-store-{}-{nanos}",
        std::process::id()
    ));
    let grid = || {
        ExperimentSession::new()
            .title("SPEC-like subset under the figure-3 defenses")
            .scale(Scale::Tiny)
            .workloads(spec_suite(Scale::Tiny).into_iter().take(6))
            .defenses(DefenseKind::figure3_set())
            .config(SystemConfig::small_test())
            .with_store(&dir)
    };

    println!("store: {}\n", dir.display());
    let started = Instant::now();
    let cold = grid().run();
    println!(
        "cold run : {:>4} simulations executed ({} baselines + {} cells), {:.0} ms",
        cold.sims_executed,
        cold.baseline_sims,
        cold.sims_executed - cold.baseline_sims,
        started.elapsed().as_secs_f64() * 1e3,
    );

    let started = Instant::now();
    let warm = grid().run();
    println!(
        "warm run : {:>4} simulations executed, {:>3.0}% store hits, {:.2} ms",
        warm.sims_executed,
        warm.cache_hit_rate() * 100.0,
        started.elapsed().as_secs_f64() * 1e3,
    );
    assert_eq!(warm.sims_executed, 0);
    assert_eq!(warm.cells, {
        let mut cells = cold.cells.clone();
        for cell in &mut cells {
            cell.cached = true; // the only difference: provenance
        }
        cells
    });

    // Changing any keyed input — here, the filter-cache geometry — misses.
    let started = Instant::now();
    let changed = grid()
        .config(SystemConfig::small_test().with_data_filter(256, 4))
        .run();
    println!(
        "changed  : {:>4} simulations executed after resizing the filter cache, {:.0} ms",
        changed.sims_executed,
        started.elapsed().as_secs_f64() * 1e3,
    );
    assert!(changed.sims_executed > 0);
    assert_eq!(
        changed.baseline_sims, 0,
        "the unprotected baseline ignores filter geometry, so it still hits"
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("\n(The figure binaries share this: `fig3 --store DIR`, run twice.)");
}
