//! Quickstart: run one SPEC-like workload under the unprotected baseline and
//! under MuonTrap, and print the slowdown plus the key protection statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use muontrap_repro::prelude::*;

fn main() {
    let config = SystemConfig::paper_default();
    println!("Simulated system (Table 1 of the paper):\n{config}\n");

    // Pick a latency-bound, pointer-chasing kernel (the stand-in for mcf).
    let suite = spec_suite(Scale::Small);
    let workload = suite.iter().find(|w| w.name == "mcf").expect("mcf kernel exists");
    println!("Workload: {} — {}", workload.name, workload.description);

    let baseline = run_workload(workload, DefenseKind::Unprotected, &config);
    let protected = run_workload(workload, DefenseKind::MuonTrap, &config);

    println!("\nunprotected : {:>10} cycles  (IPC {:.2})", baseline.cycles, baseline.ipc());
    println!("muontrap    : {:>10} cycles  (IPC {:.2})", protected.cycles, protected.ipc());
    println!(
        "normalised execution time: {:.3} (1.0 = no overhead)",
        protected.cycles as f64 / baseline.cycles as f64
    );

    println!("\nMuonTrap activity during the run:");
    for counter in [
        "muontrap.l0d_hits",
        "muontrap.l0d_misses",
        "muontrap.commit_writethroughs",
        "muontrap.store_upgrade_broadcasts",
        "muontrap.se_upgrades",
        "muontrap.coherence_nacks",
        "muontrap.syscall_flushes",
        "muontrap.context_switch_flushes",
    ] {
        println!("  {:40} {}", counter, protected.stats.counter(counter));
    }
}
