//! Quickstart: run one SPEC-like workload under the unprotected baseline and
//! under MuonTrap through an [`ExperimentSession`], and print the slowdown
//! plus the key protection statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use muontrap_repro::prelude::*;

fn main() {
    let config = SystemConfig::paper_default();
    println!("Simulated system (Table 1 of the paper):\n{config}\n");

    // Pick a latency-bound, pointer-chasing kernel (the stand-in for mcf).
    let suite = spec_suite(Scale::Small);
    let workload = suite
        .iter()
        .find(|w| w.name == "mcf")
        .expect("mcf kernel exists");
    println!("Workload: {} — {}", workload.name, workload.description);

    // One grid cell: the session runs the shared Unprotected baseline and the
    // MuonTrap machine, and normalises the latter to the former.
    let report = ExperimentSession::new()
        .title("quickstart")
        .scale(Scale::Small)
        .workloads([workload.clone()])
        .defenses([DefenseKind::MuonTrap])
        .config(config)
        .run();
    let cell = report.cell(0, 0);

    println!("\nunprotected : {:>10} cycles", cell.baseline_cycles);
    println!(
        "muontrap    : {:>10} cycles  (IPC {:.2})",
        cell.cycles,
        cell.ipc()
    );
    println!(
        "normalised execution time: {:.3} (1.0 = no overhead)",
        cell.normalized_time
    );

    println!("\nMuonTrap activity during the run:");
    for counter in [
        "muontrap.l0d_hits",
        "muontrap.l0d_misses",
        "muontrap.commit_writethroughs",
        "muontrap.store_upgrade_broadcasts",
        "muontrap.se_upgrades",
        "muontrap.coherence_nacks",
        "muontrap.syscall_flushes",
        "muontrap.context_switch_flushes",
    ] {
        println!("  {:40} {}", counter, cell.stats.counter(counter));
    }
}
