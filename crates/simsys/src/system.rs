//! The multicore system: processes, threads, scheduling and the simulation
//! loop.

use std::collections::VecDeque;

use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use memsys::tlb::PageTable;
use ooo_core::context::{shared_memory_for, SharedMemory, ThreadContext};
pub use ooo_core::core::naive_loop_requested;
use ooo_core::core::OooCore;
use ooo_core::events::CoreEvent;
use ooo_core::memmodel::{DomainSwitch, MemoryModel};
use uarch_isa::prog::Program;

/// Identifier of a process (protection domain).
pub type ProcessId = usize;

/// Identifier of a software thread.
pub type ThreadId = usize;

/// A process: a protection domain with its own page table whose threads share
/// one functional memory.
#[derive(Debug)]
struct Process {
    page_table: PageTable,
    memory: Option<SharedMemory>,
}

/// A software thread known to the scheduler.
#[derive(Debug)]
struct Thread {
    process: ProcessId,
    /// The context when the thread is not currently on a core.
    context: Option<ThreadContext>,
    finished: bool,
}

/// Final report of a completed simulation.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Cycles until every thread halted (or the budget ran out).
    pub cycles: u64,
    /// Total committed instructions across all cores.
    pub committed: u64,
    /// Whether every thread ran to completion within the budget.
    pub completed: bool,
    /// Per-core and memory-model statistics.
    pub stats: StatSet,
    /// Number of context switches performed by the scheduler.
    pub context_switches: u64,
}

impl SystemReport {
    /// Aggregate instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// A multicore machine with an OS-lite scheduler.
pub struct System {
    config: SystemConfig,
    cores: Vec<OooCore>,
    memory_model: Box<dyn MemoryModel>,
    processes: Vec<Process>,
    threads: Vec<Thread>,
    /// Which thread is currently scheduled on each core.
    running: Vec<Option<ThreadId>>,
    /// Threads waiting for a core.
    ready: VecDeque<ThreadId>,
    /// When the thread on each core was scheduled (for the quantum).
    scheduled_at: Vec<Cycle>,
    now: Cycle,
    context_switches: u64,
    /// Flush the branch-target buffer on context switches (the variant-2
    /// mitigation the paper assumes is present on recent hardware).
    pub flush_btb_on_switch: bool,
    /// Reusable per-tick buffer for core events — the hot loop never
    /// allocates for event delivery.
    event_scratch: Vec<CoreEvent>,
    /// Whether [`run`](Self::run) may drive the event queue instead of
    /// ticking every core every cycle. Defaults to on unless
    /// `MUONTRAP_NAIVE_LOOP` is set; either way the simulated behaviour is
    /// bit-identical (see `tests/hotpath_golden.rs`).
    fast_forward: bool,
    /// Per-core event queue entry: the next cycle each core must be ticked.
    /// A quiescent core sleeps until its earliest completion ticket (or a
    /// scheduler event); an active core is due every cycle.
    core_wake: Vec<Cycle>,
    /// Per-core statistics watermark: cycles `[0, accounted_until)` have been
    /// counted in the core's `stats.cycles`, either by a real tick or by a
    /// lazy [`OooCore::skip_idle_cycles`] credit at the next tick (or at a
    /// preemption or the end of the run). Keeping the credit lazy means a
    /// sleeping core costs nothing per skipped cycle.
    accounted_until: Vec<u64>,
    /// Number of `(core, cycle)` ticks actually performed — the event count
    /// of the event-driven loop. The naive loop performs
    /// `cycles × running cores` of them; the ratio is the speedup lever.
    events_processed: u64,
}

impl System {
    /// Creates a system with the given memory model (defense).
    pub fn new(config: &SystemConfig, memory_model: Box<dyn MemoryModel>) -> Self {
        let cores = (0..config.cores).map(|i| OooCore::new(i, config)).collect();
        System {
            config: config.clone(),
            cores,
            memory_model,
            processes: Vec::new(),
            threads: Vec::new(),
            running: vec![None; config.cores],
            ready: VecDeque::new(),
            scheduled_at: vec![Cycle::ZERO; config.cores],
            now: Cycle::ZERO,
            context_switches: 0,
            flush_btb_on_switch: true,
            event_scratch: Vec::new(),
            fast_forward: !ooo_core::core::naive_loop_requested(),
            core_wake: vec![Cycle::ZERO; config.cores],
            accounted_until: vec![0; config.cores],
            events_processed: 0,
        }
    }

    /// Enables or disables the idle-cycle fast-forward in [`run`](Self::run).
    /// Reported cycle counts and statistics are identical either way; the
    /// switch exists for performance measurement and equivalence tests.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Read-only access to the memory model.
    pub fn memory_model(&self) -> &dyn MemoryModel {
        self.memory_model.as_ref()
    }

    /// Number of context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Creates a new process (protection domain) and returns its id.
    pub fn add_process(&mut self) -> ProcessId {
        let pid = self.processes.len();
        let page_table = PageTable::new(self.config.tlb.page_bytes, ((pid as u64) + 1) << 32);
        self.processes.push(Process {
            page_table,
            memory: None,
        });
        pid
    }

    /// Maps virtual page `vpn` of every listed process onto the same physical
    /// page, giving them shared memory (used by the attack litmus tests for
    /// attacker/victim shared libraries).
    pub fn map_shared_page(&mut self, processes: &[ProcessId], vpn: u64, ppn: u64) {
        for pid in processes {
            self.processes[*pid].page_table.map_shared(vpn, ppn);
        }
    }

    /// Adds a thread running `program` to process `pid` and returns its id.
    /// Threads of the same process share functional memory; the first thread's
    /// program provides the initial data segments, later threads' segments are
    /// loaded into the same memory.
    pub fn add_thread(&mut self, pid: ProcessId, program: Program) -> ThreadId {
        assert!(pid < self.processes.len(), "unknown process");
        let memory = match &self.processes[pid].memory {
            Some(m) => {
                // Load any additional data segments the new program carries.
                let mut mem = m.borrow_mut();
                for seg in program.data_segments() {
                    mem.write_bytes(seg.addr, &seg.bytes);
                }
                drop(mem);
                m.clone()
            }
            None => {
                let m = shared_memory_for(&program);
                self.processes[pid].memory = Some(m.clone());
                m
            }
        };
        let context = ThreadContext::with_shared_memory(program, pid, memory, 0);
        let tid = self.threads.len();
        self.threads.push(Thread {
            process: pid,
            context: Some(context),
            finished: false,
        });
        self.ready.push_back(tid);
        tid
    }

    /// Convenience: creates one process per entry of `programs` (or a single
    /// shared process when `shared_memory` is true) and adds each program as a
    /// thread. Returns the thread ids.
    pub fn load_workload(&mut self, programs: &[Program], shared_memory: bool) -> Vec<ThreadId> {
        if shared_memory {
            let pid = self.add_process();
            programs
                .iter()
                .map(|p| self.add_thread(pid, p.clone()))
                .collect()
        } else {
            programs
                .iter()
                .map(|p| {
                    let pid = self.add_process();
                    self.add_thread(pid, p.clone())
                })
                .collect()
        }
    }

    /// Whether every thread has finished.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }

    /// The functional memory of process `pid`, if any thread has been added to
    /// it. Attack harnesses use this to read back results the attacker
    /// program wrote (e.g. the secret value it recovered).
    pub fn process_memory(&self, pid: ProcessId) -> Option<SharedMemory> {
        self.processes.get(pid).and_then(|p| p.memory.clone())
    }

    /// Runs the machine until every thread halts or `max_cycles` elapse.
    ///
    /// The loop is event-driven per core: a core that reports itself
    /// quiescent (no pipeline work at all this cycle) with an idle memory
    /// model sleeps until its earliest completion ticket — while the other
    /// cores keep running — and the global clock jumps straight to the
    /// earliest wake among the cores and the scheduler's own events
    /// (quantum expiries, pending dispatches). Skipped cycles are credited
    /// lazily at each core's next tick. The resulting report is
    /// bit-identical to ticking every core every cycle
    /// (`tests/hotpath_golden.rs` proves it against pre-optimization
    /// recordings); only the wall clock shrinks.
    pub fn run(&mut self, max_cycles: u64) -> SystemReport {
        while !self.all_finished() && self.now.raw() < max_cycles {
            self.step(max_cycles);
        }
        // Catch up the stats of cores that were asleep when the run ended:
        // the naive loop would have kept ticking them (idly) to the end.
        for core_idx in 0..self.cores.len() {
            if self.running[core_idx].is_some() {
                self.credit_skipped(core_idx);
            }
        }
        let committed = self.cores.iter().map(|c| c.stats().committed).sum();
        let mut stats = StatSet::new();
        for core in &self.cores {
            stats.merge(&core.stats().to_stat_set(&format!("core{}", core.id())));
        }
        stats.merge(&self.memory_model.stats());
        stats.add("system.context_switches", self.context_switches);
        SystemReport {
            cycles: self.now.raw(),
            committed,
            completed: self.all_finished(),
            stats,
            context_switches: self.context_switches,
        }
    }

    /// Advances the machine by exactly one cycle, ticking every running core
    /// (no event skipping). External single-steppers get naive-loop
    /// semantics; [`run`](Self::run) uses the event-driven `step` internally.
    pub fn tick(&mut self) {
        self.process_cycle(true);
        self.now += 1;
    }

    /// Number of `(core, cycle)` pipeline ticks performed so far. The naive
    /// loop performs one per running core per cycle; the event-driven loop
    /// skips the quiescent ones, so `cycles × cores / events` measures how
    /// much of the grid the event queue jumped over.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Credits the cycles a sleeping core skipped since its last tick, so
    /// its cycle counter reads as if the naive loop had kept (idly) ticking
    /// it through `self.now` (exclusive).
    fn credit_skipped(&mut self, core_idx: usize) {
        let behind = self
            .now
            .raw()
            .saturating_sub(self.accounted_until[core_idx]);
        if behind > 0 {
            self.cores[core_idx].skip_idle_cycles(behind);
        }
        self.accounted_until[core_idx] = self.now.raw();
    }

    /// One scheduling decision plus one tick of every *due* running core —
    /// every running core when `force_all` is set (the naive loop), else
    /// only the cores whose wake cycle has arrived or whose memory model
    /// has queued background work.
    ///
    /// Cores are visited in index order, exactly as the naive loop visits
    /// them, so cross-core interactions through the shared memory model
    /// (invalidation queues) happen on identical cycles: a sleeping core's
    /// due-check consults `MemoryModel::next_event` *at its slot in the
    /// order*, which observes whatever earlier-indexed cores queued this
    /// cycle; work queued by later-indexed cores is caught by the post-pass
    /// in [`step`](Self::step) and ticks the core next cycle — just as the
    /// naive loop would.
    fn process_cycle(&mut self, force_all: bool) {
        self.schedule();
        let now = self.now;
        let mut events = std::mem::take(&mut self.event_scratch);
        for core_idx in 0..self.cores.len() {
            if self.running[core_idx].is_none() {
                continue;
            }
            let due = force_all
                || self.core_wake[core_idx] <= now
                || self.memory_model.next_event(core_idx, now) <= now;
            if !due {
                continue;
            }
            self.credit_skipped(core_idx);
            events.clear();
            self.cores[core_idx].tick(now, self.memory_model.as_mut(), &mut events);
            self.accounted_until[core_idx] = now.raw() + 1;
            self.events_processed += 1;
            for event in events.drain(..) {
                self.handle_event(core_idx, event);
            }
            if self.running[core_idx].is_none() {
                continue; // halted on this tick
            }
            self.core_wake[core_idx] =
                if self.cores[core_idx].quiescent() && self.memory_model.is_idle(core_idx) {
                    // `next_wake` takes the cycle of the *next* tick.
                    self.cores[core_idx].next_wake(now + 1)
                } else {
                    now + 1
                };
        }
        self.event_scratch = events;
    }

    /// Processes the current cycle, then advances the clock to the next
    /// event: the earliest core wake, a memory-model event for a sleeping
    /// core, a scheduler-quantum expiry (whenever a ready thread is waiting,
    /// so preemptions happen on exactly the cycle the naive loop performs
    /// them), or a pending dispatch onto a freed core. `limit` caps the jump
    /// (the cycle budget of [`run`](Self::run)). Skipped cycles are credited
    /// to each sleeping core lazily, at its next tick.
    fn step(&mut self, limit: u64) {
        let force_all = !self.fast_forward;
        self.process_cycle(force_all);
        self.now += 1;
        if force_all {
            return;
        }
        let mut target = Cycle::new(limit);
        let ready_waiting = !self.ready.is_empty();
        let mut free_core = false;
        let mut any_running = false;
        for core_idx in 0..self.cores.len() {
            if self.running[core_idx].is_none() {
                free_core = true;
                continue;
            }
            any_running = true;
            // Post-pass for cross-core side effects: a core (sleeping or
            // not) whose memory model picked up queued work this cycle —
            // an invalidation from a later-indexed core — must tick next
            // cycle to drain it on schedule.
            let mut wake = self.core_wake[core_idx];
            if wake > self.now && self.memory_model.next_event(core_idx, self.now) <= self.now {
                wake = self.now;
                self.core_wake[core_idx] = wake;
            }
            if ready_waiting {
                let expiry =
                    self.scheduled_at[core_idx].saturating_add(self.config.scheduler_quantum);
                wake = wake.min(expiry);
            }
            target = target.min(wake);
        }
        if ready_waiting && free_core {
            // A freed core with threads waiting: the next schedule() call
            // dispatches, so the next cycle must be processed.
            target = target.min(self.now);
        }
        if !any_running {
            // Nothing on any core: either every thread just finished (the
            // caller's loop exits without the clock overshooting the halt
            // cycle) or a dispatch is due next cycle — no jump either way.
            return;
        }
        if target > self.now {
            self.now = target;
        }
    }

    // ------------------------------------------------------------------

    fn schedule(&mut self) {
        for core_idx in 0..self.cores.len() {
            match self.running[core_idx] {
                None => {
                    if let Some(tid) = self.ready.pop_front() {
                        self.dispatch(core_idx, tid);
                    }
                }
                Some(tid) => {
                    // Preempt when the quantum expires and someone is waiting.
                    let quantum_expired = self.now.since(self.scheduled_at[core_idx])
                        >= self.config.scheduler_quantum;
                    if quantum_expired && !self.ready.is_empty() {
                        self.preempt(core_idx);
                        let _ = tid;
                        if let Some(next) = self.ready.pop_front() {
                            self.dispatch(core_idx, next);
                        }
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, core_idx: usize, tid: ThreadId) {
        let context = self.threads[tid]
            .context
            .take()
            .expect("ready thread has a context");
        let pid = self.threads[tid].process;
        self.memory_model
            .set_page_table(core_idx, self.processes[pid].page_table.clone());
        // Installing a different protection domain on the core is a context
        // switch from the memory model's point of view.
        self.memory_model
            .on_domain_switch(core_idx, DomainSwitch::ContextSwitch, self.now);
        if self.flush_btb_on_switch {
            self.cores[core_idx].predictor_mut().flush_btb();
        }
        let previous = self.cores[core_idx].swap_thread(Some(context));
        debug_assert!(previous.is_none(), "dispatch onto a busy core");
        self.running[core_idx] = Some(tid);
        self.scheduled_at[core_idx] = self.now;
        // The incoming thread is due immediately; cycles before now belong
        // to the previous occupant (already accounted) or to an empty core
        // (never accounted, as in the naive loop).
        self.core_wake[core_idx] = self.now;
        self.accounted_until[core_idx] = self.now.raw();
        self.context_switches += 1;
    }

    fn preempt(&mut self, core_idx: usize) {
        if let Some(tid) = self.running[core_idx].take() {
            // Settle the outgoing thread's idle-cycle credit before the swap
            // discards the core state it would be charged against.
            self.credit_skipped(core_idx);
            let context = self.cores[core_idx].swap_thread(None);
            self.threads[tid].context = context;
            if self.threads[tid].finished {
                // Nothing more to run.
            } else {
                self.ready.push_back(tid);
            }
        }
    }

    fn handle_event(&mut self, core_idx: usize, event: CoreEvent) {
        match event {
            CoreEvent::Syscall(_) => {
                self.memory_model
                    .on_domain_switch(core_idx, DomainSwitch::Syscall, self.now);
            }
            CoreEvent::SandboxEnter | CoreEvent::SandboxExit => {
                self.memory_model.on_domain_switch(
                    core_idx,
                    DomainSwitch::SandboxBoundary,
                    self.now,
                );
            }
            CoreEvent::Halted => {
                if let Some(tid) = self.running[core_idx].take() {
                    self.threads[tid].finished = true;
                    let context = self.cores[core_idx].swap_thread(None);
                    self.threads[tid].context = context;
                }
            }
        }
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .field("processes", &self.processes.len())
            .field("memory_model", &self.memory_model.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defenses::{build_defense, DefenseKind};
    use uarch_isa::prog::ProgramBuilder;
    use uarch_isa::reg::Reg;
    use workloads::{parsec_suite, spec_suite, Scale};

    fn small_system(kind: DefenseKind) -> System {
        let cfg = SystemConfig::small_test();
        let mem = build_defense(kind, &cfg);
        System::new(&cfg, mem)
    }

    fn counting_program(limit: u64) -> uarch_isa::prog::Program {
        let mut b = ProgramBuilder::new("count");
        let top = b.new_label();
        b.li(Reg::X1, 0);
        b.bind_label(top);
        b.addi(Reg::X1, Reg::X1, 1);
        b.blt_imm(Reg::X1, limit, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut sys = small_system(DefenseKind::Unprotected);
        let pid = sys.add_process();
        sys.add_thread(pid, counting_program(500));
        let report = sys.run(1_000_000);
        assert!(report.completed);
        assert!(report.committed >= 1000);
        assert!(report.ipc() > 0.0);
    }

    #[test]
    fn more_threads_than_cores_are_time_sliced() {
        let mut cfg = SystemConfig::small_test();
        cfg.cores = 1;
        cfg.scheduler_quantum = 2_000;
        let mem = build_defense(DefenseKind::MuonTrap, &cfg);
        let mut sys = System::new(&cfg, mem);
        // Two separate processes compete for the single core.
        let a = sys.add_process();
        let b = sys.add_process();
        sys.add_thread(a, counting_program(4000));
        sys.add_thread(b, counting_program(4000));
        let report = sys.run(10_000_000);
        assert!(report.completed);
        assert!(
            report.context_switches >= 3,
            "expected preemptions, saw {}",
            report.context_switches
        );
        // MuonTrap must have flushed its filter caches on those switches.
        assert!(report.stats.counter("muontrap.context_switch_flushes") >= report.context_switches);
    }

    #[test]
    fn syscalls_reach_the_memory_model_as_domain_switches() {
        let mut sys = small_system(DefenseKind::MuonTrap);
        let pid = sys.add_process();
        let mut b = ProgramBuilder::new("sys");
        b.li(Reg::X1, 1);
        b.syscall(1);
        b.sandbox_enter();
        b.sandbox_exit();
        b.halt();
        sys.add_thread(pid, b.build().unwrap());
        let report = sys.run(1_000_000);
        assert!(report.completed);
        assert_eq!(report.stats.counter("muontrap.syscall_flushes"), 1);
        assert_eq!(report.stats.counter("muontrap.sandbox_flushes"), 2);
    }

    #[test]
    fn parsec_workload_uses_all_cores() {
        let cfg = SystemConfig::small_test();
        let mem = build_defense(DefenseKind::Unprotected, &cfg);
        let mut sys = System::new(&cfg, mem);
        let w = &parsec_suite(Scale::Tiny, cfg.cores)[0];
        sys.load_workload(&w.thread_programs, w.shared_memory);
        let report = sys.run(20_000_000);
        assert!(report.completed, "blackscholes-like workload should finish");
        // Every core committed something.
        for i in 0..cfg.cores {
            assert!(
                report.stats.counter(&format!("core{i}.committed")) > 0,
                "core {i} idle"
            );
        }
    }

    #[test]
    fn spec_workload_runs_under_muontrap_and_baseline() {
        let cfg = SystemConfig::small_test();
        let w = &spec_suite(Scale::Tiny)[15]; // mcf
        for kind in [DefenseKind::Unprotected, DefenseKind::MuonTrap] {
            let mem = build_defense(kind, &cfg);
            let mut sys = System::new(&cfg, mem);
            sys.load_workload(&w.thread_programs, w.shared_memory);
            let report = sys.run(30_000_000);
            assert!(
                report.completed,
                "{} did not finish under {:?}",
                w.name, kind
            );
        }
    }

    #[test]
    fn shared_pages_alias_across_processes() {
        let mut sys = small_system(DefenseKind::Unprotected);
        let a = sys.add_process();
        let b = sys.add_process();
        sys.map_shared_page(&[a, b], 0x300, 0x9_9999);
        // Both processes' page tables now map vpn 0x300 to the same ppn; this
        // is checked through the process page tables directly.
        let pa_a = sys.processes[a]
            .page_table
            .translate(simkit::addr::VirtAddr::new(0x300 * 4096 + 8));
        let pa_b = sys.processes[b]
            .page_table
            .translate(simkit::addr::VirtAddr::new(0x300 * 4096 + 8));
        assert_eq!(pa_a, pa_b);
    }

    #[test]
    fn report_reflects_incomplete_runs() {
        let mut sys = small_system(DefenseKind::Unprotected);
        let pid = sys.add_process();
        let mut b = ProgramBuilder::new("spin");
        let top = b.here();
        b.jump(top);
        sys.add_thread(pid, b.build().unwrap());
        let report = sys.run(10_000);
        assert!(!report.completed);
        assert_eq!(report.cycles, 10_000);
    }
}
