//! The experiment session: a parallel, baseline-memoizing grid runner.
//!
//! Every figure in the paper's evaluation is a grid — workloads on one axis,
//! defense configurations on the other, each cell an execution time
//! normalised to the unprotected baseline. [`ExperimentSession`] is the one
//! runner behind all of them:
//!
//! * **Baseline memoization.** The normalisation denominator is an
//!   `Unprotected` run of the same workload. The session runs it once per
//!   (workload, machine) pair and shares it across every column, so an
//!   M-defense figure costs M+1 simulations per workload instead of 2M.
//!   Because the unprotected machine ignores the filter-cache geometry and
//!   protection toggles, sweeps over those knobs (figures 5, 6, 8, 9) share a
//!   single baseline per workload as well; see [`baseline_machine`].
//! * **Parallel execution.** Grid cells are independent simulations, so the
//!   session fans them out over a thread pool (default
//!   [`std::thread::available_parallelism`]). Results are placed by cell
//!   index, so the report ordering is deterministic regardless of thread
//!   count or scheduling.
//! * **Structured reports.** [`run`](ExperimentSession::run) returns a
//!   [`RunReport`] — per-cell [`CellResult`]s, normalised times, per-column
//!   geometric means and wall-clock metadata — which serialises to JSON
//!   through [`simkit::json`] (this build is offline, so that module stands
//!   in for serde; the wire format is plain JSON).
//! * **Persistent result store.** With
//!   [`with_store`](ExperimentSession::with_store), every raw simulation is
//!   keyed by a content fingerprint of its inputs and persisted in a
//!   [`ResultStore`]. A re-run of an unchanged
//!   grid — regenerating a figure after editing unrelated code — performs
//!   zero simulations; [`CellResult::cached`] and
//!   [`RunReport::sims_executed`] record the provenance so harnesses can
//!   assert hit rates. See [`crate::store`] for the keying rules.
//!
//! # Example
//!
//! ```
//! use simsys::session::ExperimentSession;
//! use defenses::DefenseKind;
//! use simkit::config::SystemConfig;
//! use workloads::{spec_suite, Scale};
//!
//! let report = ExperimentSession::new()
//!     .title("two kernels under MuonTrap and STT")
//!     .scale(Scale::Tiny)
//!     .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
//!     .defenses([DefenseKind::MuonTrap, DefenseKind::SttSpectre])
//!     .config(SystemConfig::small_test())
//!     .run();
//! assert_eq!(report.cells.len(), 4);
//! assert_eq!(report.baseline_sims, 2); // one Unprotected run per workload
//! assert!(report.geomeans().iter().all(|g| *g > 0.0));
//! ```

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use simkit::config::{ProtectionConfig, SystemConfig};
use simkit::fingerprint::Fingerprint;
use simkit::json::{FromJson, Json, JsonError, ToJson};
use simkit::stats::{geometric_mean, StatSet};

use defenses::DefenseKind;
use workloads::{Scale, Workload};

use crate::runner::{self, Plan, UnitKind, WorkUnit};
use crate::store::{self, ResultStore};
use crate::system::System;

/// Result of running one workload under one configuration: the raw output of
/// [`simulate`], before any baseline normalisation.
///
/// This is also the unit the on-disk [`ResultStore`] persists, so it
/// round-trips through JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Workload name.
    pub workload: String,
    /// Defense label.
    pub defense: String,
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Whether the run finished within its cycle budget.
    pub completed: bool,
    /// All statistics collected from the cores and the memory model.
    pub stats: StatSet,
}

impl ExperimentResult {
    /// Instructions per cycle for this run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("defense", Json::Str(self.defense.clone())),
            ("cycles", Json::UInt(self.cycles)),
            ("committed", Json::UInt(self.committed)),
            ("completed", Json::Bool(self.completed)),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl FromJson for ExperimentResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let str_field = |name: &str| -> Result<String, JsonError> {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError::missing(name))
        };
        Ok(ExperimentResult {
            workload: str_field("workload")?,
            defense: str_field("defense")?,
            cycles: json
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("cycles"))?,
            committed: json
                .get("committed")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("committed"))?,
            completed: json
                .get("completed")
                .and_then(Json::as_bool)
                .ok_or_else(|| JsonError::missing("completed"))?,
            stats: StatSet::from_json(
                json.get("stats")
                    .ok_or_else(|| JsonError::missing("stats"))?,
            )?,
        })
    }
}

/// One column of the experiment grid: a labelled defense on a machine.
#[derive(Debug, Clone, PartialEq)]
struct Column {
    label: String,
    kind: DefenseKind,
    config: SystemConfig,
}

/// Builder and runner for one experiment grid.
///
/// Construct with [`ExperimentSession::new`], declare the grid through the
/// chained setters, then call [`run`](ExperimentSession::run).
#[derive(Debug, Clone)]
pub struct ExperimentSession {
    title: String,
    scale: Option<Scale>,
    workloads: Vec<Workload>,
    defenses: Vec<(Option<String>, DefenseKind)>,
    config: SystemConfig,
    config_sweep: Option<Vec<(String, SystemConfig)>>,
    threads: usize,
    memoize: bool,
    process_cache: bool,
    store: Option<ResultStore>,
}

impl ExperimentSession {
    /// A session with an empty grid on the paper-default machine.
    pub fn new() -> Self {
        ExperimentSession {
            title: String::new(),
            scale: None,
            workloads: Vec::new(),
            defenses: Vec::new(),
            config: SystemConfig::paper_default(),
            config_sweep: None,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            memoize: true,
            process_cache: false,
            store: None,
        }
    }

    /// Sets the report title.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// Records the workload scale in the report (metadata only; the workloads
    /// themselves are whatever [`workloads`](Self::workloads) receives).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Sets the workload axis of the grid.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the defense axis of the grid, labelled by [`DefenseKind::label`].
    pub fn defenses(mut self, kinds: impl IntoIterator<Item = DefenseKind>) -> Self {
        self.defenses = kinds.into_iter().map(|k| (None, k)).collect();
        self
    }

    /// Sets the defense axis with explicit column labels (used by the
    /// cumulative cost-breakdown figures, where several
    /// [`DefenseKind::MuonTrapCustom`] entries would otherwise share a label).
    pub fn defenses_labeled(
        mut self,
        kinds: impl IntoIterator<Item = (String, DefenseKind)>,
    ) -> Self {
        self.defenses = kinds.into_iter().map(|(l, k)| (Some(l), k)).collect();
        self
    }

    /// Sets the machine configuration every cell runs on.
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Sweeps machine configurations instead of defenses: the grid's columns
    /// become the labelled configurations, each run under every defense set
    /// via [`defenses`](Self::defenses) (typically exactly one — the
    /// filter-cache sweeps of figures 5 and 6 use MuonTrap only).
    pub fn config_sweep(
        mut self,
        configs: impl IntoIterator<Item = (String, SystemConfig)>,
    ) -> Self {
        self.config_sweep = Some(configs.into_iter().collect());
        self
    }

    /// Sets the worker-thread count (clamped to at least 1). Defaults to
    /// [`std::thread::available_parallelism`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Disables baseline memoization: every cell re-runs its own `Unprotected`
    /// baseline, as the pre-session harness did. Only useful for validating
    /// that memoization does not change results; costs ~2× the simulations.
    pub fn memoize(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// Shares baseline runs through a process-wide in-memory cache, so
    /// separate sessions over the same (workload, machine) pairs — e.g. a
    /// harness constructing one session per sweep point — skip repeated
    /// baselines. Off by default so [`RunReport::baseline_sims`] counts are
    /// self-contained and tests stay order-independent. For persistence
    /// *across* processes, use [`with_store`](Self::with_store) instead.
    pub fn process_cache(mut self, enabled: bool) -> Self {
        self.process_cache = enabled;
        self
    }

    /// Backs the session with a content-addressed on-disk result store rooted
    /// at `path` (created if absent). Every raw simulation — baselines and
    /// grid cells — is looked up by an input fingerprint before being
    /// dispatched and persisted after it completes, so re-running an
    /// unchanged grid performs zero simulations. See [`crate::store`].
    ///
    /// # Panics
    /// Panics if the store directory cannot be created; use
    /// [`store`](Self::store) with [`ResultStore::open`] to handle the error.
    pub fn with_store(self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let store = ResultStore::open(&path)
            .unwrap_or_else(|e| panic!("cannot open result store at {}: {e}", path.display()));
        self.store(Some(store))
    }

    /// Sets (or clears) the result store backing this session. See
    /// [`with_store`](Self::with_store).
    pub fn store(mut self, store: Option<ResultStore>) -> Self {
        self.store = store;
        self
    }

    fn columns(&self) -> Vec<Column> {
        match &self.config_sweep {
            None => self
                .defenses
                .iter()
                .map(|(label, kind)| Column {
                    label: label.clone().unwrap_or_else(|| kind.label().to_string()),
                    kind: *kind,
                    config: self.config.clone(),
                })
                .collect(),
            Some(sweep) => sweep
                .iter()
                .flat_map(|(cfg_label, cfg)| {
                    self.defenses.iter().map(move |(label, kind)| {
                        let kind_label = label.clone().unwrap_or_else(|| kind.label().to_string());
                        Column {
                            // With a single defense the configuration label is
                            // the whole story (figure 5's "64 B", "128 B", ...).
                            label: if self.defenses.len() == 1 {
                                cfg_label.clone()
                            } else {
                                format!("{cfg_label}/{kind_label}")
                            },
                            kind: *kind,
                            config: cfg.clone(),
                        }
                    })
                })
                .collect(),
        }
    }

    /// Derives the pure, host-independent execution [`Plan`] of this grid:
    /// every baseline and cell as a self-describing, fingerprint-keyed
    /// [`runner::WorkUnit`], in deterministic order.
    ///
    /// Planning performs no I/O and no simulation, and uses only
    /// [`store::cell_fingerprint`] for identity — so any two processes given
    /// the same session description derive interchangeable plans, which is
    /// what lets [`run_sharded`](Self::run_sharded) shards coordinate through
    /// nothing but a shared store directory.
    pub fn plan(&self) -> Plan {
        let columns = self.columns();
        let mut baselines: Vec<WorkUnit> = Vec::new();
        let mut seen: HashMap<Fingerprint, usize> = HashMap::new();
        let mut cells: Vec<WorkUnit> = Vec::new();
        for workload in &self.workloads {
            for column in &columns {
                let baseline_config = baseline_machine(&column.config);
                let baseline_fp =
                    store::cell_fingerprint(workload, DefenseKind::Unprotected, &baseline_config);
                // With memoization, one baseline unit per distinct machine;
                // without, one per cell (the validation mode's semantics).
                if !self.memoize || !seen.contains_key(&baseline_fp) {
                    seen.insert(baseline_fp, baselines.len());
                    baselines.push(WorkUnit {
                        kind: UnitKind::Baseline,
                        index: baselines.len(),
                        workload: workload.clone(),
                        defense: DefenseKind::Unprotected,
                        config: baseline_config.clone(),
                        fingerprint: baseline_fp,
                        column: None,
                        baseline: None,
                        copies_baseline: false,
                    });
                }
                let copies_baseline = column.kind == DefenseKind::Unprotected;
                let fingerprint = if copies_baseline {
                    // An explicit Unprotected column *is* the baseline.
                    baseline_fp
                } else {
                    store::cell_fingerprint(workload, column.kind, &column.config)
                };
                cells.push(WorkUnit {
                    kind: UnitKind::Cell,
                    index: cells.len(),
                    workload: workload.clone(),
                    defense: column.kind,
                    config: column.config.clone(),
                    fingerprint,
                    column: Some(column.label.clone()),
                    baseline: Some(baseline_fp),
                    copies_baseline,
                });
            }
        }
        Plan {
            title: self.title.clone(),
            scale: self.scale.map(|s| s.name().to_string()),
            threads: self.threads,
            workloads: self.workloads.iter().map(|w| w.name.clone()).collect(),
            columns: columns.into_iter().map(|c| c.label).collect(),
            baselines,
            cells,
            memoized: self.memoize,
        }
    }

    /// Runs the grid and returns the structured report.
    ///
    /// Since the runner refactor this is exactly
    /// [`plan`](Self::plan) → [`runner::execute_local`]
    /// → [`runner::merge_events`]: the same
    /// plan/execute/stream/merge pipeline a multi-process
    /// [`run_sharded`](Self::run_sharded) run uses, collapsed onto one
    /// process. Cells are executed in parallel across the configured thread
    /// pool; report ordering (workload-major, column-minor) is deterministic
    /// and independent of the thread count. With a
    /// [`store`](Self::with_store) attached, each simulation is first looked
    /// up by input fingerprint and results are persisted as they complete.
    pub fn run(self) -> RunReport {
        self.run_with_events(None)
    }

    /// [`run`](Self::run), additionally streaming one
    /// [`runner::RunEvent`] JSONL line to `sink` as
    /// each unit resolves (what `--events FILE` wires up on the binaries).
    pub fn run_with_events(self, sink: Option<&mut (dyn Write + Send)>) -> RunReport {
        let started = Instant::now();
        let plan = self.plan();
        let events = runner::execute_local(
            &plan,
            self.store.as_ref(),
            self.process_cache,
            self.threads,
            sink,
        );
        let wall_clock_ms = started.elapsed().as_secs_f64() * 1e3;
        let report = runner::merge_events(&plan, events, wall_clock_ms)
            .expect("a local execution resolves every cell");
        // Session-level telemetry: how much work this run did and how fast
        // it resolved cells, labelled by report title so concurrent sessions
        // in one process keep separate series.
        let metrics = obs::global();
        metrics.inc(
            "session.sims_executed",
            &[("figure", &report.title)],
            report.sims_executed as u64,
        );
        metrics.inc(
            "session.cells_resolved",
            &[("figure", &report.title)],
            report.cells.len() as u64,
        );
        if wall_clock_ms > 0.0 {
            metrics.set_gauge(
                "session.cells_per_sec",
                &[("figure", &report.title)],
                report.cells.len() as f64 / (wall_clock_ms / 1e3),
            );
        }
        report
    }

    /// Executes this session as one shard of a cooperating multi-process run.
    ///
    /// Every shard of the run must be constructed with the same grid and a
    /// store on the same directory, and share `options.run_id`. Units are
    /// handed out through expiring lease files under the store, so shards
    /// steal work from each other (and from crashed predecessors); results
    /// stream to `sink` as JSONL [`runner::RunEvent`]s.
    /// Fold the event logs into the final [`RunReport`] with
    /// [`runner::merge_events`] (or the `merge`
    /// binary).
    ///
    /// # Errors
    /// Returns an error when no store is attached, the store is read-only, or
    /// lease/store writes fail.
    pub fn run_sharded(
        &self,
        options: &runner::ShardOptions,
        sink: &mut (dyn Write + Send),
    ) -> io::Result<runner::ShardSummary> {
        let store = self.store.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded run needs a result store (shards coordinate through its directory)",
            )
        })?;
        let plan = self.plan();
        runner::execute_shard(&plan, store, options, self.threads, sink)
    }
}

impl Default for ExperimentSession {
    fn default() -> Self {
        ExperimentSession::new()
    }
}

/// Runs `workload` under `kind` on a machine described by `config` — the one
/// raw simulation primitive everything else builds on.
///
/// No baseline is run and nothing is normalised or cached; callers that want
/// normalised times or memoization declare a grid on [`ExperimentSession`]
/// instead.
pub fn simulate(workload: &Workload, kind: DefenseKind, config: &SystemConfig) -> ExperimentResult {
    let started = std::time::Instant::now();
    let memory_model = kind.build(config);
    let mut system = System::new(config, memory_model);
    system.load_workload(&workload.thread_programs, workload.shared_memory);
    let report = system.run(workload.cycle_budget);
    // Per-unit simulation latency, visible in `--metrics` snapshots and any
    // registry dump; keyed by defense so sweeps show which columns dominate.
    obs::global().observe(
        "sim.unit_ms",
        &[("defense", kind.label())],
        started.elapsed().as_millis() as u64,
    );
    // Timing-loop traffic: per-core pipeline ticks the run performed
    // (the naive loop ticks every running core every cycle). `perf` reads
    // the delta to derive sim-cycles-per-event.
    obs::global().inc("sim.events", &[], system.events_processed());
    ExperimentResult {
        workload: workload.name.clone(),
        defense: kind.label().to_string(),
        cycles: report.cycles,
        committed: report.committed,
        completed: report.completed,
        stats: report.stats,
    }
}

/// The machine an `Unprotected` baseline actually sees.
///
/// The unprotected model instantiates no filter caches, no filter TLB and no
/// protection mechanisms, so two configurations differing only in those knobs
/// have identical baselines. Canonicalising them lets the filter-cache sweeps
/// of figures 5/6 and the cost breakdowns of figures 8/9 share one baseline
/// per workload. Every field the unprotected hierarchy *does* read (cores,
/// line size, pipeline, L1/L2 geometry, TLB, DRAM, prefetcher, scheduler
/// quantum) is preserved.
pub fn baseline_machine(config: &SystemConfig) -> SystemConfig {
    let mut cfg = config.clone();
    let canonical = SystemConfig::paper_default();
    cfg.protection = ProtectionConfig::unprotected();
    cfg.data_filter = canonical.data_filter;
    cfg.inst_filter = canonical.inst_filter;
    cfg.filter_tlb_entries = canonical.filter_tlb_entries;
    cfg
}

/// Key of a memoized baseline: the workload plus its canonical baseline
/// machine. Full values, not hashes, so cache hits can never alias distinct
/// experiments.
type BaselineKey = (Workload, SystemConfig);
/// The process-wide cache stores results only; store provenance is per-run.
type ProcessCache = HashMap<BaselineKey, Arc<ExperimentResult>>;

/// Process-wide baseline cache shared by sessions with
/// [`ExperimentSession::process_cache`] enabled (harnesses that construct a
/// fresh session per sweep point).
fn process_cache() -> &'static Mutex<ProcessCache> {
    static CACHE: OnceLock<Mutex<ProcessCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

pub(crate) fn process_cache_get(
    workload: &Workload,
    config: &SystemConfig,
) -> Option<ExperimentResult> {
    process_cache()
        .lock()
        .unwrap()
        .get(&(workload.clone(), config.clone()))
        .map(|arc| (**arc).clone())
}

pub(crate) fn process_cache_put(
    workload: &Workload,
    config: &SystemConfig,
    value: Arc<ExperimentResult>,
) {
    process_cache()
        .lock()
        .unwrap()
        .insert((workload.clone(), config.clone()), value);
}

/// One grid cell of a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Workload (benchmark) name.
    pub workload: String,
    /// Column label (defense label, or sweep-point label for config sweeps).
    pub column: String,
    /// Defense label of the model that produced [`cycles`](Self::cycles).
    pub defense: String,
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Whether the run finished within its cycle budget.
    pub completed: bool,
    /// Whether this cell's simulation was satisfied by the on-disk result
    /// store instead of being executed (always `false` without a store; for
    /// `Unprotected` columns, the provenance of the shared baseline run).
    pub cached: bool,
    /// Simulated cycles of the shared `Unprotected` baseline.
    pub baseline_cycles: u64,
    /// `cycles / baseline_cycles` (1.0 = no overhead; the y-axis of the
    /// normalised-execution-time figures).
    pub normalized_time: f64,
    /// All statistics collected from the cores and the memory model.
    pub stats: StatSet,
}

impl CellResult {
    /// Instructions per cycle for this cell.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The structured result of one [`ExperimentSession::run`].
///
/// Cells are ordered workload-major, column-minor: the cell for workload `w`
/// and column `c` is `cells[w * columns.len() + c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Session title.
    pub title: String,
    /// Workload scale recorded via [`ExperimentSession::scale`], if any.
    pub scale: Option<String>,
    /// Worker-thread count the grid ran on.
    pub threads: usize,
    /// Wall-clock duration of the whole grid, in milliseconds.
    pub wall_clock_ms: f64,
    /// Number of `Unprotected` baseline simulations actually executed
    /// (store and process-cache hits are not executions).
    pub baseline_sims: usize,
    /// Total simulations actually executed for this report — baselines plus
    /// grid cells, excluding every store, process-cache and memoization hit.
    /// A re-run of an unchanged grid against a warm store reports zero.
    pub sims_executed: usize,
    /// Workload names, grid order.
    pub workloads: Vec<String>,
    /// Column labels, grid order.
    pub columns: Vec<String>,
    /// All grid cells, workload-major.
    pub cells: Vec<CellResult>,
}

impl RunReport {
    /// The cell for workload index `w` and column index `c`.
    pub fn cell(&self, w: usize, c: usize) -> &CellResult {
        &self.cells[w * self.columns.len() + c]
    }

    /// Total simulations this report paid for (cells that were not satisfied
    /// by the baseline cache, plus the baselines themselves). This is the
    /// *logical* grid cost; [`sims_executed`](Self::sims_executed) is the
    /// number actually run once store hits are subtracted.
    pub fn total_sims(&self) -> usize {
        let unprotected_cells = self
            .cells
            .iter()
            .filter(|cell| cell.defense == DefenseKind::Unprotected.label())
            .count();
        self.baseline_sims + self.cells.len() - unprotected_cells
    }

    /// Number of grid cells whose simulation came from the result store.
    pub fn cached_cells(&self) -> usize {
        self.cells.iter().filter(|cell| cell.cached).count()
    }

    /// Fraction of grid cells satisfied by the result store (0.0 with no
    /// store or a cold one, 1.0 for a fully warm re-run; 0.0 for an empty
    /// grid).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cells.is_empty() {
            0.0
        } else {
            self.cached_cells() as f64 / self.cells.len() as f64
        }
    }

    /// The geometric mean of each column's normalised times (the "geomean"
    /// bar the paper reports in figures 3 and 4).
    pub fn geomeans(&self) -> Vec<f64> {
        (0..self.columns.len())
            .map(|c| {
                let column: Vec<f64> = (0..self.workloads.len())
                    .map(|w| self.cell(w, c).normalized_time)
                    .collect();
                geometric_mean(&column)
            })
            .collect()
    }

    /// Renders the report as an aligned text table (what the figure binaries
    /// print without `--json`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<16}", "workload"));
        for c in &self.columns {
            out.push_str(&format!("{c:>24}"));
        }
        out.push('\n');
        for w in 0..self.workloads.len() {
            out.push_str(&format!("{:<16}", self.workloads[w]));
            for c in 0..self.columns.len() {
                out.push_str(&format!("{:>24.3}", self.cell(w, c).normalized_time));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<16}", "geomean"));
        for g in self.geomeans() {
            out.push_str(&format!("{g:>24.3}"));
        }
        out.push('\n');
        out
    }
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("column", Json::Str(self.column.clone())),
            ("defense", Json::Str(self.defense.clone())),
            ("cycles", Json::UInt(self.cycles)),
            ("committed", Json::UInt(self.committed)),
            ("completed", Json::Bool(self.completed)),
            ("cached", Json::Bool(self.cached)),
            ("baseline_cycles", Json::UInt(self.baseline_cycles)),
            ("normalized_time", Json::Num(self.normalized_time)),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let str_field = |name: &str| -> Result<String, JsonError> {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError::missing(name))
        };
        Ok(CellResult {
            workload: str_field("workload")?,
            column: str_field("column")?,
            defense: str_field("defense")?,
            cycles: json
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("cycles"))?,
            committed: json
                .get("committed")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("committed"))?,
            completed: json
                .get("completed")
                .and_then(Json::as_bool)
                .ok_or_else(|| JsonError::missing("completed"))?,
            cached: json
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| JsonError::missing("cached"))?,
            baseline_cycles: json
                .get("baseline_cycles")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("baseline_cycles"))?,
            normalized_time: json
                .get("normalized_time")
                .and_then(Json::as_f64)
                .ok_or_else(|| JsonError::missing("normalized_time"))?,
            stats: StatSet::from_json(
                json.get("stats")
                    .ok_or_else(|| JsonError::missing("stats"))?,
            )?,
        })
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::Str(self.title.clone())),
            (
                "scale",
                match &self.scale {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
            ("threads", Json::UInt(self.threads as u64)),
            ("wall_clock_ms", Json::Num(self.wall_clock_ms)),
            ("baseline_sims", Json::UInt(self.baseline_sims as u64)),
            ("sims_executed", Json::UInt(self.sims_executed as u64)),
            (
                "workloads",
                Json::Arr(self.workloads.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "columns",
                Json::Arr(self.columns.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "geomeans",
                Json::Arr(self.geomeans().into_iter().map(Json::Num).collect()),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for RunReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let str_list = |name: &str| -> Result<Vec<String>, JsonError> {
            json.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| JsonError::missing(name))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| JsonError::missing(name))
                })
                .collect()
        };
        let scale = match json.get("scale") {
            Some(Json::Null) | None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(JsonError::missing("scale")),
        };
        Ok(RunReport {
            title: json
                .get("title")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError::missing("title"))?,
            scale,
            threads: json
                .get("threads")
                .and_then(Json::as_usize)
                .ok_or_else(|| JsonError::missing("threads"))?,
            wall_clock_ms: json
                .get("wall_clock_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| JsonError::missing("wall_clock_ms"))?,
            baseline_sims: json
                .get("baseline_sims")
                .and_then(Json::as_usize)
                .ok_or_else(|| JsonError::missing("baseline_sims"))?,
            sims_executed: json
                .get("sims_executed")
                .and_then(Json::as_usize)
                .ok_or_else(|| JsonError::missing("sims_executed"))?,
            workloads: str_list("workloads")?,
            columns: str_list("columns")?,
            cells: json
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or_else(|| JsonError::missing("cells"))?
                .iter()
                .map(CellResult::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::json;
    use workloads::spec_suite;

    fn tiny_session(workloads_count: usize, kinds: &[DefenseKind]) -> ExperimentSession {
        ExperimentSession::new()
            .title("test grid")
            .scale(Scale::Tiny)
            .workloads(spec_suite(Scale::Tiny).into_iter().take(workloads_count))
            .defenses(kinds.iter().copied())
            .config(SystemConfig::small_test())
    }

    #[test]
    fn grid_shape_and_ordering_are_deterministic() {
        let report = tiny_session(3, &[DefenseKind::MuonTrap, DefenseKind::InsecureL0]).run();
        assert_eq!(report.workloads.len(), 3);
        assert_eq!(report.columns, vec!["muontrap", "insecure-l0"]);
        assert_eq!(report.cells.len(), 6);
        for (w, name) in report.workloads.iter().enumerate() {
            for c in 0..report.columns.len() {
                let cell = report.cell(w, c);
                assert_eq!(&cell.workload, name);
                assert_eq!(cell.column, report.columns[c]);
                assert!(cell.normalized_time > 0.0);
            }
        }
    }

    #[test]
    fn one_baseline_per_workload_and_unprotected_columns_are_free() {
        let report = tiny_session(2, &[DefenseKind::Unprotected, DefenseKind::MuonTrap]).run();
        assert_eq!(report.baseline_sims, 2);
        // 2 baselines + 2 muontrap cells; the 2 unprotected cells reuse them.
        assert_eq!(report.total_sims(), 4);
        for w in 0..2 {
            assert_eq!(report.cell(w, 0).normalized_time, 1.0);
            assert_eq!(report.cell(w, 0).cycles, report.cell(w, 0).baseline_cycles);
        }
    }

    #[test]
    fn config_sweep_shares_one_baseline_per_workload() {
        let base = SystemConfig::small_test();
        let sweep: Vec<(String, SystemConfig)> = [64u64, 128, 512]
            .into_iter()
            .map(|size| {
                let mut cfg = base.clone();
                cfg.data_filter = simkit::config::CacheConfig::new(
                    size,
                    (size / cfg.line_bytes).max(1) as usize,
                    1,
                    4,
                );
                (format!("{size} B"), cfg)
            })
            .collect();
        let report = ExperimentSession::new()
            .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
            .defenses([DefenseKind::MuonTrap])
            .config_sweep(sweep)
            .run();
        assert_eq!(report.columns, vec!["64 B", "128 B", "512 B"]);
        // The sweep only varies filter-cache geometry, which the unprotected
        // baseline ignores — one baseline per workload, not per sweep point.
        assert_eq!(report.baseline_sims, 2);
    }

    #[test]
    fn unmemoized_runs_match_memoized_cell_for_cell() {
        let kinds = [DefenseKind::MuonTrap, DefenseKind::SttSpectre];
        let memoized = tiny_session(2, &kinds).run();
        let unmemoized = tiny_session(2, &kinds).memoize(false).run();
        assert!(unmemoized.baseline_sims > memoized.baseline_sims);
        assert_eq!(memoized.cells, unmemoized.cells);
        assert_eq!(memoized.columns, unmemoized.columns);
    }

    #[test]
    fn parallel_and_serial_runs_produce_identical_ordered_results() {
        let kinds = [DefenseKind::MuonTrap, DefenseKind::InsecureL0];
        let serial = tiny_session(4, &kinds).threads(1).run();
        let parallel = tiny_session(4, &kinds).threads(4).run();
        assert_eq!(serial.cells, parallel.cells);
        assert_eq!(serial.workloads, parallel.workloads);
        assert_eq!(serial.geomeans(), parallel.geomeans());
    }

    #[test]
    fn report_json_round_trips() {
        let report = tiny_session(2, &[DefenseKind::MuonTrap]).run();
        let text = report.to_json().to_string_compact();
        let back = RunReport::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        // Pretty form parses to the same document too.
        let pretty =
            RunReport::from_json(&json::parse(&report.to_json().to_string_pretty()).unwrap())
                .unwrap();
        assert_eq!(pretty, report);
    }

    #[test]
    fn render_includes_title_columns_and_geomean() {
        let report = tiny_session(2, &[DefenseKind::MuonTrap]).run();
        let text = report.render();
        assert!(text.contains("test grid"));
        assert!(text.contains("muontrap"));
        assert!(text.contains("geomean"));
    }

    #[test]
    fn process_cache_reuses_baselines_across_sessions() {
        // Use a distinctive machine so parallel-running tests cannot have
        // primed the cache for these keys.
        let mut cfg = SystemConfig::small_test();
        cfg.scheduler_quantum = 19_997;
        let workloads: Vec<Workload> = spec_suite(Scale::Tiny)
            .into_iter()
            .skip(5)
            .take(2)
            .collect();
        let first = ExperimentSession::new()
            .workloads(workloads.clone())
            .defenses([DefenseKind::MuonTrap])
            .config(cfg.clone())
            .process_cache(true)
            .run();
        assert_eq!(first.baseline_sims, 2);
        let second = ExperimentSession::new()
            .workloads(workloads)
            .defenses([DefenseKind::MuonTrap])
            .config(cfg)
            .process_cache(true)
            .run();
        assert_eq!(
            second.baseline_sims, 0,
            "second session must hit the process cache"
        );
        assert_eq!(first.cells, second.cells);
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "muontrap-session-test-{tag}-{}-{nanos}",
            std::process::id()
        ))
    }

    /// Strips the store-provenance flag so cold and warm runs compare equal
    /// on the simulation payload.
    fn without_provenance(cells: &[CellResult]) -> Vec<CellResult> {
        cells
            .iter()
            .cloned()
            .map(|mut cell| {
                cell.cached = false;
                cell
            })
            .collect()
    }

    #[test]
    fn warm_store_rerun_simulates_nothing_and_matches_cell_for_cell() {
        let dir = temp_store_dir("warm");
        let session =
            || tiny_session(2, &[DefenseKind::Unprotected, DefenseKind::MuonTrap]).with_store(&dir);
        let cold = session().run();
        assert_eq!(cold.baseline_sims, 2);
        assert_eq!(cold.sims_executed, 4); // 2 baselines + 2 muontrap cells
        assert_eq!(cold.cached_cells(), 0);
        assert_eq!(cold.cache_hit_rate(), 0.0);

        let warm = session().run();
        assert_eq!(warm.sims_executed, 0, "warm store must satisfy every cell");
        assert_eq!(warm.baseline_sims, 0);
        assert_eq!(warm.cached_cells(), warm.cells.len());
        assert_eq!(warm.cache_hit_rate(), 1.0);
        assert!(warm.cells.iter().all(|cell| cell.cached));
        assert_eq!(
            without_provenance(&cold.cells),
            without_provenance(&warm.cells),
            "store hits must reproduce simulated results exactly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_misses_only_the_changed_cells() {
        let dir = temp_store_dir("partial");
        let first = tiny_session(2, &[DefenseKind::MuonTrap])
            .with_store(&dir)
            .run();
        assert_eq!(first.sims_executed, 4);

        // Adding a column re-uses the stored baselines and MuonTrap cells;
        // only the two new STT cells simulate.
        let second = tiny_session(2, &[DefenseKind::MuonTrap, DefenseKind::SttSpectre])
            .with_store(&dir)
            .run();
        assert_eq!(second.sims_executed, 2);
        assert_eq!(second.baseline_sims, 0);
        for (w, name) in second.workloads.iter().enumerate() {
            assert!(second.cell(w, 0).cached, "{name} muontrap cell must hit");
            assert!(!second.cell(w, 1).cached, "{name} stt cell must miss");
        }
        assert_eq!(second.cached_cells(), 2);
        assert_eq!(second.cache_hit_rate(), 0.5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_store_entries_fall_back_to_resimulation() {
        let dir = temp_store_dir("corrupt");
        let session = || tiny_session(1, &[DefenseKind::MuonTrap]).with_store(&dir);
        let cold = session().run();
        assert_eq!(cold.sims_executed, 2);

        // Vandalise every entry on disk; the rerun must quietly re-simulate
        // everything and produce identical numbers.
        let store = crate::store::ResultStore::open(&dir).unwrap();
        let mut vandalised = 0;
        for shard in std::fs::read_dir(&dir).unwrap() {
            for entry in std::fs::read_dir(shard.unwrap().path()).unwrap() {
                std::fs::write(entry.unwrap().path(), "not json at all").unwrap();
                vandalised += 1;
            }
        }
        assert_eq!(vandalised, 2);
        let recovered = session().run();
        assert_eq!(
            recovered.sims_executed, 2,
            "corrupt entries must re-simulate"
        );
        assert_eq!(recovered.cached_cells(), 0);
        assert_eq!(
            without_provenance(&cold.cells),
            without_provenance(&recovered.cells)
        );
        // And the rewrite healed the store.
        assert_eq!(store.len(), 2);
        assert_eq!(session().run().sims_executed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn process_cache_hits_write_through_to_the_store() {
        // A distinctive machine so concurrently-running tests cannot have
        // primed the process cache for these keys.
        let mut cfg = SystemConfig::small_test();
        cfg.scheduler_quantum = 19_993;
        let workloads: Vec<Workload> = spec_suite(Scale::Tiny)
            .into_iter()
            .skip(3)
            .take(1)
            .collect();
        let session = || {
            ExperimentSession::new()
                .workloads(workloads.clone())
                .defenses([DefenseKind::MuonTrap])
                .config(cfg.clone())
        };
        // Prime the process cache with no store attached.
        let first = session().process_cache(true).run();
        assert_eq!(first.baseline_sims, 1);
        // The baseline now comes from the process cache, but must still be
        // written through to the newly attached store...
        let dir = temp_store_dir("writethrough");
        let second = session().process_cache(true).with_store(&dir).run();
        assert_eq!(second.baseline_sims, 0);
        // ...so a store-only rerun (e.g. a fresh process) is fully warm.
        let third = session().with_store(&dir).run();
        assert_eq!(
            third.sims_executed, 0,
            "process-cache hits must leave the store warm"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_respects_config_and_scale_changes() {
        let dir = temp_store_dir("keys");
        let report = tiny_session(1, &[DefenseKind::MuonTrap])
            .with_store(&dir)
            .run();
        assert_eq!(report.sims_executed, 2);
        // A different machine shares nothing with the stored entries.
        let other_machine = tiny_session(1, &[DefenseKind::MuonTrap])
            .config(SystemConfig::paper_default())
            .with_store(&dir)
            .run();
        assert_eq!(other_machine.sims_executed, 2);
        // A different workload set shares nothing either.
        let other_workload = ExperimentSession::new()
            .workloads(spec_suite(Scale::Tiny).into_iter().skip(1).take(1))
            .defenses([DefenseKind::MuonTrap])
            .config(SystemConfig::small_test())
            .with_store(&dir)
            .run();
        assert_eq!(other_workload.sims_executed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_machine_canonicalises_protection_knobs_only() {
        let mut swept = SystemConfig::small_test();
        swept.data_filter = simkit::config::CacheConfig::new(64, 1, 1, 1);
        swept.protection = ProtectionConfig::muontrap_parallel_l1();
        let base = baseline_machine(&SystemConfig::small_test());
        assert_eq!(baseline_machine(&swept), base);
        // Fields the unprotected machine does read must be preserved.
        let mut bigger = SystemConfig::small_test();
        bigger.l2 = simkit::config::CacheConfig::new(128 * 1024, 8, 20, 8);
        assert_ne!(baseline_machine(&bigger), base);
    }
}
