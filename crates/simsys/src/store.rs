//! Content-addressed, on-disk store of simulation results.
//!
//! The paper's evaluation is a large grid of (workload × defense ×
//! filter-cache geometry) simulations, and regenerating a figure re-runs the
//! whole grid even when nothing changed. [`ResultStore`] fixes that: every
//! raw simulation result ([`ExperimentResult`]) is persisted under a stable
//! [`Fingerprint`] of its *inputs* — the workload's µISA programs, the
//! machine and defense configuration, and a simulator version salt — so a
//! re-run of any grid whose inputs are unchanged is pure cache hits. The
//! [`ExperimentSession`](crate::session::ExperimentSession) consults the
//! store before dispatching each grid cell (see
//! [`with_store`](crate::session::ExperimentSession::with_store)) and writes
//! results back as they complete.
//!
//! # Keying
//!
//! [`cell_fingerprint`] builds a JSON descriptor of the simulation's inputs
//! and hashes it with [`simkit::fingerprint::of_json`]:
//!
//! * the workload's name, thread count, memory sharing, cycle budget, and a
//!   content hash of its µISA programs (so a regenerated kernel with the same
//!   name but different code misses rather than aliasing),
//! * the defense kind — including the full
//!   [`ProtectionConfig`](simkit::config::ProtectionConfig) payload for
//!   `MuonTrapCustom` entries, which share one label,
//! * the complete [`SystemConfig`] (every knob that can change a result),
//! * [`STORE_FORMAT_VERSION`] plus the simulator crate version, so upgrading
//!   the simulator invalidates old entries instead of replaying them.
//!
//! Keys are conservative: two configurations that happen to simulate
//! identically (e.g. differing only in a knob the chosen defense overrides)
//! get distinct fingerprints and miss across each other. That costs a
//! re-simulation, never a wrong result.
//!
//! # On-disk layout and concurrency
//!
//! Entries live at `<root>/<first two hex digits>/<remaining 30>.json`, each
//! a small JSON document carrying its own fingerprint (verified on read).
//! Writes go to a unique temp file in the destination directory followed by
//! an atomic rename, so concurrent writers — the session's thread pool, or
//! several figure binaries sharing one store — can never expose a partial
//! entry. Unreadable, unparseable or mislabelled entries are treated as
//! misses and re-simulated; a corrupt store degrades to a slow one, never a
//! wrong one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use simkit::config::SystemConfig;
use simkit::fingerprint::{self, Fingerprint};
use simkit::json::{self, FromJson, Json, ToJson};

use defenses::DefenseKind;
use workloads::Workload;

use crate::session::ExperimentResult;

/// Version of the store's key derivation and entry layout. Bump on any
/// change to [`cell_fingerprint`], the entry schema, or simulation semantics
/// not captured by the crate version; old entries then miss instead of
/// serving stale results.
pub const STORE_FORMAT_VERSION: u64 = 1;

/// The version salt mixed into every fingerprint.
fn version_salt() -> Json {
    Json::obj([
        ("store_format", Json::UInt(STORE_FORMAT_VERSION)),
        (
            "simulator",
            Json::Str(env!("CARGO_PKG_VERSION").to_string()),
        ),
    ])
}

/// The stable fingerprint of one raw simulation: `workload` run under `kind`
/// on the machine described by `config`.
///
/// Equal inputs always produce equal fingerprints within one simulator
/// version; see the module docs for exactly what is keyed.
pub fn cell_fingerprint(
    workload: &Workload,
    kind: DefenseKind,
    config: &SystemConfig,
) -> Fingerprint {
    let defense = match kind {
        // Custom kinds share the "muontrap-custom" label; the protection
        // payload is what distinguishes them.
        DefenseKind::MuonTrapCustom(protection) => Json::obj([
            ("label", Json::Str(kind.label().to_string())),
            ("protection", protection.to_json()),
        ]),
        _ => Json::obj([("label", Json::Str(kind.label().to_string()))]),
    };
    let descriptor = Json::obj([
        ("version", version_salt()),
        (
            "workload",
            Json::obj([
                ("name", Json::Str(workload.name.clone())),
                ("threads", Json::UInt(workload.num_threads() as u64)),
                ("shared_memory", Json::Bool(workload.shared_memory)),
                ("cycle_budget", Json::UInt(workload.cycle_budget)),
                (
                    "programs",
                    Json::Str(fingerprint::of_hash(&workload.thread_programs).to_hex()),
                ),
            ]),
        ),
        ("defense", defense),
        ("config", config.to_json()),
    ]);
    fingerprint::of_json(&descriptor)
}

/// A content-addressed result store rooted at one directory.
///
/// Cloning is cheap (the root path); clones share the same on-disk state, as
/// do stores opened on the same path by different processes.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    /// Returns the I/O error if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an entry with this fingerprint lives at (whether or not it
    /// exists yet). Exposed so tests can corrupt entries deliberately.
    pub fn entry_path(&self, key: Fingerprint) -> PathBuf {
        let hex = key.to_hex();
        self.root
            .join(&hex[..2])
            .join(format!("{}.json", &hex[2..]))
    }

    /// Looks up a stored result.
    ///
    /// Any defect — missing file, unreadable bytes, malformed JSON, a schema
    /// mismatch, or an entry whose recorded fingerprint disagrees with its
    /// address — reads as a miss (`None`), so callers fall back to
    /// re-simulation rather than propagating corruption.
    pub fn get(&self, key: Fingerprint) -> Option<ExperimentResult> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let entry = json::parse(&text).ok()?;
        let recorded = entry.get("fingerprint")?.as_str()?;
        if Fingerprint::parse_hex(recorded) != Some(key) {
            return None;
        }
        ExperimentResult::from_json(entry.get("result")?).ok()
    }

    /// Whether an entry for `key` exists and decodes cleanly.
    pub fn contains(&self, key: Fingerprint) -> bool {
        self.get(key).is_some()
    }

    /// Persists `result` under `key`, atomically.
    ///
    /// The entry is written to a unique temp file in the destination
    /// directory and renamed into place, so a concurrent [`get`](Self::get)
    /// sees either nothing or the complete entry — never a partial write.
    /// Last writer wins; all writers for one key hold identical content
    /// (simulations are deterministic), so the race is benign.
    ///
    /// # Errors
    /// Returns the I/O error if the entry cannot be written or renamed.
    pub fn put(&self, key: Fingerprint, result: &ExperimentResult) -> io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry paths always have a parent");
        fs::create_dir_all(dir)?;
        let entry = Json::obj([
            ("fingerprint", Json::Str(key.to_hex())),
            ("result", result.to_json()),
        ]);
        let temp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&temp, entry.to_string_pretty())?;
        match fs::rename(&temp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Don't leave temp droppings behind on a failed rename.
                let _ = fs::remove_file(&temp);
                Err(e)
            }
        }
    }

    /// Number of entries on disk (files in the two-level layout). Walks the
    /// directory; intended for tests and reporting, not hot paths.
    pub fn len(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .filter_map(|shard| fs::read_dir(shard.ok()?.path()).ok())
            .flatten()
            .filter(|entry| {
                entry
                    .as_ref()
                    .map(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .unwrap_or(false)
            })
            .count()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::simulate;
    use simkit::config::ProtectionConfig;
    use workloads::{spec_suite, Scale};

    fn temp_store(tag: &str) -> ResultStore {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        let dir = std::env::temp_dir().join(format!(
            "muontrap-store-test-{tag}-{}-{nanos}",
            std::process::id()
        ));
        ResultStore::open(dir).expect("temp store opens")
    }

    fn sample() -> (Workload, SystemConfig) {
        (
            spec_suite(Scale::Tiny).into_iter().next().unwrap(),
            SystemConfig::small_test(),
        )
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive_to_every_input() {
        let (w, cfg) = sample();
        let base = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        // Stability: same inputs, same fingerprint, across repeated derivations.
        assert_eq!(base, cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg));

        // Sensitivity: defense kind, machine config, workload parameters and
        // workload *code* must all change the key.
        assert_ne!(base, cell_fingerprint(&w, DefenseKind::SttSpectre, &cfg));
        assert_ne!(
            base,
            cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg.with_data_filter(64, 1))
        );
        let mut longer = w.clone();
        longer.cycle_budget += 1;
        assert_ne!(base, cell_fingerprint(&longer, DefenseKind::MuonTrap, &cfg));
        let mut renamed = w.clone();
        renamed.name.push('2');
        assert_ne!(
            base,
            cell_fingerprint(&renamed, DefenseKind::MuonTrap, &cfg)
        );
        let other_code = spec_suite(Scale::Tiny).into_iter().nth(1).unwrap();
        let mut impostor = other_code.clone();
        impostor.name = w.name.clone();
        impostor.cycle_budget = w.cycle_budget;
        assert_ne!(
            base,
            cell_fingerprint(&impostor, DefenseKind::MuonTrap, &cfg),
            "same name, different programs must not alias"
        );
    }

    #[test]
    fn custom_kinds_are_distinguished_by_their_protection_payload() {
        let (w, cfg) = sample();
        let a = DefenseKind::MuonTrapCustom(ProtectionConfig::insecure_l0());
        let b = DefenseKind::MuonTrapCustom(ProtectionConfig::muontrap_default());
        assert_eq!(a.label(), b.label());
        assert_ne!(cell_fingerprint(&w, a, &cfg), cell_fingerprint(&w, b, &cfg));
    }

    #[test]
    fn put_get_round_trips_a_result() {
        let store = temp_store("roundtrip");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        assert_eq!(store.get(key), None);
        assert!(!store.contains(key));

        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        store.put(key, &result).expect("put succeeds");
        assert_eq!(store.get(key), Some(result));
        assert!(store.contains(key));
        assert_eq!(store.len(), 1);
        // Overwrite is idempotent.
        store
            .put(key, &simulate(&w, DefenseKind::MuonTrap, &cfg))
            .unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn corrupted_entries_read_as_misses() {
        let store = temp_store("corrupt");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        store.put(key, &result).unwrap();

        // Truncated JSON.
        fs::write(store.entry_path(key), "{\"fingerprint\": \"dead").unwrap();
        assert_eq!(store.get(key), None);
        // Valid JSON, wrong schema.
        fs::write(store.entry_path(key), "[1, 2, 3]").unwrap();
        assert_eq!(store.get(key), None);
        // A complete entry filed under the wrong address.
        let other = Fingerprint(key.0 ^ 1);
        fs::create_dir_all(store.entry_path(other).parent().unwrap()).unwrap();
        fs::copy(store.entry_path(key), store.entry_path(other)).ok();
        store.put(key, &result).unwrap(); // restore the real entry
        fs::copy(store.entry_path(key), store.entry_path(other)).unwrap();
        assert_eq!(
            store.get(other),
            None,
            "entry with mismatched fingerprint must not be served"
        );
        // The intact entry still hits.
        assert_eq!(store.get(key), Some(result));
    }

    #[test]
    fn concurrent_writers_never_expose_partial_entries() {
        let store = temp_store("parallel");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        store.put(key, &result).unwrap();
                        if let Some(read) = store.get(key) {
                            assert_eq!(read, result);
                        }
                    }
                });
            }
        });
        assert_eq!(store.get(key), Some(result));
        assert_eq!(store.len(), 1, "temp files must not linger as entries");
    }
}
