//! Pluggable storage primitives under [`ResultStore`](super::ResultStore).
//!
//! The lease/entry protocol — claim by atomic create-new, publish by
//! temp-file + rename, steal by atomic replace, GC in modified-time order —
//! never actually needed a filesystem, only a handful of primitives with the
//! right atomicity. [`StoreBackend`] names those primitives, and three
//! implementations ship with it:
//!
//! * [`FsBackend`] — the original on-disk layout, bit-for-bit.
//!   [`ResultStore::open`](super::ResultStore::open) uses it, so every
//!   existing store directory keeps working unchanged.
//! * [`MemBackend`] — a process-local map. Fast and deterministic: its
//!   modified stamps are a logical counter, so GC eviction order never
//!   depends on filesystem timestamp resolution. This is the substrate the
//!   lease-protocol property tests and the chaos suite run on.
//! * [`FaultBackend`] — a decorator injecting seeded faults (torn writes,
//!   create-new races, stale reads, transient I/O errors, latency) into any
//!   inner backend, with a scripted mode that replays an exact interleaving
//!   once a chaos run finds a failing one.
//!
//! Object names are root-relative paths with `/` separators — entries at
//! `"ab/cdef….json"`, leases at `".leases/<fp>.lease"`. The naming scheme is
//! owned by [`ResultStore`](super::ResultStore); backends only store bytes
//! under opaque names.
//!
//! # What each primitive must guarantee
//!
//! | primitive | protocol use | atomicity required |
//! |---|---|---|
//! | [`read`](StoreBackend::read) | entry lookups, lease inspection | none (a torn value must merely *parse* as garbage) |
//! | [`put_atomic`](StoreBackend::put_atomic) | entry publish, lease steal, done marker, heartbeat | readers see the old value or the new, never a prefix |
//! | [`create_new`](StoreBackend::create_new) | lease acquisition | exactly one of N racing creators wins |
//! | [`remove`](StoreBackend::remove) | lease release, GC eviction | missing is success |
//! | [`list`](StoreBackend::list) | entry census ([`len`](super::ResultStore::len)), GC order | none |

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use simkit::rng::SimRng;

/// Metadata of one stored object, as returned by [`StoreBackend::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object's backend-relative name (`/`-separated).
    pub name: String,
    /// Content length in bytes.
    pub len: u64,
    /// Last-modified time, milliseconds since the Unix epoch. [`MemBackend`]
    /// substitutes a logical counter: only the *order* is meaningful, which
    /// is all GC consumes.
    pub modified_unix_ms: u64,
}

/// The storage primitives [`ResultStore`](super::ResultStore) drives its
/// entry/lease protocol over. See the [module docs](self) for the atomicity
/// contract of each method.
pub trait StoreBackend: Send + Sync + fmt::Debug {
    /// A short human-readable identity for diagnostics (`"fs:<root>"`,
    /// `"mem"`, `"fault(mem)"`).
    fn label(&self) -> String;

    /// Reads the complete contents of `name`; `Ok(None)` when absent.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Atomically replaces `name` with `bytes`: a concurrent
    /// [`read`](Self::read) sees the previous value or the new one in full,
    /// never a prefix. Creates the object (and any parent namespace) if
    /// absent.
    fn put_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Creates `name` with `bytes` only if it does not already exist:
    /// `Ok(true)` when this call created it, `Ok(false)` when somebody else
    /// got there first. Exactly one of any number of racing creators wins.
    fn create_new(&self, name: &str, bytes: &[u8]) -> io::Result<bool>;

    /// Removes `name`. A missing object is not an error.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Metadata of every object whose name starts with `prefix` (pass `""`
    /// for everything). Writer temp litter is excluded.
    fn list(&self, prefix: &str) -> io::Result<Vec<ObjectMeta>>;

    /// Sweeps abandoned writer temp files older than `grace`. A no-op for
    /// backends whose [`put_atomic`](Self::put_atomic) leaves no litter.
    fn sweep_temp(&self, grace: Duration) -> io::Result<()> {
        let _ = grace;
        Ok(())
    }
}

/// Sequence numbers making writer temp-file names unique within a process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The filesystem backend: [`ResultStore::open`](super::ResultStore::open)'s
/// default, bit-compatible with every store directory written before the
/// backend trait existed. Objects are files under `root` (names map to
/// relative paths), `put_atomic` is the classic temp-file + `rename`, and
/// `create_new` is `O_CREAT|O_EXCL`.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    /// A backend rooted at `root`. The directory is not created here —
    /// [`ResultStore::open`](super::ResultStore::open) creates it, while
    /// read-only handles deliberately never do.
    pub fn new(root: impl Into<PathBuf>) -> FsBackend {
        FsBackend { root: root.into() }
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> PathBuf {
        let mut path = self.root.clone();
        for part in name.split('/') {
            path.push(part);
        }
        path
    }

    fn temp_name() -> String {
        format!(
            ".tmp-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        )
    }

    fn unix_ms_of(time: std::time::SystemTime) -> u64 {
        time.duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

impl StoreBackend for FsBackend {
    fn label(&self) -> String {
        format!("fs:{}", self.root.display())
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path_of(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn put_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let path = self.path_of(name);
        let dir = path.parent().expect("object paths always have a parent");
        std::fs::create_dir_all(dir)?;
        let temp = dir.join(Self::temp_name());
        std::fs::write(&temp, bytes)?;
        std::fs::rename(&temp, &path).inspect_err(|_| {
            // Don't leave temp droppings behind on a failed rename.
            let _ = std::fs::remove_file(&temp);
        })
    }

    fn create_new(&self, name: &str, bytes: &[u8]) -> io::Result<bool> {
        let path = self.path_of(name);
        let dir = path.parent().expect("object paths always have a parent");
        std::fs::create_dir_all(dir)?;
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                use io::Write as _;
                file.write_all(bytes)?;
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path_of(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<ObjectMeta>> {
        let mut objects = Vec::new();
        let dirs = match std::fs::read_dir(&self.root) {
            Ok(dirs) => dirs,
            // A store that was never written to holds no objects.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(objects),
            Err(e) => return Err(e),
        };
        for dir in dirs.flatten() {
            let dir_path = dir.path();
            if !dir_path.is_dir() {
                continue;
            }
            let dir_name = dir.file_name();
            let dir_name = dir_name.to_string_lossy();
            let Ok(files) = std::fs::read_dir(&dir_path) else {
                continue;
            };
            for file in files.flatten() {
                let file_name = file.file_name();
                let file_name = file_name.to_string_lossy();
                if file_name.starts_with(".tmp-") {
                    continue;
                }
                let name = format!("{dir_name}/{file_name}");
                if !name.starts_with(prefix) {
                    continue;
                }
                let Ok(meta) = file.metadata() else { continue };
                objects.push(ObjectMeta {
                    name,
                    len: meta.len(),
                    modified_unix_ms: meta.modified().map(Self::unix_ms_of).unwrap_or(0),
                });
            }
        }
        objects.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(objects)
    }

    fn sweep_temp(&self, grace: Duration) -> io::Result<()> {
        let Ok(dirs) = std::fs::read_dir(&self.root) else {
            return Ok(());
        };
        for dir in dirs.flatten() {
            let dir_path = dir.path();
            // Lease-directory litter is left alone, exactly as the
            // pre-backend GC did: a lease temp is racing a steal or a done
            // marker, and those writers clean up after themselves.
            if !dir_path.is_dir() || dir_path.ends_with(".leases") {
                continue;
            }
            let Ok(files) = std::fs::read_dir(&dir_path) else {
                continue;
            };
            for file in files.flatten() {
                if !file.file_name().to_string_lossy().starts_with(".tmp-") {
                    continue;
                }
                // Crashed-writer litter; live writers rename theirs away
                // within moments, so age gates the sweep.
                let abandoned =
                    file.metadata()
                        .ok()
                        .and_then(|m| m.modified().ok())
                        .map(|modified| {
                            std::time::SystemTime::now()
                                .duration_since(modified)
                                .is_ok_and(|age| age >= grace)
                        });
                if abandoned.unwrap_or(false) {
                    let _ = std::fs::remove_file(file.path());
                }
            }
        }
        Ok(())
    }
}

/// A process-local, in-memory backend for fast deterministic tests.
///
/// Every primitive is a map operation under one mutex, so the atomicity
/// contract holds trivially. Modified stamps are a logical counter rather
/// than wall-clock time: two objects written back-to-back always have
/// distinct, ordered stamps, which makes GC eviction order exactly the write
/// order with no timestamp-resolution flakiness.
#[derive(Debug, Default)]
pub struct MemBackend {
    objects: Mutex<BTreeMap<String, MemObject>>,
    tick: AtomicU64,
}

#[derive(Debug)]
struct MemObject {
    bytes: Vec<u8>,
    modified: u64,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    fn stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }
}

impl StoreBackend for MemBackend {
    fn label(&self) -> String {
        "mem".to_string()
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let objects = self.objects.lock().expect("mem backend lock");
        Ok(objects.get(name).map(|o| o.bytes.clone()))
    }

    fn put_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let modified = self.stamp();
        let mut objects = self.objects.lock().expect("mem backend lock");
        objects.insert(
            name.to_string(),
            MemObject {
                bytes: bytes.to_vec(),
                modified,
            },
        );
        Ok(())
    }

    fn create_new(&self, name: &str, bytes: &[u8]) -> io::Result<bool> {
        let modified = self.stamp();
        let mut objects = self.objects.lock().expect("mem backend lock");
        match objects.entry(name.to_string()) {
            std::collections::btree_map::Entry::Occupied(_) => Ok(false),
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(MemObject {
                    bytes: bytes.to_vec(),
                    modified,
                });
                Ok(true)
            }
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut objects = self.objects.lock().expect("mem backend lock");
        objects.remove(name);
        Ok(())
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<ObjectMeta>> {
        let objects = self.objects.lock().expect("mem backend lock");
        Ok(objects
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(name, o)| ObjectMeta {
                name: name.clone(),
                len: o.bytes.len() as u64,
                modified_unix_ms: o.modified,
            })
            .collect())
    }
}

/// One kind of injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A [`put_atomic`](StoreBackend::put_atomic) that persists only a
    /// prefix of its bytes yet reports success — the crash-between-write-
    /// and-rename the protocol must survive (torn entries read as misses,
    /// torn leases as abandoned).
    TornWrite,
    /// A [`create_new`](StoreBackend::create_new) that loses a race which
    /// isn't there: it reports `already exists` without creating anything,
    /// pushing the caller down the inspect-then-steal path.
    CreateRace,
    /// A [`read`](StoreBackend::read) served from the past: the value the
    /// object held *before* its most recent overwrite or removal, as a
    /// lagging network filesystem would.
    StaleRead,
    /// The operation fails with [`io::ErrorKind::Interrupted`] and performs
    /// nothing.
    TransientError,
    /// The operation sleeps this many milliseconds before proceeding
    /// normally.
    Latency(u64),
}

impl Fault {
    fn applies_to(self, op: OpKind) -> bool {
        match self {
            Fault::TornWrite => op == OpKind::Put,
            Fault::CreateRace => op == OpKind::Create,
            Fault::StaleRead => op == OpKind::Read,
            Fault::TransientError | Fault::Latency(_) => true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Put,
    Create,
    Remove,
    List,
}

impl OpKind {
    fn verb(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Put => "put",
            OpKind::Create => "create",
            OpKind::Remove => "remove",
            OpKind::List => "list",
        }
    }
}

/// Per-operation fault probabilities for a seeded [`FaultBackend`], in
/// chances per thousand operations. At most one fault fires per operation;
/// categories are rolled in a fixed order so one seed always injects one
/// interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Chance of [`Fault::TornWrite`] per `put_atomic`.
    pub torn_write_per_mille: u32,
    /// Chance of [`Fault::CreateRace`] per `create_new`.
    pub create_race_per_mille: u32,
    /// Chance of [`Fault::StaleRead`] per `read`.
    pub stale_read_per_mille: u32,
    /// Chance of [`Fault::TransientError`] per operation.
    pub transient_error_per_mille: u32,
    /// Chance of [`Fault::Latency`] per operation.
    pub latency_per_mille: u32,
    /// Upper bound (inclusive) of an injected latency, in milliseconds.
    pub max_latency_ms: u64,
}

impl FaultConfig {
    /// No faults: the decorator becomes a transparent (but op-counting)
    /// wrapper. Useful for pinning operation indices before scripting.
    pub fn none() -> FaultConfig {
        FaultConfig {
            torn_write_per_mille: 0,
            create_race_per_mille: 0,
            stale_read_per_mille: 0,
            transient_error_per_mille: 0,
            latency_per_mille: 0,
            max_latency_ms: 0,
        }
    }

    /// The chaos suite's default mix: every category enabled, aggressively
    /// enough that a hundred-seed sweep exercises each protocol recovery
    /// path many times, with latency kept to a millisecond so the sweep
    /// stays fast.
    pub fn chaos() -> FaultConfig {
        FaultConfig {
            torn_write_per_mille: 40,
            create_race_per_mille: 40,
            stale_read_per_mille: 40,
            transient_error_per_mille: 30,
            latency_per_mille: 10,
            max_latency_ms: 1,
        }
    }
}

/// One fault that actually altered an operation, with enough context to
/// replay it: feed `(op, fault)` pairs back to [`FaultBackend::scripted`]
/// and the exact interleaving reproduces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The zero-based operation index the fault fired on.
    pub op: u64,
    /// What was injected.
    pub fault: Fault,
    /// `"<verb> <object name>"`, for humans reading a failure report.
    pub action: String,
}

/// A fault-injecting decorator over any [`StoreBackend`].
///
/// In *seeded* mode ([`FaultBackend::seeded`]) a [`SimRng`] rolls the
/// [`FaultConfig`] probabilities on every operation; in *scripted* mode
/// ([`FaultBackend::scripted`]) only the listed `(operation index, fault)`
/// pairs fire, which replays an interleaving a seeded run discovered (the
/// discovery is [`injected`](FaultBackend::injected)). Operations are
/// serialized through one lock, so with a single-threaded caller the
/// operation sequence — and therefore the injection points — is exactly
/// reproducible.
///
/// Faults only ever *lose or delay* information (a torn suffix, a spurious
/// `already exists`, a stale or failed read); they never invent bytes. That
/// matches the failure model the store protocol claims to survive, which is
/// exactly what the chaos suite asserts.
pub struct FaultBackend {
    inner: Arc<dyn StoreBackend>,
    state: Mutex<FaultState>,
}

struct FaultState {
    rng: SimRng,
    config: FaultConfig,
    script: BTreeMap<u64, Fault>,
    scripted: bool,
    op: u64,
    log: Vec<FaultRecord>,
    /// The superseded value of each overwritten or removed object, served by
    /// [`Fault::StaleRead`].
    shadows: HashMap<String, Vec<u8>>,
}

impl fmt::Debug for FaultBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultBackend")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl FaultBackend {
    /// A decorator rolling `config`'s probabilities with a [`SimRng`] seeded
    /// from `seed`.
    pub fn seeded(inner: Arc<dyn StoreBackend>, seed: u64, config: FaultConfig) -> FaultBackend {
        FaultBackend {
            inner,
            state: Mutex::new(FaultState {
                rng: SimRng::seed_from(seed),
                config,
                script: BTreeMap::new(),
                scripted: false,
                op: 0,
                log: Vec::new(),
                shadows: HashMap::new(),
            }),
        }
    }

    /// A decorator injecting exactly the scripted faults: `fault` fires on
    /// the zero-based operation with index `op` (when it applies to that
    /// operation's kind), and no others. This is the replay half of the
    /// chaos suite's regression mode.
    pub fn scripted(
        inner: Arc<dyn StoreBackend>,
        script: impl IntoIterator<Item = (u64, Fault)>,
    ) -> FaultBackend {
        FaultBackend {
            inner,
            state: Mutex::new(FaultState {
                rng: SimRng::seed_from(0),
                config: FaultConfig::none(),
                script: script.into_iter().collect(),
                scripted: true,
                op: 0,
                log: Vec::new(),
                shadows: HashMap::new(),
            }),
        }
    }

    /// Every fault that altered an operation so far, in firing order. A
    /// failing seeded run's log *is* the regression script: pass the
    /// `(op, fault)` pairs to [`scripted`](Self::scripted).
    pub fn injected(&self) -> Vec<FaultRecord> {
        self.state.lock().expect("fault backend lock").log.clone()
    }

    /// Operations observed so far (fault decisions consumed).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault backend lock").op
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault backend lock")
    }
}

impl FaultState {
    /// Consumes one operation slot and decides its fault, if any.
    fn decide(&mut self, op_kind: OpKind) -> Option<Fault> {
        let index = self.op;
        self.op += 1;
        if self.scripted {
            return self
                .script
                .get(&index)
                .copied()
                .filter(|fault| fault.applies_to(op_kind));
        }
        // Roll every category every time, in a fixed order, so the RNG
        // stream (and with it every later decision) is independent of which
        // categories are enabled or applicable.
        let rolls = [
            (Fault::TornWrite, self.config.torn_write_per_mille),
            (Fault::CreateRace, self.config.create_race_per_mille),
            (Fault::StaleRead, self.config.stale_read_per_mille),
            (Fault::TransientError, self.config.transient_error_per_mille),
        ];
        let mut chosen = None;
        for (fault, per_mille) in rolls {
            let hit = self.rng.below(1000) < per_mille as u64;
            if hit && chosen.is_none() && fault.applies_to(op_kind) {
                chosen = Some(fault);
            }
        }
        let latency_hit = self.rng.below(1000) < self.config.latency_per_mille as u64;
        let latency_ms = self.rng.below(self.config.max_latency_ms + 1);
        if chosen.is_none() && latency_hit {
            chosen = Some(Fault::Latency(latency_ms));
        }
        chosen
    }

    fn record(&mut self, fault: Fault, op_kind: OpKind, name: &str) {
        self.log.push(FaultRecord {
            op: self.op - 1,
            fault,
            action: format!("{} {name}", op_kind.verb()),
        });
    }

    fn shadow(&mut self, name: &str, previous: Option<Vec<u8>>) {
        if let Some(previous) = previous {
            self.shadows.insert(name.to_string(), previous);
        }
    }
}

fn injected_error() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected transient I/O error")
}

impl StoreBackend for FaultBackend {
    fn label(&self) -> String {
        format!("fault({})", self.inner.label())
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let mut state = self.lock();
        match state.decide(OpKind::Read) {
            Some(Fault::TransientError) => {
                state.record(Fault::TransientError, OpKind::Read, name);
                Err(injected_error())
            }
            Some(Fault::StaleRead) => {
                // Only a value that really was superseded can be served
                // stale; with no history the read passes through unlogged.
                match state.shadows.get(name).cloned() {
                    Some(stale) => {
                        state.record(Fault::StaleRead, OpKind::Read, name);
                        Ok(Some(stale))
                    }
                    None => self.inner.read(name),
                }
            }
            Some(Fault::Latency(ms)) => {
                state.record(Fault::Latency(ms), OpKind::Read, name);
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.read(name)
            }
            _ => self.inner.read(name),
        }
    }

    fn put_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        let previous = self.inner.read(name).ok().flatten();
        match state.decide(OpKind::Put) {
            Some(Fault::TransientError) => {
                state.record(Fault::TransientError, OpKind::Put, name);
                Err(injected_error())
            }
            Some(Fault::TornWrite) => {
                state.record(Fault::TornWrite, OpKind::Put, name);
                self.inner.put_atomic(name, &bytes[..bytes.len() / 2])?;
                state.shadow(name, previous);
                Ok(())
            }
            Some(Fault::Latency(ms)) => {
                state.record(Fault::Latency(ms), OpKind::Put, name);
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.put_atomic(name, bytes)?;
                state.shadow(name, previous);
                Ok(())
            }
            _ => {
                self.inner.put_atomic(name, bytes)?;
                state.shadow(name, previous);
                Ok(())
            }
        }
    }

    fn create_new(&self, name: &str, bytes: &[u8]) -> io::Result<bool> {
        let mut state = self.lock();
        match state.decide(OpKind::Create) {
            Some(Fault::TransientError) => {
                state.record(Fault::TransientError, OpKind::Create, name);
                Err(injected_error())
            }
            Some(Fault::CreateRace) => {
                state.record(Fault::CreateRace, OpKind::Create, name);
                Ok(false)
            }
            Some(Fault::Latency(ms)) => {
                state.record(Fault::Latency(ms), OpKind::Create, name);
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.create_new(name, bytes)
            }
            _ => self.inner.create_new(name, bytes),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut state = self.lock();
        match state.decide(OpKind::Remove) {
            Some(Fault::TransientError) => {
                state.record(Fault::TransientError, OpKind::Remove, name);
                Err(injected_error())
            }
            fault => {
                if let Some(Fault::Latency(ms)) = fault {
                    state.record(Fault::Latency(ms), OpKind::Remove, name);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                let previous = self.inner.read(name).ok().flatten();
                self.inner.remove(name)?;
                state.shadow(name, previous);
                Ok(())
            }
        }
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<ObjectMeta>> {
        let mut state = self.lock();
        match state.decide(OpKind::List) {
            Some(Fault::TransientError) => {
                state.record(Fault::TransientError, OpKind::List, prefix);
                Err(injected_error())
            }
            fault => {
                if let Some(Fault::Latency(ms)) = fault {
                    state.record(Fault::Latency(ms), OpKind::List, prefix);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                self.inner.list(prefix)
            }
        }
    }

    fn sweep_temp(&self, grace: Duration) -> io::Result<()> {
        self.inner.sweep_temp(grace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "muontrap-backend-test-{tag}-{}-{nanos}",
            std::process::id()
        ))
    }

    /// Both concrete backends satisfy the same primitive contract.
    fn exercise_contract(backend: &dyn StoreBackend) {
        assert_eq!(backend.read("ab/x.json").unwrap(), None);
        assert!(backend.create_new("ab/x.json", b"one").unwrap());
        assert!(!backend.create_new("ab/x.json", b"two").unwrap());
        assert_eq!(backend.read("ab/x.json").unwrap().unwrap(), b"one");
        backend.put_atomic("ab/x.json", b"three").unwrap();
        assert_eq!(backend.read("ab/x.json").unwrap().unwrap(), b"three");
        backend.put_atomic(".leases/x.lease", b"lease").unwrap();
        let all = backend.list("").unwrap();
        assert_eq!(all.len(), 2);
        let leases = backend.list(".leases/").unwrap();
        assert_eq!(leases.len(), 1);
        assert_eq!(leases[0].name, ".leases/x.lease");
        assert_eq!(leases[0].len, 5);
        backend.remove("ab/x.json").unwrap();
        backend.remove("ab/x.json").unwrap(); // missing is not an error
        assert_eq!(backend.read("ab/x.json").unwrap(), None);
        assert_eq!(backend.list("ab/").unwrap().len(), 0);
    }

    #[test]
    fn fs_backend_satisfies_the_contract() {
        let root = temp_root("contract-fs");
        exercise_contract(&FsBackend::new(&root));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mem_backend_satisfies_the_contract() {
        exercise_contract(&MemBackend::new());
    }

    #[test]
    fn mem_backend_modified_stamps_order_writes() {
        let backend = MemBackend::new();
        backend.put_atomic("aa/1.json", b"first").unwrap();
        backend.put_atomic("aa/2.json", b"second").unwrap();
        backend.put_atomic("aa/1.json", b"rewritten").unwrap();
        let list = backend.list("").unwrap();
        let stamp = |name: &str| {
            list.iter()
                .find(|o| o.name == name)
                .map(|o| o.modified_unix_ms)
                .unwrap()
        };
        assert!(
            stamp("aa/1.json") > stamp("aa/2.json"),
            "a rewrite must refresh the modified stamp"
        );
    }

    #[test]
    fn fault_backend_same_seed_same_injections() {
        let run = || {
            let fault = FaultBackend::seeded(
                Arc::new(MemBackend::new()),
                0xC0FFEE,
                FaultConfig {
                    max_latency_ms: 0,
                    ..FaultConfig::chaos()
                },
            );
            for i in 0..200u32 {
                let name = format!("ab/{i}.json");
                let _ = fault.create_new(&name, b"payload-bytes");
                let _ = fault.put_atomic(&name, b"payload-bytes-longer");
                let _ = fault.read(&name);
                let _ = fault.remove(&name);
            }
            fault.injected()
        };
        let first = run();
        let second = run();
        assert!(!first.is_empty(), "the chaos mix must actually fire");
        assert_eq!(first, second, "one seed must give one interleaving");
    }

    #[test]
    fn scripted_faults_fire_exactly_where_told() {
        let inner = Arc::new(MemBackend::new());
        // Op 0: create -> raced. Op 1: put -> torn. Op 2: read -> stale
        // (no-op here: nothing was ever overwritten). Op 3: read -> error.
        let fault = FaultBackend::scripted(
            inner.clone(),
            [
                (0, Fault::CreateRace),
                (1, Fault::TornWrite),
                (3, Fault::TransientError),
            ],
        );
        assert!(
            !fault.create_new("ab/x.json", b"hello").unwrap(),
            "scripted create race reports already-exists"
        );
        assert_eq!(inner.read("ab/x.json").unwrap(), None, "nothing created");
        fault.put_atomic("ab/x.json", b"0123456789").unwrap();
        assert_eq!(
            fault.read("ab/x.json").unwrap().unwrap(),
            b"01234",
            "torn write persisted only a prefix"
        );
        assert!(fault.read("ab/x.json").is_err(), "scripted transient error");
        assert_eq!(
            fault.read("ab/x.json").unwrap().unwrap(),
            b"01234",
            "off-script operations pass through"
        );
        assert_eq!(fault.injected().len(), 3);
    }

    #[test]
    fn stale_reads_serve_the_superseded_value() {
        let fault = FaultBackend::scripted(
            Arc::new(MemBackend::new()),
            [(2, Fault::StaleRead), (4, Fault::StaleRead)],
        );
        fault.put_atomic("ab/x.json", b"old").unwrap(); // op 0
        fault.put_atomic("ab/x.json", b"new").unwrap(); // op 1
        assert_eq!(
            fault.read("ab/x.json").unwrap().unwrap(), // op 2: stale
            b"old"
        );
        fault.remove("ab/x.json").unwrap(); // op 3
        assert_eq!(
            fault.read("ab/x.json").unwrap().unwrap(), // op 4: stale after remove
            b"new"
        );
        assert_eq!(fault.read("ab/x.json").unwrap(), None, "truth catches up");
    }

    #[test]
    fn a_seeded_log_replays_as_a_script() {
        let config = FaultConfig {
            max_latency_ms: 0,
            ..FaultConfig::chaos()
        };
        let drive = |fault: &FaultBackend| {
            for i in 0..100u32 {
                let name = format!("ab/{i}.json");
                let _ = fault.create_new(&name, b"0123456789abcdef");
                let _ = fault.put_atomic(&name, b"fedcba9876543210");
                let _ = fault.read(&name);
            }
        };
        let seeded = FaultBackend::seeded(Arc::new(MemBackend::new()), 7, config);
        drive(&seeded);
        let log = seeded.injected();
        assert!(!log.is_empty());

        let replay = FaultBackend::scripted(
            Arc::new(MemBackend::new()),
            log.iter().map(|r| (r.op, r.fault)),
        );
        drive(&replay);
        assert_eq!(
            replay.injected(),
            log,
            "replaying a seeded log must reproduce it fault-for-fault"
        );
    }
}
