//! Content-addressed store of simulation results, over pluggable backends
//! (on-disk by default).
//!
//! The paper's evaluation is a large grid of (workload × defense ×
//! filter-cache geometry) simulations, and regenerating a figure re-runs the
//! whole grid even when nothing changed. [`ResultStore`] fixes that: every
//! raw simulation result ([`ExperimentResult`]) is persisted under a stable
//! [`Fingerprint`] of its *inputs* — the workload's µISA programs, the
//! machine and defense configuration, and a simulator version salt — so a
//! re-run of any grid whose inputs are unchanged is pure cache hits. The
//! [`ExperimentSession`](crate::session::ExperimentSession) consults the
//! store before dispatching each grid cell (see
//! [`with_store`](crate::session::ExperimentSession::with_store)) and writes
//! results back as they complete.
//!
//! # Keying
//!
//! [`cell_fingerprint`] builds a JSON descriptor of the simulation's inputs
//! and hashes it with [`simkit::fingerprint::of_json`]:
//!
//! * the workload's name, thread count, memory sharing, cycle budget, and a
//!   content hash of its µISA programs (so a regenerated kernel with the same
//!   name but different code misses rather than aliasing),
//! * the defense kind — including the full
//!   [`ProtectionConfig`](simkit::config::ProtectionConfig) payload for
//!   `MuonTrapCustom` entries, which share one label,
//! * the complete [`SystemConfig`] (every knob that can change a result),
//! * [`STORE_FORMAT_VERSION`] plus the simulator crate version, so upgrading
//!   the simulator invalidates old entries instead of replaying them.
//!
//! Keys are conservative: two configurations that happen to simulate
//! identically (e.g. differing only in a knob the chosen defense overrides)
//! get distinct fingerprints and miss across each other. That costs a
//! re-simulation, never a wrong result.
//!
//! # On-disk layout and concurrency
//!
//! Entries live at `<root>/<first two hex digits>/<remaining 30>.json`, each
//! a small JSON document carrying its own fingerprint (verified on read).
//! Writes go to a unique temp file in the destination directory followed by
//! an atomic rename, so concurrent writers — the session's thread pool, or
//! several figure binaries sharing one store — can never expose a partial
//! entry. Unreadable, unparseable or mislabelled entries are treated as
//! misses and re-simulated; a corrupt store degrades to a slow one, never a
//! wrong one.
//!
//! # Leases
//!
//! The sharded runner ([`crate::runner`]) coordinates several worker
//! processes over one store directory through *lease files* under
//! `<root>/.leases/<fingerprint>.lease`. A lease is acquired with an atomic
//! create-new ([`try_lease`](ResultStore::try_lease)); an expired lease (its
//! holder crashed) or a completed-but-storeless one is *stolen* by writing a
//! replacement to a temp file and renaming it into place. A completed unit is
//! marked by rewriting the lease with `done: true`
//! ([`mark_done`](ResultStore::mark_done)), which doubles as the
//! "computed during run `run_id`" provenance marker the runner uses to tell
//! freshly simulated entries from pre-existing ones. Lease files use the
//! `.lease` extension so [`len`](ResultStore::len) and
//! [`gc`](ResultStore::gc) never mistake them for result entries.
//!
//! # Read-only mode and eviction
//!
//! [`ResultStore::read_only`] opens a store that serves hits but silently
//! drops writes — CI jobs can reuse a downloaded store artifact without ever
//! mutating it (misses simply re-simulate). [`ResultStore::gc`] walks the
//! entries and evicts the least-recently-modified ones until the store fits a
//! byte cap, returning a [`GcSummary`] (the `store_gc` binary prints it as
//! JSON).
//!
//! # Backends
//!
//! Everything above is expressed over the [`StoreBackend`] trait rather than
//! the filesystem directly: [`ResultStore::open`] plugs in the bit-compatible
//! [`FsBackend`], [`ResultStore::in_memory`] the deterministic [`MemBackend`],
//! and [`ResultStore::with_backend`] anything else — including a
//! [`FaultBackend`] wrapper that injects seeded torn writes, create-new
//! races, stale reads, latency and transient errors, which is how the chaos
//! suite drives every recovery path of the lease protocol on purpose instead
//! of by luck. See [`backend`] for the primitive ↔ protocol mapping.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simkit::config::SystemConfig;
use simkit::fingerprint::{self, Fingerprint};
use simkit::json::{self, FromJson, Json, JsonError, ToJson};

use defenses::DefenseKind;
use workloads::Workload;

use crate::session::ExperimentResult;

pub mod backend;

pub use backend::{
    Fault, FaultBackend, FaultConfig, FaultRecord, FsBackend, MemBackend, ObjectMeta, StoreBackend,
};

/// Version of the store's key derivation and entry layout. Bump on any
/// change to [`cell_fingerprint`], the entry schema, or simulation semantics
/// not captured by the crate version; old entries then miss instead of
/// serving stale results.
pub const STORE_FORMAT_VERSION: u64 = 1;

/// The version salt mixed into every fingerprint.
fn version_salt() -> Json {
    Json::obj([
        ("store_format", Json::UInt(STORE_FORMAT_VERSION)),
        (
            "simulator",
            Json::Str(env!("CARGO_PKG_VERSION").to_string()),
        ),
    ])
}

/// The stable fingerprint of one raw simulation: `workload` run under `kind`
/// on the machine described by `config`.
///
/// Equal inputs always produce equal fingerprints within one simulator
/// version; see the module docs for exactly what is keyed.
pub fn cell_fingerprint(
    workload: &Workload,
    kind: DefenseKind,
    config: &SystemConfig,
) -> Fingerprint {
    let defense = match kind {
        // Custom kinds share the "muontrap-custom" label; the protection
        // payload is what distinguishes them.
        DefenseKind::MuonTrapCustom(protection) => Json::obj([
            ("label", Json::Str(kind.label().to_string())),
            ("protection", protection.to_json()),
        ]),
        _ => Json::obj([("label", Json::Str(kind.label().to_string()))]),
    };
    let descriptor = Json::obj([
        ("version", version_salt()),
        (
            "workload",
            Json::obj([
                ("name", Json::Str(workload.name.clone())),
                ("threads", Json::UInt(workload.num_threads() as u64)),
                ("shared_memory", Json::Bool(workload.shared_memory)),
                ("cycle_budget", Json::UInt(workload.cycle_budget)),
                (
                    "programs",
                    Json::Str(fingerprint::of_hash(&workload.thread_programs).to_hex()),
                ),
            ]),
        ),
        ("defense", defense),
        ("config", config.to_json()),
    ]);
    fingerprint::of_json(&descriptor)
}

/// A content-addressed result store over one [`StoreBackend`].
///
/// Cloning is cheap (a shared backend handle); clones share the same stored
/// state, as do filesystem-backed stores opened on the same path by
/// different processes.
#[derive(Debug, Clone)]
pub struct ResultStore {
    backend: Arc<dyn StoreBackend>,
    root: PathBuf,
    read_only: bool,
    clock: Option<Arc<AtomicU64>>,
}

impl ResultStore {
    /// Opens (creating if needed) a filesystem-backed store rooted at
    /// `root`, via [`FsBackend`].
    ///
    /// # Errors
    /// Returns the I/O error if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultStore {
            backend: Arc::new(FsBackend::new(root.clone())),
            root,
            read_only: false,
            clock: None,
        })
    }

    /// Opens a store in read-only mode: hits are served normally, but
    /// [`put`](Self::put) becomes a silent no-op, so misses re-simulate
    /// without ever mutating the directory. Intended for CI reusing a store
    /// artifact it must not dirty. The directory does not have to exist — a
    /// missing store is simply always cold. Leases
    /// ([`try_lease`](Self::try_lease)) and [`gc`](Self::gc) are refused,
    /// so a read-only store cannot back a sharded run — with one deliberate
    /// exception: [`release_lease`](Self::release_lease) still works, so a
    /// handle demoted to read-only mid-flight can always un-pin a claim it
    /// took earlier instead of leaving it to expire by TTL.
    pub fn read_only(root: impl Into<PathBuf>) -> ResultStore {
        let root = root.into();
        ResultStore {
            backend: Arc::new(FsBackend::new(root.clone())),
            root,
            read_only: true,
            clock: None,
        }
    }

    /// A store over an arbitrary backend — [`MemBackend`] for deterministic
    /// tests, [`FaultBackend`] for chaos runs, or anything else implementing
    /// the trait. [`root`](Self::root), [`entry_path`](Self::entry_path) and
    /// [`lease_path`](Self::lease_path) are only meaningful for
    /// filesystem-backed stores and degrade to relative paths here.
    pub fn with_backend(backend: Arc<dyn StoreBackend>) -> ResultStore {
        ResultStore {
            backend,
            root: PathBuf::new(),
            read_only: false,
            clock: None,
        }
    }

    /// A store over a fresh private [`MemBackend`]. Clones of the returned
    /// store (but no other store) share its contents.
    pub fn in_memory() -> ResultStore {
        Self::with_backend(Arc::new(MemBackend::new()))
    }

    /// Replaces the wall clock used for lease timestamps and TTL expiry with
    /// a shared counter holding milliseconds-since-epoch. Tests advance it
    /// explicitly, so lease expiry becomes a deterministic event instead of
    /// a sleep.
    pub fn with_clock(mut self, clock: Arc<AtomicU64>) -> ResultStore {
        self.clock = Some(clock);
        self
    }

    /// The backend this store drives its protocol over.
    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    /// Whether this handle was opened with [`read_only`](Self::read_only).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The store's root directory (empty for non-filesystem backends).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Milliseconds since the Unix epoch, from the test clock when one was
    /// injected ([`with_clock`](Self::with_clock)).
    fn now_ms(&self) -> u64 {
        match &self.clock {
            Some(clock) => clock.load(Ordering::Relaxed),
            None => unix_ms(),
        }
    }

    /// The backend object name of an entry: `<2 hex>/<30 hex>.json`.
    fn entry_name(key: Fingerprint) -> String {
        let hex = key.to_hex();
        format!("{}/{}.json", &hex[..2], &hex[2..])
    }

    /// Whether a backend object name denotes a result entry (as opposed to a
    /// lease or foreign litter).
    fn is_entry(name: &str) -> bool {
        !name.starts_with(".leases/") && name.ends_with(".json")
    }

    /// The backend object name of a lease: `.leases/<32 hex>.lease`.
    fn lease_name(key: Fingerprint) -> String {
        format!(".leases/{}.lease", key.to_hex())
    }

    /// The path an entry with this fingerprint lives at (whether or not it
    /// exists yet). Exposed so tests can corrupt entries deliberately; only
    /// meaningful for filesystem-backed stores.
    pub fn entry_path(&self, key: Fingerprint) -> PathBuf {
        let hex = key.to_hex();
        self.root
            .join(&hex[..2])
            .join(format!("{}.json", &hex[2..]))
    }

    /// Looks up a stored result.
    ///
    /// Any defect — missing file, unreadable bytes, malformed JSON, a schema
    /// mismatch, or an entry whose recorded fingerprint disagrees with its
    /// address — reads as a miss (`None`), so callers fall back to
    /// re-simulation rather than propagating corruption.
    pub fn get(&self, key: Fingerprint) -> Option<ExperimentResult> {
        let metrics = obs::global();
        let bytes = match self.backend.read(&Self::entry_name(key)) {
            Ok(Some(bytes)) => bytes,
            // A failed read is as much a miss as an absent entry: the
            // caller re-simulates rather than propagating the defect.
            Ok(None) | Err(_) => {
                metrics.inc("store.misses", &[], 1);
                return None;
            }
        };
        metrics.inc("store.read_bytes", &[], bytes.len() as u64);
        let decode = || -> Option<ExperimentResult> {
            let text = std::str::from_utf8(&bytes).ok()?;
            let entry = json::parse(text).ok()?;
            let recorded = entry.get("fingerprint")?.as_str()?;
            if Fingerprint::parse_hex(recorded) != Some(key) {
                return None;
            }
            ExperimentResult::from_json(entry.get("result")?).ok()
        };
        match decode() {
            Some(result) => {
                metrics.inc("store.hits", &[], 1);
                Some(result)
            }
            None => {
                metrics.inc("store.misses", &[], 1);
                None
            }
        }
    }

    /// Whether an entry for `key` exists and decodes cleanly.
    pub fn contains(&self, key: Fingerprint) -> bool {
        self.get(key).is_some()
    }

    /// Persists `result` under `key`, atomically
    /// ([`StoreBackend::put_atomic`] — on disk, a unique temp file renamed
    /// into place), so a concurrent [`get`](Self::get) sees either nothing
    /// or the complete entry — never a partial write. Last writer wins; all
    /// writers for one key hold identical content (simulations are
    /// deterministic), so the race is benign.
    ///
    /// On a [`read_only`](Self::read_only) store this is a silent no-op
    /// returning `Ok(())`: the caller's result simply isn't persisted.
    ///
    /// # Errors
    /// Returns the I/O error if the entry cannot be written.
    pub fn put(&self, key: Fingerprint, result: &ExperimentResult) -> io::Result<()> {
        if self.read_only {
            return Ok(());
        }
        let entry = Json::obj([
            ("fingerprint", Json::Str(key.to_hex())),
            ("result", result.to_json()),
        ]);
        let text = entry.to_string_pretty();
        self.backend
            .put_atomic(&Self::entry_name(key), text.as_bytes())?;
        let metrics = obs::global();
        metrics.inc("store.writes", &[], 1);
        metrics.inc("store.write_bytes", &[], text.len() as u64);
        Ok(())
    }

    /// Number of entries in the store. Lists the backend; intended for tests
    /// and reporting, not hot paths.
    pub fn len(&self) -> usize {
        self.backend
            .list("")
            .map(|objects| {
                objects
                    .iter()
                    .filter(|object| Self::is_entry(&object.name))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // --- Leases -----------------------------------------------------------

    /// The directory lease files live in (`<root>/.leases`).
    pub fn lease_dir(&self) -> PathBuf {
        self.root.join(".leases")
    }

    /// The lease file path for `key` (whether or not it exists).
    pub fn lease_path(&self, key: Fingerprint) -> PathBuf {
        self.lease_dir().join(format!("{}.lease", key.to_hex()))
    }

    /// Attempts to acquire the lease on `key` for `owner` in run `run_id`.
    ///
    /// The fast path is an atomic create-new, so exactly one contender — a
    /// thread or a separate process — wins a fresh lease. When the lease file
    /// already exists, it is *stolen* (replaced via temp file + rename) if
    /// its holder looks dead: the lease has outlived its `ttl_ms` without
    /// being [`mark_done`](Self::mark_done)d, it is unreadable/corrupt, or it
    /// claims to be done while the store holds no entry (a crash between
    /// marking and persisting). Otherwise [`LeaseState::Busy`] is returned
    /// with the holder's metadata so the caller can poll.
    ///
    /// Stealing is best-effort: two stealers racing on the same expired lease
    /// can in principle both think they won for a moment, which at worst
    /// duplicates one deterministic simulation — never corrupts a result.
    ///
    /// # Errors
    /// Returns an error on a [`read_only`](Self::read_only) store, or if the
    /// lease directory/file cannot be written.
    pub fn try_lease(
        &self,
        key: Fingerprint,
        owner: &str,
        run_id: &str,
        ttl_ms: u64,
    ) -> io::Result<LeaseState> {
        if self.read_only {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "cannot lease work on a read-only store",
            ));
        }
        let name = Self::lease_name(key);
        let lease = LeaseInfo {
            owner: owner.to_string(),
            run_id: run_id.to_string(),
            acquired_unix_ms: self.now_ms(),
            ttl_ms,
            done: false,
        };
        let bytes = lease.to_json().to_string_compact();
        if self.backend.create_new(&name, bytes.as_bytes())? {
            return Ok(LeaseState::Acquired);
        }
        // Somebody holds (or held) it. Steal only from the dead.
        let holder = self.read_lease(key);
        let stealable = match &holder {
            None => true, // unreadable or vanished: treat as abandoned
            Some(info) if info.done => !self.contains(key),
            Some(info) => self.now_ms().saturating_sub(info.acquired_unix_ms) > info.ttl_ms,
        };
        if !stealable {
            return Ok(LeaseState::Busy(holder.expect("busy lease is readable")));
        }
        self.backend.put_atomic(&name, bytes.as_bytes())?;
        // Confirm the replacement race went our way.
        match self.read_lease(key) {
            Some(info) if info.owner == lease.owner && !info.done => {
                obs::global().inc("store.lease_steals", &[], 1);
                Ok(LeaseState::Stolen { previous: holder })
            }
            Some(info) => Ok(LeaseState::Busy(info)),
            None => Ok(LeaseState::Busy(LeaseInfo {
                owner: String::new(),
                run_id: String::new(),
                acquired_unix_ms: self.now_ms(),
                ttl_ms,
                done: false,
            })),
        }
    }

    /// Reads the lease on `key`, if present and parseable.
    pub fn read_lease(&self, key: Fingerprint) -> Option<LeaseInfo> {
        let bytes = self.backend.read(&Self::lease_name(key)).ok().flatten()?;
        let text = std::str::from_utf8(&bytes).ok()?;
        LeaseInfo::from_json(&json::parse(text).ok()?).ok()
    }

    /// Rewrites the lease on `key` as completed by `owner` during `run_id`.
    ///
    /// Done leases never expire; they are the runner's "this entry was
    /// simulated during run `run_id`" provenance marker (a later run with a
    /// different id treats the same entry as pre-existing, i.e. cached).
    pub fn mark_done(&self, key: Fingerprint, owner: &str, run_id: &str) -> io::Result<()> {
        if self.read_only {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "cannot mark leases on a read-only store",
            ));
        }
        let lease = LeaseInfo {
            owner: owner.to_string(),
            run_id: run_id.to_string(),
            acquired_unix_ms: self.now_ms(),
            ttl_ms: 0,
            done: true,
        };
        self.backend.put_atomic(
            &Self::lease_name(key),
            lease.to_json().to_string_compact().as_bytes(),
        )
    }

    /// Re-stamps the lease on `key` with a fresh acquisition time, proving
    /// `owner` is still alive so the TTL clock restarts. Returns whether the
    /// heartbeat landed: `false` means the caller no longer holds the lease
    /// (it was stolen, completed, or removed) and nothing was written — a
    /// heartbeat never revives a lost lease or touches another owner's.
    ///
    /// This is what lets the default TTL be much shorter than the longest
    /// simulation: the executing shard re-stamps every few seconds, so a
    /// long-running `Scale::Large` cell is never falsely stolen, while a
    /// crashed shard's lease still expires one TTL after its last beat.
    ///
    /// # Errors
    /// Returns an error on a [`read_only`](Self::read_only) store or if the
    /// replacement lease cannot be written.
    pub fn heartbeat_lease(
        &self,
        key: Fingerprint,
        owner: &str,
        run_id: &str,
        ttl_ms: u64,
    ) -> io::Result<bool> {
        if self.read_only {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "cannot heartbeat leases on a read-only store",
            ));
        }
        match self.read_lease(key) {
            Some(info) if info.owner == owner && info.run_id == run_id && !info.done => {}
            _ => return Ok(false),
        }
        let lease = LeaseInfo {
            owner: owner.to_string(),
            run_id: run_id.to_string(),
            acquired_unix_ms: self.now_ms(),
            ttl_ms,
            done: false,
        };
        self.backend.put_atomic(
            &Self::lease_name(key),
            lease.to_json().to_string_compact().as_bytes(),
        )?;
        obs::global().inc("store.lease_heartbeats", &[], 1);
        Ok(true)
    }

    /// Removes the lease on `key`, if any. Missing leases are not an error.
    ///
    /// Deliberately works on [`read_only`](Self::read_only) handles too —
    /// the one mutation they are allowed. A release only un-pins a *claim*
    /// (it can never corrupt result data), and refusing it would leave a
    /// claim taken before the handle was demoted pinned until its TTL
    /// expires, blocking every other shard on that unit for no reason.
    pub fn release_lease(&self, key: Fingerprint) {
        let _ = self.backend.remove(&Self::lease_name(key));
    }

    /// Whether the entry for `key` was simulated (and marked done) during
    /// run `run_id`, as opposed to pre-existing in the store. This is the
    /// provenance the sharded runner records in
    /// [`CellResult::cached`](crate::session::CellResult::cached).
    pub fn completed_during(&self, key: Fingerprint, run_id: &str) -> bool {
        self.read_lease(key)
            .is_some_and(|info| info.done && info.run_id == run_id)
    }

    // --- Eviction ---------------------------------------------------------

    /// Evicts least-recently-modified entries until the store's result
    /// entries fit in `max_bytes`, and sweeps stray temp files left by
    /// crashed writers ([`StoreBackend::sweep_temp`]). Lease files are
    /// untouched, and only temp files older than [`GC_TEMP_GRACE`] are
    /// swept — a younger one may belong to a live writer mid-`put`, and
    /// deleting it between its write and its rename would fail that writer
    /// rather than just waste a result.
    ///
    /// # Errors
    /// Returns an error on a [`read_only`](Self::read_only) store or when
    /// the backend cannot be listed; I/O failures on individual entries are
    /// skipped, not fatal (a vanished entry was evicted by someone else —
    /// fine).
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcSummary> {
        if self.read_only {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "cannot gc a read-only store",
            ));
        }
        // The litter sweep is advisory: a failure to clean droppings must
        // not block eviction.
        let _ = self.backend.sweep_temp(GC_TEMP_GRACE);
        let mut entries: Vec<ObjectMeta> = self
            .backend
            .list("")?
            .into_iter()
            .filter(|object| Self::is_entry(&object.name))
            .collect();
        let bytes_before: u64 = entries.iter().map(|object| object.len).sum();
        let entries_before = entries.len();
        // Oldest-modified first: those evict first.
        entries.sort_by(|a, b| {
            a.modified_unix_ms
                .cmp(&b.modified_unix_ms)
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut bytes_after = bytes_before;
        let mut evicted = 0usize;
        let mut bytes_evicted = 0u64;
        for object in &entries {
            if bytes_after <= max_bytes {
                break;
            }
            if self.backend.remove(&object.name).is_ok() {
                evicted += 1;
                bytes_evicted += object.len;
            }
            bytes_after -= object.len;
        }
        // GC runs out-of-band of any event stream, so the telemetry registry
        // is the only place evictions leave a trace for dashboards.
        let metrics = obs::global();
        metrics.inc("store.gc_runs", &[], 1);
        metrics.inc("store.gc_entries_evicted", &[], evicted as u64);
        metrics.inc("store.gc_bytes_evicted", &[], bytes_evicted);
        Ok(GcSummary {
            entries_before,
            entries_evicted: evicted,
            bytes_before,
            bytes_evicted,
            bytes_after: bytes_before - bytes_evicted,
        })
    }
}

/// How old a writer temp file must be before [`ResultStore::gc`] sweeps it.
/// A live `put` holds its temp file only between one write and one rename,
/// so anything this old was abandoned by a crash.
pub const GC_TEMP_GRACE: std::time::Duration = std::time::Duration::from_secs(600);

/// Milliseconds since the Unix epoch (lease timestamps).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The contents of one lease file: who holds (or completed) a work unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Opaque holder identity (run id + shard id + pid in practice).
    pub owner: String,
    /// The run this lease belongs to; done leases with a matching run id are
    /// "freshly simulated this run" provenance markers.
    pub run_id: String,
    /// Acquisition time, milliseconds since the Unix epoch.
    pub acquired_unix_ms: u64,
    /// Time after which a not-done lease may be stolen.
    pub ttl_ms: u64,
    /// Whether the unit completed (the store entry was persisted).
    pub done: bool,
}

impl ToJson for LeaseInfo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("owner", Json::Str(self.owner.clone())),
            ("run_id", Json::Str(self.run_id.clone())),
            ("acquired_unix_ms", Json::UInt(self.acquired_unix_ms)),
            ("ttl_ms", Json::UInt(self.ttl_ms)),
            ("done", Json::Bool(self.done)),
        ])
    }
}

impl FromJson for LeaseInfo {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LeaseInfo {
            owner: json
                .get("owner")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError::missing("owner"))?,
            run_id: json
                .get("run_id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError::missing("run_id"))?,
            acquired_unix_ms: json
                .get("acquired_unix_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("acquired_unix_ms"))?,
            ttl_ms: json
                .get("ttl_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("ttl_ms"))?,
            done: json
                .get("done")
                .and_then(Json::as_bool)
                .ok_or_else(|| JsonError::missing("done"))?,
        })
    }
}

/// The outcome of a [`ResultStore::try_lease`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseState {
    /// The caller now holds a fresh lease and should execute the unit.
    Acquired,
    /// The caller now holds the lease, taken from a holder that looked dead
    /// (expired, unreadable, or done-without-entry). Semantically identical
    /// to [`Acquired`](Self::Acquired) for the winner, but surfaced
    /// distinctly so the runner can report the steal in its event stream —
    /// steals used to vanish here, leaving dashboards unable to count them.
    Stolen {
        /// The dead holder's lease, when it was still readable.
        previous: Option<LeaseInfo>,
    },
    /// A live holder owns the lease; poll the store (or retry after its TTL).
    Busy(LeaseInfo),
}

/// What [`ResultStore::gc`] did, as printed (in JSON) by the `store_gc`
/// binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcSummary {
    /// Result entries present before eviction.
    pub entries_before: usize,
    /// Entries removed.
    pub entries_evicted: usize,
    /// Total entry bytes before eviction.
    pub bytes_before: u64,
    /// Bytes reclaimed.
    pub bytes_evicted: u64,
    /// Total entry bytes remaining.
    pub bytes_after: u64,
}

impl ToJson for GcSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("entries_before", Json::UInt(self.entries_before as u64)),
            ("entries_evicted", Json::UInt(self.entries_evicted as u64)),
            ("bytes_before", Json::UInt(self.bytes_before)),
            ("bytes_evicted", Json::UInt(self.bytes_evicted)),
            ("bytes_after", Json::UInt(self.bytes_after)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::simulate;
    use simkit::config::ProtectionConfig;
    use workloads::{spec_suite, Scale};

    fn temp_store(tag: &str) -> ResultStore {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        let dir = std::env::temp_dir().join(format!(
            "muontrap-store-test-{tag}-{}-{nanos}",
            std::process::id()
        ));
        ResultStore::open(dir).expect("temp store opens")
    }

    fn sample() -> (Workload, SystemConfig) {
        (
            spec_suite(Scale::Tiny).into_iter().next().unwrap(),
            SystemConfig::small_test(),
        )
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive_to_every_input() {
        let (w, cfg) = sample();
        let base = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        // Stability: same inputs, same fingerprint, across repeated derivations.
        assert_eq!(base, cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg));

        // Sensitivity: defense kind, machine config, workload parameters and
        // workload *code* must all change the key.
        assert_ne!(base, cell_fingerprint(&w, DefenseKind::SttSpectre, &cfg));
        assert_ne!(
            base,
            cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg.with_data_filter(64, 1))
        );
        let mut longer = w.clone();
        longer.cycle_budget += 1;
        assert_ne!(base, cell_fingerprint(&longer, DefenseKind::MuonTrap, &cfg));
        let mut renamed = w.clone();
        renamed.name.push('2');
        assert_ne!(
            base,
            cell_fingerprint(&renamed, DefenseKind::MuonTrap, &cfg)
        );
        let other_code = spec_suite(Scale::Tiny).into_iter().nth(1).unwrap();
        let mut impostor = other_code.clone();
        impostor.name = w.name.clone();
        impostor.cycle_budget = w.cycle_budget;
        assert_ne!(
            base,
            cell_fingerprint(&impostor, DefenseKind::MuonTrap, &cfg),
            "same name, different programs must not alias"
        );
    }

    #[test]
    fn custom_kinds_are_distinguished_by_their_protection_payload() {
        let (w, cfg) = sample();
        let a = DefenseKind::MuonTrapCustom(ProtectionConfig::insecure_l0());
        let b = DefenseKind::MuonTrapCustom(ProtectionConfig::muontrap_default());
        assert_eq!(a.label(), b.label());
        assert_ne!(cell_fingerprint(&w, a, &cfg), cell_fingerprint(&w, b, &cfg));
    }

    #[test]
    fn put_get_round_trips_a_result() {
        let store = temp_store("roundtrip");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        assert_eq!(store.get(key), None);
        assert!(!store.contains(key));

        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        store.put(key, &result).expect("put succeeds");
        assert_eq!(store.get(key), Some(result));
        assert!(store.contains(key));
        assert_eq!(store.len(), 1);
        // Overwrite is idempotent.
        store
            .put(key, &simulate(&w, DefenseKind::MuonTrap, &cfg))
            .unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn corrupted_entries_read_as_misses() {
        let store = temp_store("corrupt");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        store.put(key, &result).unwrap();

        // Truncated JSON.
        fs::write(store.entry_path(key), "{\"fingerprint\": \"dead").unwrap();
        assert_eq!(store.get(key), None);
        // Valid JSON, wrong schema.
        fs::write(store.entry_path(key), "[1, 2, 3]").unwrap();
        assert_eq!(store.get(key), None);
        // A complete entry filed under the wrong address.
        let other = Fingerprint(key.0 ^ 1);
        fs::create_dir_all(store.entry_path(other).parent().unwrap()).unwrap();
        fs::copy(store.entry_path(key), store.entry_path(other)).ok();
        store.put(key, &result).unwrap(); // restore the real entry
        fs::copy(store.entry_path(key), store.entry_path(other)).unwrap();
        assert_eq!(
            store.get(other),
            None,
            "entry with mismatched fingerprint must not be served"
        );
        // The intact entry still hits.
        assert_eq!(store.get(key), Some(result));
    }

    #[test]
    fn read_only_store_serves_hits_but_never_writes() {
        let store = temp_store("readonly");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        store.put(key, &result).unwrap();

        let ro = ResultStore::read_only(store.root());
        assert!(ro.is_read_only());
        assert_eq!(ro.get(key), Some(result.clone()), "hits are served");
        // Writes silently vanish.
        let other = cell_fingerprint(&w, DefenseKind::SttSpectre, &cfg);
        ro.put(other, &result).unwrap();
        assert_eq!(ro.get(other), None);
        assert_eq!(store.len(), 1);
        // Coordination surfaces are refused outright.
        assert!(ro.try_lease(other, "me", "run", 1000).is_err());
        assert!(ro.mark_done(other, "me", "run").is_err());
        assert!(ro.gc(0).is_err());
        // A read-only handle on a missing directory is an always-cold store.
        let ghost = ResultStore::read_only(store.root().join("nope"));
        assert_eq!(ghost.get(key), None);
        assert!(ghost.is_empty());
    }

    #[test]
    fn leases_acquire_once_then_report_busy_until_stolen_or_done() {
        let store = temp_store("lease");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);

        assert_eq!(
            store.try_lease(key, "a", "run1", 60_000).unwrap(),
            LeaseState::Acquired
        );
        // A second contender sees the live holder.
        match store.try_lease(key, "b", "run1", 60_000).unwrap() {
            LeaseState::Busy(info) => {
                assert_eq!(info.owner, "a");
                assert!(!info.done);
            }
            other => panic!("lease must not be double-acquired: {other:?}"),
        }
        // Completion turns it into a provenance marker...
        store
            .put(key, &simulate(&w, DefenseKind::MuonTrap, &cfg))
            .unwrap();
        store.mark_done(key, "a", "run1").unwrap();
        assert!(store.completed_during(key, "run1"));
        assert!(!store.completed_during(key, "run2"));
        // ...which is not stealable while the entry exists.
        match store.try_lease(key, "b", "run1", 60_000).unwrap() {
            LeaseState::Busy(info) => assert!(info.done),
            other => panic!("done lease with entry must stay busy: {other:?}"),
        }
        store.release_lease(key);
        assert_eq!(store.read_lease(key), None);
    }

    #[test]
    fn expired_and_orphaned_leases_are_stolen() {
        let store = temp_store("steal");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);

        // Expired: holder "dead" acquired with a 1 ms TTL and vanished.
        assert_eq!(
            store.try_lease(key, "dead", "run1", 1).unwrap(),
            LeaseState::Acquired
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
        match store.try_lease(key, "thief", "run1", 60_000).unwrap() {
            LeaseState::Stolen { previous } => {
                // The steal names its victim, so the runner can report it.
                assert_eq!(previous.expect("expired lease was readable").owner, "dead");
            }
            other => panic!("an expired lease must be reclaimable: {other:?}"),
        }
        assert_eq!(store.read_lease(key).unwrap().owner, "thief");

        // Orphaned: marked done but the crash lost the store entry.
        let other = Fingerprint(key.0 ^ 1);
        store.mark_done(other, "dead", "run1").unwrap();
        assert!(!store.contains(other));
        assert!(
            matches!(
                store.try_lease(other, "thief", "run1", 60_000).unwrap(),
                LeaseState::Stolen { previous: Some(_) }
            ),
            "a done lease without a store entry must be reclaimable"
        );

        // Corrupt lease files read as absent and are stolen (with no victim
        // metadata to attach).
        fs::write(store.lease_path(other), "not a lease").unwrap();
        assert_eq!(store.read_lease(other), None);
        assert_eq!(
            store.try_lease(other, "thief2", "run1", 60_000).unwrap(),
            LeaseState::Stolen { previous: None }
        );
    }

    #[test]
    fn heartbeat_restarts_the_ttl_clock() {
        let store = temp_store("heartbeat");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        assert_eq!(
            store.try_lease(key, "worker", "run1", 60).unwrap(),
            LeaseState::Acquired
        );
        // Keep beating past several TTLs: the lease must stay ours.
        for _ in 0..5 {
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(store.heartbeat_lease(key, "worker", "run1", 60).unwrap());
            match store.try_lease(key, "thief", "run1", 60).unwrap() {
                LeaseState::Busy(info) => assert_eq!(info.owner, "worker"),
                other => panic!("heartbeat must prevent the steal: {other:?}"),
            }
        }
        // Stop beating: one TTL later the thief wins.
        std::thread::sleep(std::time::Duration::from_millis(90));
        assert!(
            matches!(
                store.try_lease(key, "thief", "run1", 60_000).unwrap(),
                LeaseState::Stolen { .. }
            ),
            "a silent holder must still expire"
        );
    }

    #[test]
    fn heartbeat_never_touches_foreign_done_or_missing_leases() {
        let store = temp_store("heartbeat-foreign");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        // Missing lease: refused.
        assert!(!store.heartbeat_lease(key, "worker", "run1", 60).unwrap());
        // Foreign lease: refused, owner untouched.
        assert_eq!(
            store.try_lease(key, "other", "run1", 60_000).unwrap(),
            LeaseState::Acquired
        );
        assert!(!store.heartbeat_lease(key, "worker", "run1", 60).unwrap());
        assert_eq!(store.read_lease(key).unwrap().owner, "other");
        // Done marker: refused, provenance untouched.
        store.mark_done(key, "other", "run1").unwrap();
        assert!(!store.heartbeat_lease(key, "other", "run1", 60).unwrap());
        assert!(store.read_lease(key).unwrap().done);
        // Read-only stores refuse outright.
        let ro = ResultStore::read_only(store.root());
        assert!(ro.heartbeat_lease(key, "other", "run1", 60).is_err());
    }

    #[test]
    fn gc_evicts_least_recently_modified_entries_to_fit_the_cap() {
        let store = temp_store("gc");
        let (w, cfg) = sample();
        let suite = spec_suite(Scale::Tiny);
        let mut keys = Vec::new();
        for workload in suite.iter().take(3) {
            let key = cell_fingerprint(workload, DefenseKind::MuonTrap, &cfg);
            store
                .put(key, &simulate(&w, DefenseKind::MuonTrap, &cfg))
                .unwrap();
            keys.push(key);
            // Distinct mtimes so LRU order is well defined.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // A lease file must never be collected as an entry, and a fresh
        // temp file (a live writer mid-put) must survive the sweep.
        store.try_lease(keys[2], "x", "run", 60_000).unwrap();
        assert_eq!(store.len(), 3);
        let live_temp = store
            .entry_path(keys[1])
            .parent()
            .unwrap()
            .join(".tmp-live-writer");
        fs::write(&live_temp, "half an entry").unwrap();
        let entry_bytes = fs::metadata(store.entry_path(keys[0])).unwrap().len();

        // Cap at roughly two entries: the oldest one goes.
        let summary = store.gc(entry_bytes * 2 + entry_bytes / 2).unwrap();
        assert_eq!(summary.entries_before, 3);
        assert_eq!(summary.entries_evicted, 1);
        assert_eq!(
            summary.bytes_after,
            summary.bytes_before - summary.bytes_evicted
        );
        assert!(!store.contains(keys[0]), "oldest entry must evict first");
        assert!(store.contains(keys[1]) && store.contains(keys[2]));
        assert!(
            store.read_lease(keys[2]).is_some(),
            "gc must not touch leases"
        );
        assert!(
            live_temp.exists(),
            "a fresh temp file may be a live writer's"
        );

        // A zero cap empties the store; the summary round-trips as JSON.
        let wiped = store.gc(0).unwrap();
        assert_eq!(wiped.entries_before, 2);
        assert_eq!(wiped.bytes_after, 0);
        assert!(store.is_empty());
        let json = wiped.to_json();
        assert_eq!(json.get("entries_evicted").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn read_only_handles_may_release_but_never_claim_leases() {
        // The claim is never taken on a read-only handle — and a claim that
        // *was* taken (by a writable handle, or before a demotion) can still
        // be released through one, instead of pinning the unit until its
        // TTL runs out.
        let store = temp_store("ro-release");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        assert_eq!(
            store.try_lease(key, "claimant", "run1", 60_000).unwrap(),
            LeaseState::Acquired
        );
        let ro = ResultStore::read_only(store.root());
        assert!(ro.try_lease(key, "ro", "run1", 60_000).is_err());
        ro.release_lease(key);
        assert_eq!(
            store.read_lease(key),
            None,
            "a read-only handle must still be able to un-pin a claim"
        );
        // Releasing a missing lease stays a no-op.
        ro.release_lease(key);
        // The unit is immediately claimable again — no TTL wait.
        assert_eq!(
            store.try_lease(key, "next", "run1", 60_000).unwrap(),
            LeaseState::Acquired
        );
    }

    #[test]
    fn mem_backed_store_runs_the_full_protocol() {
        let store = ResultStore::in_memory();
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        assert!(store.is_empty());
        store.put(key, &result).unwrap();
        assert_eq!(store.get(key), Some(result));
        assert_eq!(store.len(), 1);
        // Clones share the backend; fresh in-memory stores do not.
        assert_eq!(store.clone().len(), 1);
        assert!(ResultStore::in_memory().is_empty());
        // The lease lifecycle works unchanged.
        assert_eq!(
            store.try_lease(key, "a", "mem-run", 60_000).unwrap(),
            LeaseState::Acquired
        );
        store.mark_done(key, "a", "mem-run").unwrap();
        assert!(store.completed_during(key, "mem-run"));
        store.release_lease(key);
        assert_eq!(store.read_lease(key), None);
    }

    #[test]
    fn lease_expiry_follows_the_injected_clock() {
        let clock = Arc::new(AtomicU64::new(1_000_000));
        let store = ResultStore::in_memory().with_clock(Arc::clone(&clock));
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        assert_eq!(
            store.try_lease(key, "holder", "run1", 500).unwrap(),
            LeaseState::Acquired
        );
        // Wall time may pass; the injected clock has not, so no steal.
        assert!(matches!(
            store.try_lease(key, "thief", "run1", 500).unwrap(),
            LeaseState::Busy(_)
        ));
        // A heartbeat restamps at the injected time.
        clock.fetch_add(400, Ordering::Relaxed);
        assert!(store.heartbeat_lease(key, "holder", "run1", 500).unwrap());
        clock.fetch_add(400, Ordering::Relaxed);
        assert!(
            matches!(
                store.try_lease(key, "thief", "run1", 500).unwrap(),
                LeaseState::Busy(_)
            ),
            "the beat restarted the TTL clock"
        );
        // One TTL past the last beat, the steal lands — with no sleeps.
        clock.fetch_add(200, Ordering::Relaxed);
        match store.try_lease(key, "thief", "run1", 500).unwrap() {
            LeaseState::Stolen { previous } => {
                assert_eq!(previous.unwrap().owner, "holder");
            }
            other => panic!("clock-expired lease must be stolen: {other:?}"),
        }
    }

    /// Plants `len` raw bytes at `key`'s entry name, bypassing `put` — the
    /// write order defines the MemBackend modified order GC evicts in.
    fn plant_entry(store: &ResultStore, key: Fingerprint, len: usize) {
        store
            .backend()
            .put_atomic(&ResultStore::entry_name(key), &vec![b'x'; len])
            .unwrap();
    }

    #[test]
    fn gc_over_mem_backend_evicts_in_write_order_with_exact_accounting() {
        let store = ResultStore::in_memory();
        let keys: Vec<Fingerprint> = (1u128..=4).map(Fingerprint).collect();
        for (i, key) in keys.iter().enumerate() {
            plant_entry(&store, *key, 100 * (i + 1));
        }
        // keys[1] is *corrupt* (never decodable) — GC must still account and
        // evict it by age like any other entry, not skip or trip over it.
        assert_eq!(store.get(keys[1]), None);
        assert_eq!(store.len(), 4);

        // Cap of 750 over 100+200+300+400 bytes: the two oldest go.
        let summary = store.gc(750).unwrap();
        assert_eq!(summary.entries_before, 4);
        assert_eq!(summary.bytes_before, 1000);
        assert_eq!(summary.entries_evicted, 2);
        assert_eq!(summary.bytes_evicted, 300, "oldest two: 100 + 200 bytes");
        assert_eq!(summary.bytes_after, 700);
        assert_eq!(store.len(), 2);
        let survivors = store.backend().list("").unwrap();
        assert!(survivors
            .iter()
            .all(|o| o.name != ResultStore::entry_name(keys[0])
                && o.name != ResultStore::entry_name(keys[1])));

        // Re-writing an entry refreshes its age: now keys[3] is oldest.
        plant_entry(&store, keys[2], 300);
        let summary = store.gc(350).unwrap();
        assert_eq!(summary.entries_evicted, 1);
        assert_eq!(summary.bytes_evicted, 400, "refreshed entry must survive");
    }

    #[test]
    fn gc_zero_cap_empties_the_store_but_never_touches_leases() {
        let store = ResultStore::in_memory();
        let keys: Vec<Fingerprint> = (1u128..=3).map(Fingerprint).collect();
        for key in &keys {
            plant_entry(&store, *key, 64);
        }
        store.try_lease(keys[0], "holder", "run", 60_000).unwrap();
        let summary = store.gc(0).unwrap();
        assert_eq!(summary.entries_before, 3);
        assert_eq!(summary.entries_evicted, 3);
        assert_eq!(summary.bytes_evicted, summary.bytes_before);
        assert_eq!(summary.bytes_after, 0);
        assert!(store.is_empty());
        assert_eq!(
            store.read_lease(keys[0]).unwrap().owner,
            "holder",
            "a zero cap still spares the coordination state"
        );
    }

    #[test]
    fn gc_with_concurrent_writers_stays_consistent() {
        let store = ResultStore::in_memory();
        std::thread::scope(|scope| {
            for t in 0u128..4 {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0u128..25 {
                        plant_entry(&store, Fingerprint((t << 64) | i), 50);
                    }
                });
            }
            let store = store.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    let summary = store.gc(200).unwrap();
                    // The books must balance on every pass, even racing
                    // writers: what was seen is either evicted or left.
                    assert_eq!(
                        summary.bytes_after,
                        summary.bytes_before - summary.bytes_evicted
                    );
                    std::thread::yield_now();
                }
            });
        });
        let summary = store.gc(200).unwrap();
        assert!(summary.bytes_after <= 200, "the cap holds once writes stop");
        assert!(store.len() <= 4);
    }

    #[test]
    fn concurrent_writers_never_expose_partial_entries() {
        let store = temp_store("parallel");
        let (w, cfg) = sample();
        let key = cell_fingerprint(&w, DefenseKind::MuonTrap, &cfg);
        let result = simulate(&w, DefenseKind::MuonTrap, &cfg);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        store.put(key, &result).unwrap();
                        if let Some(read) = store.get(key) {
                            assert_eq!(read, result);
                        }
                    }
                });
            }
        });
        assert_eq!(store.get(key), Some(result));
        assert_eq!(store.len(), 1, "temp files must not linger as entries");
    }
}
