//! Full-system assembly: processes, scheduling, the experiment session and
//! the persistent result store.
//!
//! This crate plays the role gem5's full-system mode plus the run scripts play
//! in the paper: it owns the cores, the (defended) memory model, the software
//! threads and the OS-lite behaviour that MuonTrap's protection hinges on —
//! protection-domain switches. It exposes three layers:
//!
//! * [`system::System`] — a multicore machine onto which processes and their
//!   threads are loaded, scheduled round-robin with a time quantum, and run to
//!   completion. Syscalls, sandbox markers and context switches are forwarded
//!   to the memory model as [`ooo_core::DomainSwitch`] events so every defense
//!   sees exactly the same OS behaviour.
//! * [`session`] — the measurement harness used by the figure binaries and
//!   benches: declare a (workloads × defenses) grid on an
//!   [`session::ExperimentSession`], run it in parallel with shared
//!   `Unprotected` baselines, and get a JSON-serialisable
//!   [`session::RunReport`] back.
//! * [`store`] — a content-addressed, on-disk store of raw simulation
//!   results, keyed by a fingerprint of (workload, defense, machine,
//!   simulator version). Attached to a session via
//!   [`session::ExperimentSession::with_store`], it makes re-running an
//!   unchanged grid free: every cell is a cache hit and zero simulations
//!   execute.
//! * [`runner`] — the sharded, work-stealing execution subsystem: a session
//!   is *planned* into fingerprint-keyed [`runner::WorkUnit`]s, units are
//!   *claimed* through expiring lease files under the store directory (so
//!   any number of processes cooperate on one grid and crashed shards'
//!   work is stolen), results *stream* as JSONL [`runner::RunEvent`]s, and
//!   [`runner::merge_events`] folds any set of event logs back into the
//!   deterministic [`session::RunReport`]. `ExperimentSession::run` itself
//!   is the single-process instantiation of this pipeline.
//!
//! The original free-function experiment harness (`simsys::experiment`) has
//! been removed; [`session::ExperimentSession`] and the raw
//! [`session::simulate`] primitive replace it.

#![forbid(unsafe_code)]

pub mod runner;
pub mod session;
pub mod store;
pub mod system;

pub use runner::{
    merge_events, merge_events_lenient, Plan, RunEvent, ShardOptions, ShardSummary, UnitKind,
    WorkUnit,
};
pub use session::{CellResult, ExperimentResult, ExperimentSession, RunReport};
pub use store::ResultStore;
pub use system::{System, SystemReport};
