//! Full-system assembly: processes, scheduling and the experiment runner.
//!
//! This crate plays the role gem5's full-system mode plus the run scripts play
//! in the paper: it owns the cores, the (defended) memory model, the software
//! threads and the OS-lite behaviour that MuonTrap's protection hinges on —
//! protection-domain switches. It exposes two layers:
//!
//! * [`system::System`] — a multicore machine onto which processes and their
//!   threads are loaded, scheduled round-robin with a time quantum, and run to
//!   completion. Syscalls, sandbox markers and context switches are forwarded
//!   to the memory model as [`ooo_core::DomainSwitch`] events so every defense
//!   sees exactly the same OS behaviour.
//! * [`experiment`] — the measurement harness used by the figure binaries and
//!   benches: run a workload under a [`defenses::DefenseKind`], normalise it
//!   to the unprotected baseline, and sweep configuration parameters.

pub mod experiment;
pub mod system;

pub use experiment::{normalized_time, run_workload, ExperimentResult};
pub use system::{System, SystemReport};
