//! Full-system assembly: processes, scheduling and the experiment session.
//!
//! This crate plays the role gem5's full-system mode plus the run scripts play
//! in the paper: it owns the cores, the (defended) memory model, the software
//! threads and the OS-lite behaviour that MuonTrap's protection hinges on —
//! protection-domain switches. It exposes three layers:
//!
//! * [`system::System`] — a multicore machine onto which processes and their
//!   threads are loaded, scheduled round-robin with a time quantum, and run to
//!   completion. Syscalls, sandbox markers and context switches are forwarded
//!   to the memory model as [`ooo_core::DomainSwitch`] events so every defense
//!   sees exactly the same OS behaviour.
//! * [`session`] — the measurement harness used by the figure binaries and
//!   benches: declare a (workloads × defenses) grid on an
//!   [`session::ExperimentSession`], run it in parallel with shared
//!   `Unprotected` baselines, and get a JSON-serialisable
//!   [`session::RunReport`] back.
//! * [`experiment`] — the original free-function harness, now deprecated
//!   shims over the session kept so older examples and tests migrate
//!   incrementally.

pub mod experiment;
pub mod session;
pub mod system;

pub use experiment::ExperimentResult;
pub use session::{CellResult, ExperimentSession, RunReport};
pub use system::{System, SystemReport};
