//! The experiment runner used by every figure harness.
//!
//! The paper's figures all have the same shape: run a workload under several
//! memory-system configurations and report execution time normalised to the
//! unprotected baseline. This module provides exactly that, plus parameter
//! sweeps (filter-cache size/associativity for figures 5 and 6) and access to
//! raw statistics (invalidation-broadcast rates for figure 7).

use simkit::config::SystemConfig;
use simkit::stats::StatSet;

use defenses::{build_defense, DefenseKind};
use workloads::Workload;

use crate::system::System;

/// Result of running one workload under one configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Workload name.
    pub workload: String,
    /// Defense label.
    pub defense: String,
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Whether the run finished within its cycle budget.
    pub completed: bool,
    /// All statistics collected from the cores and the memory model.
    pub stats: StatSet,
}

impl ExperimentResult {
    /// Instructions per cycle for this run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// Runs `workload` under `kind` on a machine described by `config`.
pub fn run_workload(workload: &Workload, kind: DefenseKind, config: &SystemConfig) -> ExperimentResult {
    let memory_model = build_defense(kind, config);
    let mut system = System::new(config, memory_model);
    system.load_workload(&workload.thread_programs, workload.shared_memory);
    let report = system.run(workload.cycle_budget);
    ExperimentResult {
        workload: workload.name.clone(),
        defense: kind.label().to_string(),
        cycles: report.cycles,
        committed: report.committed,
        completed: report.completed,
        stats: report.stats,
    }
}

/// Runs `workload` under `kind` and under the unprotected baseline, returning
/// execution time normalised to the baseline (1.0 = identical, >1.0 = slower,
/// <1.0 = faster). This is the y-axis of figures 3, 4, 5, 6, 8 and 9.
pub fn normalized_time(workload: &Workload, kind: DefenseKind, config: &SystemConfig) -> f64 {
    let baseline = run_workload(workload, DefenseKind::Unprotected, config);
    let protected = run_workload(workload, kind, config);
    if baseline.cycles == 0 {
        return 1.0;
    }
    protected.cycles as f64 / baseline.cycles as f64
}

/// Runs `workload` under every configuration in `kinds` and returns
/// `(label, normalised execution time)` pairs, sharing one baseline run.
pub fn normalized_times(
    workload: &Workload,
    kinds: &[DefenseKind],
    config: &SystemConfig,
) -> Vec<(String, f64)> {
    let baseline = run_workload(workload, DefenseKind::Unprotected, config);
    kinds
        .iter()
        .map(|kind| {
            let result = run_workload(workload, *kind, config);
            let normalised = if baseline.cycles == 0 {
                1.0
            } else {
                result.cycles as f64 / baseline.cycles as f64
            };
            (kind.label().to_string(), normalised)
        })
        .collect()
}

/// Returns a copy of `config` with the data filter cache resized to
/// `size_bytes` bytes and `ways` ways (used by the figure 5/6 sweeps).
pub fn with_filter_cache(config: &SystemConfig, size_bytes: u64, ways: usize) -> SystemConfig {
    let mut cfg = config.clone();
    cfg.data_filter = simkit::config::CacheConfig::new(
        size_bytes,
        ways,
        cfg.data_filter.hit_latency,
        cfg.data_filter.mshrs,
    );
    cfg
}

/// The write/invalidate-broadcast measurement behind figure 7: runs the
/// workload under full MuonTrap and returns the fraction of committed stores
/// that triggered a filter-cache invalidation broadcast.
pub fn write_invalidate_rate(workload: &Workload, config: &SystemConfig) -> f64 {
    let result = run_workload(workload, DefenseKind::MuonTrap, config);
    let stores = result.stats.counter("muontrap.committed_stores");
    let broadcasts = result.stats.counter("muontrap.store_upgrade_broadcasts");
    if stores == 0 {
        0.0
    } else {
        broadcasts as f64 / stores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{parsec_suite, spec_suite, Scale};

    fn quick_config() -> SystemConfig {
        SystemConfig::small_test()
    }

    #[test]
    fn run_workload_produces_complete_results() {
        let w = &spec_suite(Scale::Tiny)[20]; // sjeng (branchy)
        let r = run_workload(w, DefenseKind::MuonTrap, &quick_config());
        assert!(r.completed);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.defense, "muontrap");
        assert_eq!(r.workload, "sjeng");
    }

    #[test]
    fn normalized_time_is_close_to_one_for_muontrap() {
        // MuonTrap's whole point: overheads stay small. On a tiny kernel we
        // only sanity-check the ratio is in a plausible band.
        let w = &spec_suite(Scale::Tiny)[4]; // calculix (compute bound)
        let t = normalized_time(w, DefenseKind::MuonTrap, &quick_config());
        assert!(t > 0.5 && t < 2.0, "normalised time {t} outside plausible band");
    }

    #[test]
    fn normalized_times_shares_the_baseline() {
        let w = &spec_suite(Scale::Tiny)[0];
        let results = normalized_times(
            w,
            &[DefenseKind::MuonTrap, DefenseKind::SttSpectre],
            &quick_config(),
        );
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn filter_cache_sweep_produces_distinct_configs() {
        let cfg = quick_config();
        let small = with_filter_cache(&cfg, 64, 1);
        let large = with_filter_cache(&cfg, 4096, 64);
        assert_eq!(small.data_filter.size_bytes, 64);
        assert_eq!(large.data_filter.size_bytes, 4096);
        assert!(small.validate().is_ok());
        assert!(large.validate().is_ok());
    }

    #[test]
    fn write_invalidate_rate_is_a_fraction() {
        let w = &parsec_suite(Scale::Tiny, 2)[3]; // fluidanimate (lock based)
        let mut cfg = quick_config();
        cfg.cores = 2;
        let rate = write_invalidate_rate(w, &cfg);
        assert!((0.0..=1.0).contains(&rate), "rate {rate} must be a fraction");
    }
}
