//! Deprecated free-function experiment harness.
//!
//! This module was the original measurement API: five free functions, each
//! re-simulating the unprotected baseline on every call. It is superseded by
//! [`crate::session::ExperimentSession`], which memoizes baselines per
//! (workload, machine) pair and runs grid cells in parallel. The functions
//! here remain as thin shims over the session so existing examples and tests
//! keep working while they migrate; they will be removed once nothing in the
//! workspace calls them.
//!
//! Migration map:
//!
//! | Old call | Replacement |
//! |----------|-------------|
//! | [`run_workload`] | [`simulate`](crate::session::simulate) (one raw run, no baseline) |
//! | [`normalized_time`] | [`ExperimentSession::run`](crate::session::ExperimentSession::run) + [`CellResult::normalized_time`](crate::session::CellResult::normalized_time) |
//! | [`normalized_times`] | a multi-defense session grid |
//! | [`with_filter_cache`] | [`SystemConfig::with_data_filter`](simkit::config::SystemConfig::with_data_filter) |
//! | [`write_invalidate_rate`] | a MuonTrap session cell's `muontrap.*` counters |
//!
//! The shims route through the session's **process-wide baseline cache**, so
//! even a legacy loop calling [`normalized_time`] per sweep point (the shape
//! that motivated the redesign — it used to re-run `Unprotected` every call)
//! now pays for each distinct baseline once per process.

use simkit::config::SystemConfig;
use simkit::stats::StatSet;

use defenses::DefenseKind;
use workloads::Workload;

use crate::session::ExperimentSession;

/// Result of running one workload under one configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Workload name.
    pub workload: String,
    /// Defense label.
    pub defense: String,
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Whether the run finished within its cycle budget.
    pub completed: bool,
    /// All statistics collected from the cores and the memory model.
    pub stats: StatSet,
}

impl ExperimentResult {
    /// Instructions per cycle for this run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// Builds the one-cell session the normalising shims funnel through.
fn one_cell_session(
    workload: &Workload,
    kind: DefenseKind,
    config: &SystemConfig,
) -> ExperimentSession {
    ExperimentSession::new()
        .workloads([workload.clone()])
        .defenses([kind])
        .config(config.clone())
        .threads(1)
        .process_cache(true)
}

/// Runs `workload` under `kind` on a machine described by `config`.
///
/// Exactly one simulation: no baseline is run, matching this function's
/// original contract.
#[deprecated(
    note = "use simsys::session::simulate for one raw run, or ExperimentSession for grids"
)]
pub fn run_workload(
    workload: &Workload,
    kind: DefenseKind,
    config: &SystemConfig,
) -> ExperimentResult {
    crate::session::simulate(workload, kind, config)
}

/// Runs `workload` under `kind` and under the unprotected baseline, returning
/// execution time normalised to the baseline (1.0 = identical, >1.0 = slower,
/// <1.0 = faster). This was the y-axis of figures 3, 4, 5, 6, 8 and 9.
#[deprecated(note = "use simsys::session::ExperimentSession and read CellResult::normalized_time")]
pub fn normalized_time(workload: &Workload, kind: DefenseKind, config: &SystemConfig) -> f64 {
    one_cell_session(workload, kind, config).run().cells[0].normalized_time
}

/// Runs `workload` under every configuration in `kinds` and returns
/// `(label, normalised execution time)` pairs, sharing one baseline run.
#[deprecated(note = "use a multi-defense simsys::session::ExperimentSession grid")]
pub fn normalized_times(
    workload: &Workload,
    kinds: &[DefenseKind],
    config: &SystemConfig,
) -> Vec<(String, f64)> {
    ExperimentSession::new()
        .workloads([workload.clone()])
        .defenses(kinds.iter().copied())
        .config(config.clone())
        .threads(1)
        .process_cache(true)
        .run()
        .cells
        .into_iter()
        .map(|cell| (cell.column, cell.normalized_time))
        .collect()
}

/// Returns a copy of `config` with the data filter cache resized to
/// `size_bytes` bytes and `ways` ways (used by the figure 5/6 sweeps).
#[deprecated(note = "use SystemConfig::with_data_filter")]
pub fn with_filter_cache(config: &SystemConfig, size_bytes: u64, ways: usize) -> SystemConfig {
    config.with_data_filter(size_bytes, ways)
}

/// The write/invalidate-broadcast measurement behind figure 7: runs the
/// workload under full MuonTrap and returns the fraction of committed stores
/// that triggered a filter-cache invalidation broadcast.
#[deprecated(note = "read the muontrap.* counters from a session cell's stats instead")]
pub fn write_invalidate_rate(workload: &Workload, config: &SystemConfig) -> f64 {
    let report = one_cell_session(workload, DefenseKind::MuonTrap, config).run();
    let stats = &report.cells[0].stats;
    let stores = stats.counter("muontrap.committed_stores");
    let broadcasts = stats.counter("muontrap.store_upgrade_broadcasts");
    if stores == 0 {
        0.0
    } else {
        broadcasts as f64 / stores as f64
    }
}

// The shims are exercised on purpose: they must keep producing the same
// numbers as the session until they are removed.
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{parsec_suite, spec_suite, Scale};

    fn quick_config() -> SystemConfig {
        SystemConfig::small_test()
    }

    #[test]
    fn run_workload_produces_complete_results() {
        let w = &spec_suite(Scale::Tiny)[20]; // sjeng (branchy)
        let r = run_workload(w, DefenseKind::MuonTrap, &quick_config());
        assert!(r.completed);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.defense, "muontrap");
        assert_eq!(r.workload, "sjeng");
    }

    #[test]
    fn normalized_time_is_close_to_one_for_muontrap() {
        // MuonTrap's whole point: overheads stay small. On a tiny kernel we
        // only sanity-check the ratio is in a plausible band.
        let w = &spec_suite(Scale::Tiny)[4]; // calculix (compute bound)
        let t = normalized_time(w, DefenseKind::MuonTrap, &quick_config());
        assert!(
            t > 0.5 && t < 2.0,
            "normalised time {t} outside plausible band"
        );
    }

    #[test]
    fn normalized_times_shares_the_baseline() {
        let w = &spec_suite(Scale::Tiny)[0];
        let results = normalized_times(
            w,
            &[DefenseKind::MuonTrap, DefenseKind::SttSpectre],
            &quick_config(),
        );
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn shims_agree_with_a_direct_session_run() {
        let w = &spec_suite(Scale::Tiny)[1];
        let cfg = quick_config();
        let via_shim = normalized_time(w, DefenseKind::MuonTrap, &cfg);
        let via_session = ExperimentSession::new()
            .workloads([w.clone()])
            .defenses([DefenseKind::MuonTrap])
            .config(cfg)
            .run()
            .cells[0]
            .normalized_time;
        assert_eq!(via_shim, via_session);
    }

    #[test]
    fn filter_cache_sweep_produces_distinct_configs() {
        let cfg = quick_config();
        let small = with_filter_cache(&cfg, 64, 1);
        let large = with_filter_cache(&cfg, 4096, 64);
        assert_eq!(small.data_filter.size_bytes, 64);
        assert_eq!(large.data_filter.size_bytes, 4096);
        assert!(small.validate().is_ok());
        assert!(large.validate().is_ok());
    }

    #[test]
    fn write_invalidate_rate_is_a_fraction() {
        let w = &parsec_suite(Scale::Tiny, 2)[3]; // fluidanimate (lock based)
        let mut cfg = quick_config();
        cfg.cores = 2;
        let rate = write_invalidate_rate(w, &cfg);
        assert!(
            (0.0..=1.0).contains(&rate),
            "rate {rate} must be a fraction"
        );
    }
}
