//! The sharded, work-stealing execution subsystem behind every experiment.
//!
//! [`ExperimentSession::run`](crate::session::ExperimentSession::run) used to
//! be a single-process collect-then-report loop; this module splits it into
//! five composable stages so the same grid can run on one thread, one thread
//! pool, or any number of cooperating processes sharing a store directory:
//!
//! 1. **Plan** — [`ExperimentSession::plan`](crate::session::ExperimentSession::plan)
//!    enumerates every baseline and grid cell as a self-describing,
//!    fingerprint-keyed [`WorkUnit`]. Planning is pure and host-independent
//!    (it reuses [`crate::store::cell_fingerprint`]), so two processes given the
//!    same session description derive byte-identical plans and agree on every
//!    unit's identity without talking to each other.
//! 2. **Claim** — a shard takes a unit by acquiring its lease file under the
//!    store directory ([`ResultStore::try_lease`]): an atomic create-new, so
//!    threads and separate processes contend safely. Leases expire, so a
//!    crashed shard's units are *stolen* and re-run by whoever finds them —
//!    work-stealing across processes, not just threads.
//! 3. **Execute** — claimed units simulate and persist their result in the
//!    content-addressed store; units another shard already finished are
//!    recognised by their store entry and served without simulating.
//! 4. **Stream** — every unit resolution is emitted immediately as one
//!    [`RunEvent`] line of JSONL (`--events FILE` on the binaries), so
//!    progress is observable mid-run and a killed shard's completed work
//!    survives in both its event log and the store.
//! 5. **Merge** — [`merge_events`] folds any number of event streams back
//!    into the deterministic [`RunReport`] the old collect-then-report path
//!    produced, deduplicating by unit and preferring execution provenance
//!    over cache provenance.
//!
//! The local path ([`execute_local`], what `run()` uses) and the sharded path
//! ([`execute_shard`], what `run_sharded()` and the `shard` binary use) emit
//! the same events and share [`merge_events`], so there is exactly one way a
//! report is assembled.
//!
//! # Freshness provenance
//!
//! [`CellResult::cached`] must mean "served from the store instead of being
//! simulated *during this run*" even when the simulating shard was a
//! different process. Shards therefore share a `run_id`: completing a unit
//! rewrites its lease as a done marker carrying that id
//! ([`ResultStore::mark_done`]), and a shard that finds a store entry checks
//! [`ResultStore::completed_during`] to decide whether the entry is fresh
//! (another shard of this run computed it — not cached) or pre-existing
//! (cached). A later run with a new `run_id` sees the old markers as stale
//! and correctly reports a fully warm store.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use simkit::config::SystemConfig;
use simkit::fingerprint::Fingerprint;
use simkit::json::{self, FromJson, Json, JsonError, ToJson};

use defenses::DefenseKind;
use workloads::Workload;

use crate::session::{self, CellResult, ExperimentResult, RunReport};
use crate::store::{LeaseState, ResultStore};

/// Which phase of the grid a [`WorkUnit`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitKind {
    /// An `Unprotected` run on a canonical baseline machine; its result is
    /// the normalisation denominator for one or more cells.
    Baseline,
    /// One grid cell (workload × column).
    Cell,
}

impl UnitKind {
    /// Stable lower-case name used in event logs.
    pub fn name(self) -> &'static str {
        match self {
            UnitKind::Baseline => "baseline",
            UnitKind::Cell => "cell",
        }
    }

    fn parse(text: &str) -> Option<UnitKind> {
        match text {
            "baseline" => Some(UnitKind::Baseline),
            "cell" => Some(UnitKind::Cell),
            _ => None,
        }
    }
}

/// One self-describing, fingerprint-keyed unit of work.
///
/// A unit carries everything needed to execute it on any host — the full
/// workload (programs included), defense and machine — plus its store
/// fingerprint, so shards agree on identity by construction.
#[derive(Debug, Clone)]
pub struct WorkUnit {
    /// Baseline or cell.
    pub kind: UnitKind,
    /// Position within this kind's list in the [`Plan`] (cells: workload-major
    /// grid order, `w * columns + c`).
    pub index: usize,
    /// The workload to simulate.
    pub workload: Workload,
    /// The defense to run it under (`Unprotected` for baselines).
    pub defense: DefenseKind,
    /// The machine to run on (for baselines, the canonical baseline machine).
    pub config: SystemConfig,
    /// The store fingerprint of this unit's raw result.
    pub fingerprint: Fingerprint,
    /// Cells only: the column label this cell reports under.
    pub column: Option<String>,
    /// Cells only: the fingerprint of the baseline that normalises this cell.
    pub baseline: Option<Fingerprint>,
    /// Cells only: this cell *is* its baseline (an explicit `Unprotected`
    /// column) — it is derived from the baseline result, never simulated.
    pub copies_baseline: bool,
}

/// The pure, host-independent execution plan of one experiment grid.
///
/// Derived by [`ExperimentSession::plan`](crate::session::ExperimentSession::plan);
/// two processes given the same session derive the same plan, which is what
/// lets shards coordinate through nothing but the store directory.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Report title.
    pub title: String,
    /// Workload scale metadata, if recorded.
    pub scale: Option<String>,
    /// The thread count recorded in the merged report (the session's).
    pub threads: usize,
    /// Workload names, grid order.
    pub workloads: Vec<String>,
    /// Column labels, grid order.
    pub columns: Vec<String>,
    /// Baseline units. With memoization (the default) one per distinct
    /// (workload, baseline machine); without, one per cell.
    pub baselines: Vec<WorkUnit>,
    /// Cell units, workload-major grid order.
    pub cells: Vec<WorkUnit>,
    /// Whether baselines were deduplicated (see
    /// [`ExperimentSession::memoize`](crate::session::ExperimentSession::memoize)).
    pub memoized: bool,
}

impl Plan {
    /// Number of simulations a cold, duplicate-free execution performs:
    /// every baseline unit plus every non-derived cell.
    pub fn expected_cold_sims(&self) -> usize {
        self.baselines.len() + self.cells.iter().filter(|c| !c.copies_baseline).count()
    }

    /// The baseline unit holding `fingerprint`, if any (first match).
    pub fn baseline_by_fingerprint(&self, fingerprint: Fingerprint) -> Option<&WorkUnit> {
        self.baselines.iter().find(|u| u.fingerprint == fingerprint)
    }
}

/// One line of the streaming JSONL event log.
///
/// `Completed` means a simulation was executed for the unit (it counts
/// toward [`RunReport::sims_executed`]); `Cached` means the unit resolved
/// without simulating — a store hit, a process-cache hit, or a derived
/// `Unprotected` cell. Cell-kind events carry the full [`CellResult`] so the
/// merger can rebuild the report from logs alone.
///
/// Every variant carries an optional epoch-anchored monotonic timestamp
/// (`t_ms`, [`obs::now_ms`]), omitted from the JSON when absent — logs
/// written before timestamps existed still parse, and `merge --watch` uses
/// the stamps for rates, ETAs and stalled-shard detection.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// A shard acquired the unit's lease and is about to simulate it.
    Claimed {
        /// Shard id within the run.
        shard: usize,
        /// Unit kind.
        kind: UnitKind,
        /// Unit index within its kind's list.
        index: usize,
        /// The unit's store fingerprint.
        fingerprint: Fingerprint,
        /// Whether this claim *stole* an expired lease from a crashed or
        /// stalled holder (serialised only when `true`, so steal-free logs
        /// keep their historical byte shape).
        stolen: bool,
        /// Emission time, epoch-anchored monotonic milliseconds.
        t_ms: Option<u64>,
    },
    /// The unit was simulated by this shard during this run.
    Completed {
        /// Shard id within the run.
        shard: usize,
        /// Unit kind.
        kind: UnitKind,
        /// Unit index within its kind's list.
        index: usize,
        /// The unit's store fingerprint.
        fingerprint: Fingerprint,
        /// The finished cell (cells only; `None` for baselines).
        cell: Option<CellResult>,
        /// Emission time, epoch-anchored monotonic milliseconds.
        t_ms: Option<u64>,
        /// Wall-clock milliseconds the simulation itself took (serialised
        /// only when present, so logs without it keep their byte shape).
        /// Feeds the per-shard latency percentiles on the watch dashboard.
        sim_ms: Option<u64>,
    },
    /// The unit resolved without a simulation.
    Cached {
        /// Shard id within the run.
        shard: usize,
        /// Unit kind.
        kind: UnitKind,
        /// Unit index within its kind's list.
        index: usize,
        /// The unit's store fingerprint.
        fingerprint: Fingerprint,
        /// The finished cell (cells only; `None` for baselines).
        cell: Option<CellResult>,
        /// Emission time, epoch-anchored monotonic milliseconds.
        t_ms: Option<u64>,
    },
    /// A liveness beat from a still-working shard, emitted every
    /// [`ShardOptions::heartbeat_ms`] while the shard walks the plan. A
    /// watcher that stops seeing beats (and resolutions) from a shard for
    /// longer than the heartbeat interval plus slack knows the shard is
    /// stalled or dead — without waiting a full lease TTL.
    Heartbeat {
        /// Shard id within the run.
        shard: usize,
        /// Units this shard has resolved so far (executed + cached).
        units_done: usize,
        /// Units in the whole plan (baselines + cells).
        units_total: usize,
        /// Emission time, epoch-anchored monotonic milliseconds.
        t_ms: Option<u64>,
    },
    /// A shard finished its pass over the plan.
    ShardDone {
        /// Shard id within the run.
        shard: usize,
        /// Simulations this shard executed.
        sims_executed: usize,
        /// This shard's wall clock, milliseconds.
        wall_clock_ms: f64,
        /// Emission time, epoch-anchored monotonic milliseconds.
        t_ms: Option<u64>,
    },
}

impl RunEvent {
    /// The `(kind, index)` unit identity, for every variant but `ShardDone`
    /// and `Heartbeat`.
    pub fn unit(&self) -> Option<(UnitKind, usize)> {
        match self {
            RunEvent::Claimed { kind, index, .. }
            | RunEvent::Completed { kind, index, .. }
            | RunEvent::Cached { kind, index, .. } => Some((*kind, *index)),
            RunEvent::ShardDone { .. } | RunEvent::Heartbeat { .. } => None,
        }
    }

    /// The emitting shard's id.
    pub fn shard(&self) -> usize {
        match self {
            RunEvent::Claimed { shard, .. }
            | RunEvent::Completed { shard, .. }
            | RunEvent::Cached { shard, .. }
            | RunEvent::Heartbeat { shard, .. }
            | RunEvent::ShardDone { shard, .. } => *shard,
        }
    }

    /// The emission timestamp, when the writer recorded one.
    pub fn t_ms(&self) -> Option<u64> {
        match self {
            RunEvent::Claimed { t_ms, .. }
            | RunEvent::Completed { t_ms, .. }
            | RunEvent::Cached { t_ms, .. }
            | RunEvent::Heartbeat { t_ms, .. }
            | RunEvent::ShardDone { t_ms, .. } => *t_ms,
        }
    }
}

/// The timestamp every event-construction site stamps: the process-wide
/// epoch-anchored monotonic clock.
fn stamp_now() -> Option<u64> {
    Some(obs::now_ms())
}

impl ToJson for RunEvent {
    fn to_json(&self) -> Json {
        let unit_fields =
            |event: &str, shard: usize, kind: UnitKind, index: usize, fp: Fingerprint| {
                vec![
                    ("event", Json::Str(event.to_string())),
                    ("shard", Json::UInt(shard as u64)),
                    ("unit_kind", Json::Str(kind.name().to_string())),
                    ("unit_index", Json::UInt(index as u64)),
                    ("fingerprint", Json::Str(fp.to_hex())),
                ]
            };
        // `t_ms` is emitted only when present and `stolen` only when true:
        // events carrying neither serialise exactly as they did before the
        // fields existed, so old readers and golden logs stay valid.
        let stamp = |fields: &mut Vec<(&'static str, Json)>, t_ms: &Option<u64>| {
            if let Some(t) = t_ms {
                fields.push(("t_ms", Json::UInt(*t)));
            }
        };
        match self {
            RunEvent::Claimed {
                shard,
                kind,
                index,
                fingerprint,
                stolen,
                t_ms,
            } => {
                let mut fields = unit_fields("claimed", *shard, *kind, *index, *fingerprint);
                if *stolen {
                    fields.push(("stolen", Json::Bool(true)));
                }
                stamp(&mut fields, t_ms);
                Json::obj(fields)
            }
            RunEvent::Completed {
                shard,
                kind,
                index,
                fingerprint,
                cell,
                t_ms,
                sim_ms,
            } => {
                let mut fields = unit_fields("completed", *shard, *kind, *index, *fingerprint);
                fields.push(("cell", cell.as_ref().map_or(Json::Null, ToJson::to_json)));
                if let Some(ms) = sim_ms {
                    fields.push(("sim_ms", Json::UInt(*ms)));
                }
                stamp(&mut fields, t_ms);
                Json::obj(fields)
            }
            RunEvent::Cached {
                shard,
                kind,
                index,
                fingerprint,
                cell,
                t_ms,
            } => {
                let mut fields = unit_fields("cached", *shard, *kind, *index, *fingerprint);
                fields.push(("cell", cell.as_ref().map_or(Json::Null, ToJson::to_json)));
                stamp(&mut fields, t_ms);
                Json::obj(fields)
            }
            RunEvent::Heartbeat {
                shard,
                units_done,
                units_total,
                t_ms,
            } => {
                let mut fields = vec![
                    ("event", Json::Str("heartbeat".to_string())),
                    ("shard", Json::UInt(*shard as u64)),
                    ("units_done", Json::UInt(*units_done as u64)),
                    ("units_total", Json::UInt(*units_total as u64)),
                ];
                stamp(&mut fields, t_ms);
                Json::obj(fields)
            }
            RunEvent::ShardDone {
                shard,
                sims_executed,
                wall_clock_ms,
                t_ms,
            } => {
                let mut fields = vec![
                    ("event", Json::Str("shard_done".to_string())),
                    ("shard", Json::UInt(*shard as u64)),
                    ("sims_executed", Json::UInt(*sims_executed as u64)),
                    ("wall_clock_ms", Json::Num(*wall_clock_ms)),
                ];
                stamp(&mut fields, t_ms);
                Json::obj(fields)
            }
        }
    }
}

impl FromJson for RunEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let event = json
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::missing("event"))?;
        let shard = json
            .get("shard")
            .and_then(Json::as_usize)
            .ok_or_else(|| JsonError::missing("shard"))?;
        // Optional on every variant: logs written before timestamps existed
        // (or by a writer with timestamps disabled) parse as `None`.
        let t_ms = json.get("t_ms").and_then(Json::as_u64);
        if event == "shard_done" {
            return Ok(RunEvent::ShardDone {
                shard,
                sims_executed: json
                    .get("sims_executed")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| JsonError::missing("sims_executed"))?,
                wall_clock_ms: json
                    .get("wall_clock_ms")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| JsonError::missing("wall_clock_ms"))?,
                t_ms,
            });
        }
        if event == "heartbeat" {
            return Ok(RunEvent::Heartbeat {
                shard,
                units_done: json
                    .get("units_done")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| JsonError::missing("units_done"))?,
                units_total: json
                    .get("units_total")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| JsonError::missing("units_total"))?,
                t_ms,
            });
        }
        let kind = json
            .get("unit_kind")
            .and_then(Json::as_str)
            .and_then(UnitKind::parse)
            .ok_or_else(|| JsonError::missing("unit_kind"))?;
        let index = json
            .get("unit_index")
            .and_then(Json::as_usize)
            .ok_or_else(|| JsonError::missing("unit_index"))?;
        let fingerprint = json
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(Fingerprint::parse_hex)
            .ok_or_else(|| JsonError::missing("fingerprint"))?;
        let cell = match json.get("cell") {
            None | Some(Json::Null) => None,
            Some(value) => Some(CellResult::from_json(value)?),
        };
        match event {
            "claimed" => Ok(RunEvent::Claimed {
                shard,
                kind,
                index,
                fingerprint,
                stolen: json.get("stolen").and_then(Json::as_bool).unwrap_or(false),
                t_ms,
            }),
            "completed" => Ok(RunEvent::Completed {
                shard,
                kind,
                index,
                fingerprint,
                cell,
                t_ms,
                sim_ms: json.get("sim_ms").and_then(Json::as_u64),
            }),
            "cached" => Ok(RunEvent::Cached {
                shard,
                kind,
                index,
                fingerprint,
                cell,
                t_ms,
            }),
            _ => Err(JsonError::missing("event")),
        }
    }
}

/// Parses a JSONL event log (one [`RunEvent`] per non-empty line).
///
/// # Errors
/// Returns an [`io::Error`] on unreadable input or an unparseable line.
pub fn read_events(reader: impl BufRead) -> io::Result<Vec<RunEvent>> {
    let mut events = Vec::new();
    for (number, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("event log line {}: {e}", number + 1),
            )
        })?;
        events.push(RunEvent::from_json(&value).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("event log line {}: {e}", number + 1),
            )
        })?);
    }
    Ok(events)
}

/// Why [`merge_events`] could not assemble a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No event stream resolved the cell at this grid index; the logs are
    /// incomplete (e.g. a shard died and nobody resumed the run).
    MissingCell {
        /// Grid index (`w * columns + c`) of the unresolved cell.
        index: usize,
    },
    /// A cell-kind event carried no cell payload.
    MissingPayload {
        /// Grid index of the defective event.
        index: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::MissingCell { index } => {
                write!(
                    f,
                    "no event stream resolved grid cell {index}; the run is incomplete"
                )
            }
            MergeError::MissingPayload { index } => {
                write!(f, "cell event {index} carries no cell payload")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Folds event streams from any number of shards into the deterministic
/// [`RunReport`] a single-process run produces.
///
/// Events are deduplicated per unit: execution provenance (`Completed`) wins
/// over cache provenance (`Cached`), and among equals the earliest event in
/// the given order wins — so replaying a killed shard's partial log alongside
/// the resumed run's log keeps the correct "simulated once" accounting.
/// `wall_clock_ms` is recorded verbatim (callers pass the measured local
/// duration, or the max over [`RunEvent::ShardDone`] durations — see
/// [`merged_wall_clock_ms`]).
///
/// # Errors
/// Returns [`MergeError`] if any grid cell is unresolved by every stream.
pub fn merge_events(
    plan: &Plan,
    events: impl IntoIterator<Item = RunEvent>,
    wall_clock_ms: f64,
) -> Result<RunReport, MergeError> {
    let mut resolved = fold_resolved(events);
    let baseline_sims = (0..plan.baselines.len())
        .filter(|i| matches!(resolved.get(&(UnitKind::Baseline, *i)), Some((true, _))))
        .count();
    let sims_executed = resolved.values().filter(|(executed, _)| *executed).count();
    let mut cells = Vec::with_capacity(plan.cells.len());
    for index in 0..plan.cells.len() {
        match resolved.remove(&(UnitKind::Cell, index)) {
            Some((_, Some(cell))) => cells.push(cell),
            Some((_, None)) => return Err(MergeError::MissingPayload { index }),
            None => return Err(MergeError::MissingCell { index }),
        }
    }
    Ok(RunReport {
        title: plan.title.clone(),
        scale: plan.scale.clone(),
        threads: plan.threads,
        wall_clock_ms,
        baseline_sims,
        sims_executed,
        workloads: plan.workloads.clone(),
        columns: plan.columns.clone(),
        cells,
    })
}

/// Deduplicates event streams into `(kind, index) -> (was_executed, payload)`,
/// with execution provenance winning over cache provenance.
fn fold_resolved(
    events: impl IntoIterator<Item = RunEvent>,
) -> HashMap<(UnitKind, usize), (bool, Option<CellResult>)> {
    let mut resolved: HashMap<(UnitKind, usize), (bool, Option<CellResult>)> = HashMap::new();
    for event in events {
        let (executed, payload) = match &event {
            RunEvent::Completed { cell, .. } => (true, cell.clone()),
            RunEvent::Cached { cell, .. } => (false, cell.clone()),
            RunEvent::Claimed { .. } | RunEvent::Heartbeat { .. } | RunEvent::ShardDone { .. } => {
                continue
            }
        };
        let unit = event.unit().expect("unit events carry an identity");
        match resolved.get(&unit) {
            Some((true, _)) => {}               // execution already recorded
            Some((false, _)) if !executed => {} // first cached sighting wins
            _ => {
                resolved.insert(unit, (executed, payload));
            }
        }
    }
    resolved
}

/// Best-effort [`merge_events`] for observing a run that is still in flight:
/// cells no stream has resolved yet become placeholder rows (`cycles` 0,
/// `normalized_time` NaN, `completed: false`) instead of a [`MergeError`],
/// and the number of such holes is returned alongside the report.
///
/// This is what `merge --html-live` renders between frames. Once the hole
/// count reaches zero the caller must switch to the strict [`merge_events`]
/// so the final page is byte-identical to a post-hoc `merge --html`.
pub fn merge_events_lenient(
    plan: &Plan,
    events: impl IntoIterator<Item = RunEvent>,
    wall_clock_ms: f64,
) -> (RunReport, usize) {
    let mut resolved = fold_resolved(events);
    let baseline_sims = (0..plan.baselines.len())
        .filter(|i| matches!(resolved.get(&(UnitKind::Baseline, *i)), Some((true, _))))
        .count();
    let sims_executed = resolved.values().filter(|(executed, _)| *executed).count();
    let mut missing = 0usize;
    let mut cells = Vec::with_capacity(plan.cells.len());
    for (index, unit) in plan.cells.iter().enumerate() {
        match resolved.remove(&(UnitKind::Cell, index)) {
            Some((_, Some(cell))) => cells.push(cell),
            _ => {
                missing += 1;
                cells.push(CellResult {
                    workload: unit.workload.name.clone(),
                    column: unit.column.clone().unwrap_or_default(),
                    defense: unit.defense.label().to_string(),
                    cycles: 0,
                    committed: 0,
                    completed: false,
                    cached: false,
                    baseline_cycles: 0,
                    normalized_time: f64::NAN,
                    stats: simkit::stats::StatSet::new(),
                });
            }
        }
    }
    let report = RunReport {
        title: plan.title.clone(),
        scale: plan.scale.clone(),
        threads: plan.threads,
        wall_clock_ms,
        baseline_sims,
        sims_executed,
        workloads: plan.workloads.clone(),
        columns: plan.columns.clone(),
        cells,
    };
    (report, missing)
}

/// The wall clock to record for a multi-stream merge: the maximum over
/// [`RunEvent::ShardDone`] durations (shards run concurrently), `0.0` when no
/// shard reported one.
pub fn merged_wall_clock_ms<'a>(events: impl IntoIterator<Item = &'a RunEvent>) -> f64 {
    events
        .into_iter()
        .filter_map(|event| match event {
            RunEvent::ShardDone { wall_clock_ms, .. } => Some(*wall_clock_ms),
            _ => None,
        })
        .fold(0.0, f64::max)
}

/// Builds the [`CellResult`] for `unit` from its raw result and baseline.
fn build_cell(
    unit: &WorkUnit,
    result: ExperimentResult,
    cached: bool,
    baseline: &ExperimentResult,
) -> CellResult {
    let normalized = if baseline.cycles == 0 {
        1.0
    } else {
        result.cycles as f64 / baseline.cycles as f64
    };
    CellResult {
        workload: unit.workload.name.clone(),
        column: unit.column.clone().unwrap_or_default(),
        defense: result.defense,
        cycles: result.cycles,
        committed: result.committed,
        completed: result.completed,
        cached,
        baseline_cycles: baseline.cycles,
        normalized_time: normalized,
        stats: result.stats,
    }
}

/// A sink shared by worker threads; every event is written (and flushed) the
/// moment it is produced, so logs stream.
struct EventSink<'a> {
    sink: Option<Mutex<&'a mut (dyn Write + Send)>>,
}

impl<'a> EventSink<'a> {
    fn new(sink: Option<&'a mut (dyn Write + Send)>) -> Self {
        EventSink {
            sink: sink.map(Mutex::new),
        }
    }

    /// Streams one event; write failures are deliberately swallowed (an
    /// unwritable log degrades observability, never correctness — the merge
    /// in `run()` uses the in-memory events).
    ///
    /// Every emission also bumps the process-wide [`obs::global`] registry,
    /// sink or no sink, so `MetricsRegistry::write_snapshot_jsonl` sees local
    /// and sharded runs alike.
    fn emit(&self, event: &RunEvent) {
        count_event(event);
        if let Some(sink) = &self.sink {
            let mut sink = sink.lock().unwrap();
            let _ = writeln!(sink, "{}", event.to_json().to_string_compact());
            let _ = sink.flush();
        }
    }
}

/// Mirrors one event into the global telemetry registry.
fn count_event(event: &RunEvent) {
    let metrics = obs::global();
    match event {
        RunEvent::Claimed { stolen, .. } => {
            metrics.inc("runner.units_claimed", &[], 1);
            if *stolen {
                metrics.inc("runner.leases_stolen", &[], 1);
            }
        }
        RunEvent::Completed { .. } => metrics.inc("runner.units_completed", &[], 1),
        RunEvent::Cached { .. } => metrics.inc("runner.units_cached", &[], 1),
        RunEvent::Heartbeat { .. } => metrics.inc("runner.heartbeats", &[], 1),
        RunEvent::ShardDone { sims_executed, .. } => {
            metrics.inc("runner.shards_done", &[], 1);
            metrics.inc("runner.sims_executed", &[], *sims_executed as u64);
        }
    }
}

/// Runs `f` over `jobs` on `threads` workers, returning results in job order.
pub(crate) fn run_parallel<T: Sync, R: Send>(
    jobs: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = threads.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                *slots[index].lock().unwrap() = Some(f(job));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

/// Executes a plan in-process — the engine behind
/// [`ExperimentSession::run`](crate::session::ExperimentSession::run).
///
/// Claiming is an atomic in-memory index (no lease files): a single process
/// needs no cross-process arbitration, and this keeps storeless runs
/// possible. Baseline results flow to their cells through memory; the store,
/// when present, is still consulted before and written after every
/// simulation. Events stream to `sink` as they happen and are returned in
/// deterministic unit order for the merge.
pub fn execute_local(
    plan: &Plan,
    store: Option<&ResultStore>,
    process_cache: bool,
    threads: usize,
    sink: Option<&mut (dyn Write + Send)>,
) -> Vec<RunEvent> {
    let shard = 0usize;
    let sink = EventSink::new(sink);

    // The one gateway to raw simulation: consult the store, simulate on a
    // miss, persist the result. Mirrors the pre-runner session exactly. The
    // third element is the simulation's wall time (`None` on a store hit).
    let run_or_load = |unit: &WorkUnit| -> (ExperimentResult, bool, Option<u64>) {
        if let Some(s) = store {
            if let Some(hit) = s.get(unit.fingerprint) {
                return (hit, true, None);
            }
        }
        let started = Instant::now();
        let result = session::simulate(&unit.workload, unit.defense, &unit.config);
        let sim_ms = started.elapsed().as_millis() as u64;
        if let Some(s) = store {
            let _ = s.put(unit.fingerprint, &result);
        }
        (result, false, Some(sim_ms))
    };

    // Phase A: baselines. Results flow to phase B through a fingerprint map.
    let baseline_outcomes = run_parallel(&plan.baselines, threads, |unit| {
        if process_cache && plan.memoized {
            if let Some(hit) = session::process_cache_get(&unit.workload, &unit.config) {
                // In-memory reuse within this process, not a store hit:
                // provenance stays `cached: false`. Write through to the
                // store so a warm process cache still leaves the store warm
                // for the next process.
                if let Some(s) = store {
                    if !s.contains(unit.fingerprint) {
                        let _ = s.put(unit.fingerprint, &hit);
                    }
                }
                let event = RunEvent::Cached {
                    shard,
                    kind: UnitKind::Baseline,
                    index: unit.index,
                    fingerprint: unit.fingerprint,
                    cell: None,
                    t_ms: stamp_now(),
                };
                sink.emit(&event);
                return (Arc::new(hit), false, event);
            }
        }
        let (result, cached, sim_ms) = run_or_load(unit);
        let result = Arc::new(result);
        let event = if cached {
            RunEvent::Cached {
                shard,
                kind: UnitKind::Baseline,
                index: unit.index,
                fingerprint: unit.fingerprint,
                cell: None,
                t_ms: stamp_now(),
            }
        } else {
            RunEvent::Completed {
                shard,
                kind: UnitKind::Baseline,
                index: unit.index,
                fingerprint: unit.fingerprint,
                cell: None,
                t_ms: stamp_now(),
                sim_ms,
            }
        };
        sink.emit(&event);
        (result, cached, event)
    });
    let mut events: Vec<RunEvent> = Vec::with_capacity(plan.baselines.len() + plan.cells.len());
    let mut baselines: HashMap<Fingerprint, (Arc<ExperimentResult>, bool)> = HashMap::new();
    for (unit, (result, cached, event)) in plan.baselines.iter().zip(baseline_outcomes) {
        if process_cache && plan.memoized {
            session::process_cache_put(&unit.workload, &unit.config, Arc::clone(&result));
        }
        baselines.insert(unit.fingerprint, (result, cached));
        events.push(event);
    }

    // Phase B: cells, reading baselines from the phase-A map.
    let cell_events = run_parallel(&plan.cells, threads, |unit| {
        let key = unit.baseline.expect("cell units always name a baseline");
        let (baseline, baseline_cached) = &baselines[&key];
        let (cell, executed, sim_ms) = if unit.copies_baseline {
            // An explicit Unprotected column *is* the baseline: derive it
            // rather than simulating the identical machine again, and
            // inherit the baseline's provenance.
            (
                build_cell(unit, (**baseline).clone(), *baseline_cached, baseline),
                false,
                None,
            )
        } else {
            let (result, cached, sim_ms) = run_or_load(unit);
            (build_cell(unit, result, cached, baseline), !cached, sim_ms)
        };
        let event = if executed {
            RunEvent::Completed {
                shard,
                kind: UnitKind::Cell,
                index: unit.index,
                fingerprint: unit.fingerprint,
                cell: Some(cell),
                t_ms: stamp_now(),
                sim_ms,
            }
        } else {
            RunEvent::Cached {
                shard,
                kind: UnitKind::Cell,
                index: unit.index,
                fingerprint: unit.fingerprint,
                cell: Some(cell),
                t_ms: stamp_now(),
            }
        };
        sink.emit(&event);
        event
    });
    events.extend(cell_events);
    events
}

/// How one shard of a multi-process run identifies and paces itself.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// This shard's id, `0 <= shard_id < shard_count`.
    pub shard_id: usize,
    /// Total number of cooperating shards (used only to spread starting
    /// offsets — any shard will steal any remaining unit).
    pub shard_count: usize,
    /// Identifier shared by every shard of one logical run; completion
    /// markers carry it, so freshness provenance survives process
    /// boundaries. Resuming a killed run reuses the same id; any *new*
    /// logical run must pick a fresh one — done markers outlive runs, so a
    /// reused id makes an earlier run's store entries read as freshly
    /// simulated (`cached: false`) instead of cached.
    pub run_id: String,
    /// How long a claimed-but-unfinished lease lives before another shard may
    /// steal it, *measured from the last heartbeat*. The executing shard
    /// re-stamps its lease every [`heartbeat_ms`](Self::heartbeat_ms), so
    /// this no longer needs to exceed the longest simulation — only the
    /// heartbeat interval, comfortably.
    pub lease_ttl_ms: u64,
    /// How often the executing shard re-stamps a held lease
    /// ([`ResultStore::heartbeat_lease`]) while it simulates. `0` disables
    /// heartbeats (then `lease_ttl_ms` must exceed the longest simulation,
    /// as before the heartbeat existed).
    pub heartbeat_ms: u64,
    /// How long to sleep between polls while waiting on another shard.
    pub poll_ms: u64,
}

impl ShardOptions {
    /// Options for shard `shard_id` of `shard_count` in run `run_id`, with a
    /// 30 s lease TTL, a 5 s heartbeat and a 5 ms poll interval. (The TTL
    /// used to be 120 s so it could outlast any one simulation; with the
    /// heartbeat it only needs to outlast a few missed beats, so crashed
    /// shards' work is reclaimed 4× sooner and an arbitrarily long
    /// `Scale::Large` cell is still never falsely stolen.)
    pub fn new(shard_id: usize, shard_count: usize, run_id: impl Into<String>) -> Self {
        ShardOptions {
            shard_id,
            shard_count,
            run_id: run_id.into(),
            lease_ttl_ms: 30_000,
            heartbeat_ms: 5_000,
            poll_ms: 5,
        }
    }
}

/// Keeps a held lease alive while its work unit simulates: a background
/// thread re-stamps the lease every `heartbeat_ms` until the guard is
/// dropped. Dropping stops the thread promptly (it wakes every few
/// milliseconds to check), so short units pay microseconds for the guard.
struct LeaseHeartbeat {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LeaseHeartbeat {
    /// Spawns a heartbeat for `key`, or a no-op guard when
    /// `opts.heartbeat_ms` is zero.
    fn start(store: &ResultStore, key: Fingerprint, owner: &str, opts: &ShardOptions) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        if opts.heartbeat_ms == 0 {
            return LeaseHeartbeat { stop, handle: None };
        }
        let thread_stop = Arc::clone(&stop);
        let store = store.clone();
        let owner = owner.to_string();
        let run_id = opts.run_id.clone();
        let interval = std::time::Duration::from_millis(opts.heartbeat_ms);
        let ttl_ms = opts.lease_ttl_ms;
        let handle = std::thread::spawn(move || {
            let slice = std::time::Duration::from_millis(10).min(interval);
            let mut since_beat = std::time::Instant::now();
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                if since_beat.elapsed() >= interval {
                    since_beat = std::time::Instant::now();
                    // A failed or refused beat is not fatal: the lease may
                    // have been stolen (we lost the race — the duplicate
                    // simulation is benign) or the disk hiccuped (the next
                    // beat retries).
                    let _ = store.heartbeat_lease(key, &owner, &run_id, ttl_ms);
                }
            }
        });
        LeaseHeartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for LeaseHeartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// What one shard did, printed as JSON by the `shard` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// This shard's id.
    pub shard_id: usize,
    /// The run's shard count.
    pub shard_count: usize,
    /// The shared run id.
    pub run_id: String,
    /// Units in the plan (baselines + cells).
    pub units_total: usize,
    /// Units this shard claimed and simulated.
    pub units_executed: usize,
    /// Units this shard resolved without simulating (store hits and units
    /// another shard finished first — the cache/steal rate of a cooperating
    /// shard).
    pub units_cached: usize,
    /// Units this shard claimed by stealing another holder's expired lease
    /// (a crashed or stalled shard's work it reclaimed).
    pub units_stolen: usize,
    /// Simulations this shard executed (equals `units_executed`).
    pub sims_executed: usize,
    /// This shard's wall clock, milliseconds.
    pub wall_clock_ms: f64,
}

impl ShardSummary {
    /// `units_cached / (units_executed + units_cached)`: the fraction of this
    /// shard's resolved units that cost it nothing. A late-joining shard of a
    /// finished run reports 1.0.
    pub fn cached_rate(&self) -> f64 {
        let resolved = self.units_executed + self.units_cached;
        if resolved == 0 {
            0.0
        } else {
            self.units_cached as f64 / resolved as f64
        }
    }
}

impl ToJson for ShardSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("shard_id", Json::UInt(self.shard_id as u64)),
            ("shard_count", Json::UInt(self.shard_count as u64)),
            ("run_id", Json::Str(self.run_id.clone())),
            ("units_total", Json::UInt(self.units_total as u64)),
            ("units_executed", Json::UInt(self.units_executed as u64)),
            ("units_cached", Json::UInt(self.units_cached as u64)),
            ("units_stolen", Json::UInt(self.units_stolen as u64)),
            ("sims_executed", Json::UInt(self.sims_executed as u64)),
            ("cached_rate", Json::Num(self.cached_rate())),
            ("wall_clock_ms", Json::Num(self.wall_clock_ms)),
        ])
    }
}

/// Shared mutable state of one shard's worker pool.
struct ShardState<'a> {
    plan: &'a Plan,
    store: &'a ResultStore,
    opts: &'a ShardOptions,
    owner: String,
    sink: EventSink<'a>,
    /// Baseline results this shard has already obtained, with freshness
    /// (`true` = simulated during this run, by any shard).
    baselines: Mutex<HashMap<Fingerprint, (Arc<ExperimentResult>, bool)>>,
    executed: AtomicUsize,
    cached: AtomicUsize,
    stolen: AtomicUsize,
}

impl ShardState<'_> {
    fn emit(&self, event: RunEvent) {
        self.sink.emit(&event);
    }

    /// Whether the store entry for `key` was produced during *this* run —
    /// i.e. should be reported with `cached: false`. True either once the
    /// done marker carries our run id, or while the lease is still live and
    /// not done under our run id: in the instant between a sibling shard's
    /// `put` and its `mark_done`, the entry is visible but the marker is not
    /// yet, and without the lease check two shards could disagree on the
    /// same unit's provenance (making a merged report diverge from the
    /// single-process one, nondeterministically).
    fn fresh_during_run(&self, key: Fingerprint) -> bool {
        self.store.completed_during(key, &self.opts.run_id)
            || self
                .store
                .read_lease(key)
                .is_some_and(|lease| lease.run_id == self.opts.run_id && !lease.done)
    }

    /// Obtains the baseline result behind `fingerprint`, simulating it under
    /// its own lease if nobody else has: blocks (poll + lease-steal) until
    /// the result exists. Returns the result and whether it is fresh (was
    /// simulated during this run).
    fn ensure_baseline(
        &self,
        fingerprint: Fingerprint,
    ) -> io::Result<(Arc<ExperimentResult>, bool)> {
        if let Some(hit) = self.baselines.lock().unwrap().get(&fingerprint) {
            return Ok(hit.clone());
        }
        let unit = self
            .plan
            .baseline_by_fingerprint(fingerprint)
            .expect("cells only reference planned baselines");
        loop {
            if let Some(result) = self.store.get(fingerprint) {
                let fresh = self.fresh_during_run(fingerprint);
                let result = Arc::new(result);
                self.baselines
                    .lock()
                    .unwrap()
                    .insert(fingerprint, (Arc::clone(&result), fresh));
                return Ok((result, fresh));
            }
            match self.store.try_lease(
                fingerprint,
                &self.owner,
                &self.opts.run_id,
                self.opts.lease_ttl_ms,
            )? {
                LeaseState::Busy(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(self.opts.poll_ms));
                }
                acquisition => {
                    let stolen = matches!(acquisition, LeaseState::Stolen { .. });
                    if stolen {
                        self.stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    self.emit(RunEvent::Claimed {
                        shard: self.opts.shard_id,
                        kind: UnitKind::Baseline,
                        index: unit.index,
                        fingerprint,
                        stolen,
                        t_ms: stamp_now(),
                    });
                    let heartbeat =
                        LeaseHeartbeat::start(self.store, fingerprint, &self.owner, self.opts);
                    let started = Instant::now();
                    let result = session::simulate(&unit.workload, unit.defense, &unit.config);
                    let sim_ms = started.elapsed().as_millis() as u64;
                    self.store.put(fingerprint, &result)?;
                    // Stop the heartbeat *before* writing the done marker: a
                    // beat racing with mark_done could rename a live
                    // (done=false) lease over the provenance marker. The
                    // entry is already in the store, so even a steal in this
                    // gap only duplicates work, never loses the result.
                    drop(heartbeat);
                    self.store
                        .mark_done(fingerprint, &self.owner, &self.opts.run_id)?;
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    self.emit(RunEvent::Completed {
                        shard: self.opts.shard_id,
                        kind: UnitKind::Baseline,
                        index: unit.index,
                        fingerprint,
                        cell: None,
                        t_ms: stamp_now(),
                        sim_ms: Some(sim_ms),
                    });
                    let result = Arc::new(result);
                    self.baselines
                        .lock()
                        .unwrap()
                        .insert(fingerprint, (Arc::clone(&result), true));
                    return Ok((result, true));
                }
            }
        }
    }

    /// Resolves one unit of the plan: serve it from the store, or claim its
    /// lease and simulate it, or wait for (then steal from) whoever holds it.
    fn process_unit(&self, unit: &WorkUnit) -> io::Result<()> {
        let shard = self.opts.shard_id;
        // Derived cells never simulate: they wait on their baseline and
        // inherit its result and freshness.
        if unit.copies_baseline {
            let key = unit.baseline.expect("derived cells name a baseline");
            let (baseline, fresh) = self.ensure_baseline(key)?;
            let cell = build_cell(unit, (*baseline).clone(), !fresh, &baseline);
            self.cached.fetch_add(1, Ordering::Relaxed);
            self.emit(RunEvent::Cached {
                shard,
                kind: unit.kind,
                index: unit.index,
                fingerprint: unit.fingerprint,
                cell: Some(cell),
                t_ms: stamp_now(),
            });
            return Ok(());
        }
        loop {
            if let Some(result) = self.store.get(unit.fingerprint) {
                let fresh = self.fresh_during_run(unit.fingerprint);
                let cell = match unit.kind {
                    UnitKind::Baseline => {
                        self.baselines
                            .lock()
                            .unwrap()
                            .entry(unit.fingerprint)
                            .or_insert_with(|| (Arc::new(result), fresh));
                        None
                    }
                    UnitKind::Cell => {
                        let (baseline, _) =
                            self.ensure_baseline(unit.baseline.expect("cells name a baseline"))?;
                        Some(build_cell(unit, result, !fresh, &baseline))
                    }
                };
                self.cached.fetch_add(1, Ordering::Relaxed);
                self.emit(RunEvent::Cached {
                    shard,
                    kind: unit.kind,
                    index: unit.index,
                    fingerprint: unit.fingerprint,
                    cell,
                    t_ms: stamp_now(),
                });
                return Ok(());
            }
            // Cells fetch their baseline *before* claiming, so the claim
            // never sits idle (and cannot expire) while the baseline is
            // computed elsewhere.
            let baseline = match unit.kind {
                UnitKind::Cell => {
                    Some(self.ensure_baseline(unit.baseline.expect("cells name a baseline"))?)
                }
                UnitKind::Baseline => None,
            };
            match self.store.try_lease(
                unit.fingerprint,
                &self.owner,
                &self.opts.run_id,
                self.opts.lease_ttl_ms,
            )? {
                LeaseState::Busy(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(self.opts.poll_ms));
                }
                acquisition => {
                    let stolen = matches!(acquisition, LeaseState::Stolen { .. });
                    if stolen {
                        self.stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    self.emit(RunEvent::Claimed {
                        shard,
                        kind: unit.kind,
                        index: unit.index,
                        fingerprint: unit.fingerprint,
                        stolen,
                        t_ms: stamp_now(),
                    });
                    let heartbeat =
                        LeaseHeartbeat::start(self.store, unit.fingerprint, &self.owner, self.opts);
                    let started = Instant::now();
                    let result = session::simulate(&unit.workload, unit.defense, &unit.config);
                    let sim_ms = started.elapsed().as_millis() as u64;
                    self.store.put(unit.fingerprint, &result)?;
                    // Stop the heartbeat *before* writing the done marker (a
                    // racing beat could overwrite it with a live lease); the
                    // result is already persisted, so the tiny unguarded gap
                    // can at worst duplicate work, never lose it.
                    drop(heartbeat);
                    self.store
                        .mark_done(unit.fingerprint, &self.owner, &self.opts.run_id)?;
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    let cell = match unit.kind {
                        UnitKind::Baseline => {
                            self.baselines
                                .lock()
                                .unwrap()
                                .insert(unit.fingerprint, (Arc::new(result), true));
                            None
                        }
                        UnitKind::Cell => {
                            let (ref baseline, _) = baseline.expect("cell baseline fetched above");
                            Some(build_cell(unit, result, false, baseline))
                        }
                    };
                    self.emit(RunEvent::Completed {
                        shard,
                        kind: unit.kind,
                        index: unit.index,
                        fingerprint: unit.fingerprint,
                        cell,
                        t_ms: stamp_now(),
                        sim_ms: Some(sim_ms),
                    });
                    return Ok(());
                }
            }
        }
    }
}

/// Executes one shard of a plan against a shared store directory, streaming
/// [`RunEvent`] JSONL to `sink` — the engine behind
/// [`ExperimentSession::run_sharded`](crate::session::ExperimentSession::run_sharded)
/// and the `shard` binary.
///
/// Every shard walks the *whole* plan (baselines first, then cells), starting
/// at an offset spread by `shard_id` so cooperating shards collide rarely;
/// lease files arbitrate the collisions that remain, and whichever shard
/// finds a unit finished serves it from the store. A shard therefore emits an
/// event for every unit, and any single complete log reconstructs the whole
/// report — extra logs only refine the execution accounting.
///
/// # Errors
/// Returns an error if the store is read-only or lease/store writes fail.
/// Simulation itself never fails.
pub fn execute_shard(
    plan: &Plan,
    store: &ResultStore,
    opts: &ShardOptions,
    threads: usize,
    sink: &mut (dyn Write + Send),
) -> io::Result<ShardSummary> {
    if store.is_read_only() {
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "a sharded run needs a writable store (leases and results)",
        ));
    }
    if opts.shard_count == 0 || opts.shard_id >= opts.shard_count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "shard id {} out of range for {} shard(s)",
                opts.shard_id, opts.shard_count
            ),
        ));
    }
    let started = Instant::now();
    let owner = format!(
        "{}/shard{}/pid{}",
        opts.run_id,
        opts.shard_id,
        std::process::id()
    );
    let state = ShardState {
        plan,
        store,
        opts,
        owner,
        sink: EventSink::new(Some(sink)),
        baselines: Mutex::new(HashMap::new()),
        executed: AtomicUsize::new(0),
        cached: AtomicUsize::new(0),
        stolen: AtomicUsize::new(0),
    };

    // Rotate each phase's unit list so shard k starts k/n of the way in:
    // shards file through disjoint regions first and steal stragglers later.
    let order = |units: &[WorkUnit]| -> Vec<usize> {
        let len = units.len();
        if len == 0 {
            return Vec::new();
        }
        let offset = (opts.shard_id * len) / opts.shard_count;
        (0..len).map(|i| (i + offset) % len).collect()
    };
    let units_total = plan.baselines.len() + plan.cells.len();
    let mut error: io::Result<()> = Ok(());
    // The heartbeat emitter shares the workers' scope: it streams one
    // `RunEvent::Heartbeat` per `opts.heartbeat_ms` while the phases run, so
    // a watcher can tell "working on a long unit" from "dead" without
    // waiting out the lease TTL. Same stop discipline as `LeaseHeartbeat`:
    // wake every few milliseconds so short shards exit promptly.
    let stop_beats = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        if opts.heartbeat_ms > 0 {
            let state = &state;
            let stop_beats = &stop_beats;
            scope.spawn(move || {
                let interval = std::time::Duration::from_millis(opts.heartbeat_ms);
                let slice = std::time::Duration::from_millis(10).min(interval);
                let mut since_beat = Instant::now();
                while !stop_beats.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    if since_beat.elapsed() >= interval {
                        since_beat = Instant::now();
                        state.emit(RunEvent::Heartbeat {
                            shard: opts.shard_id,
                            units_done: state.executed.load(Ordering::Relaxed)
                                + state.cached.load(Ordering::Relaxed),
                            units_total,
                            t_ms: stamp_now(),
                        });
                    }
                }
            });
        }
        for units in [&plan.baselines, &plan.cells] {
            let indices = order(units);
            let results = run_parallel(&indices, threads, |i| state.process_unit(&units[*i]));
            if let Some(e) = results.into_iter().find_map(Result::err) {
                error = Err(e);
                break;
            }
        }
        stop_beats.store(true, Ordering::Relaxed);
    });
    let wall_clock_ms = started.elapsed().as_secs_f64() * 1e3;
    let sims_executed = state.executed.load(Ordering::Relaxed);
    state.emit(RunEvent::ShardDone {
        shard: opts.shard_id,
        sims_executed,
        wall_clock_ms,
        t_ms: stamp_now(),
    });
    error?;
    Ok(ShardSummary {
        shard_id: opts.shard_id,
        shard_count: opts.shard_count,
        run_id: opts.run_id.clone(),
        units_total,
        units_executed: sims_executed,
        units_cached: state.cached.load(Ordering::Relaxed),
        units_stolen: state.stolen.load(Ordering::Relaxed),
        sims_executed,
        wall_clock_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ExperimentSession;
    use workloads::{spec_suite, Scale};

    fn tiny_session(workloads_count: usize, kinds: &[DefenseKind]) -> ExperimentSession {
        ExperimentSession::new()
            .title("runner test grid")
            .scale(Scale::Tiny)
            .workloads(spec_suite(Scale::Tiny).into_iter().take(workloads_count))
            .defenses(kinds.iter().copied())
            .config(SystemConfig::small_test())
    }

    #[test]
    fn plan_is_pure_and_deterministic() {
        let session = tiny_session(2, &[DefenseKind::Unprotected, DefenseKind::MuonTrap]);
        let a = session.plan();
        let b = session.plan();
        assert_eq!(a.workloads, b.workloads);
        assert_eq!(a.columns, b.columns);
        assert_eq!(a.baselines.len(), 2, "one baseline per workload");
        assert_eq!(a.cells.len(), 4);
        for (ua, ub) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ua.fingerprint, ub.fingerprint);
            assert_eq!(ua.baseline, ub.baseline);
        }
        // The Unprotected column is derived, keyed by its baseline.
        assert!(a.cells[0].copies_baseline);
        assert_eq!(a.cells[0].fingerprint, a.cells[0].baseline.unwrap());
        assert!(!a.cells[1].copies_baseline);
        assert_eq!(a.expected_cold_sims(), 4); // 2 baselines + 2 muontrap cells
    }

    #[test]
    fn unmemoized_plans_carry_one_baseline_per_cell() {
        let plan = tiny_session(2, &[DefenseKind::MuonTrap, DefenseKind::SttSpectre])
            .memoize(false)
            .plan();
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.baselines.len(), 4, "no deduplication without memoize");
        assert!(!plan.memoized);
    }

    #[test]
    fn events_round_trip_through_json() {
        let report = tiny_session(1, &[DefenseKind::MuonTrap]).run();
        let cell = report.cells[0].clone();
        let samples = [
            RunEvent::Claimed {
                shard: 3,
                kind: UnitKind::Baseline,
                index: 7,
                fingerprint: Fingerprint(0xdead_beef),
                stolen: false,
                t_ms: None,
            },
            RunEvent::Claimed {
                shard: 2,
                kind: UnitKind::Cell,
                index: 4,
                fingerprint: Fingerprint(0xfeed),
                stolen: true,
                t_ms: Some(1_700_000_123_456),
            },
            RunEvent::Completed {
                shard: 0,
                kind: UnitKind::Cell,
                index: 2,
                fingerprint: Fingerprint(1),
                cell: Some(cell.clone()),
                t_ms: Some(1_700_000_123_789),
                sim_ms: Some(840),
            },
            RunEvent::Completed {
                shard: 0,
                kind: UnitKind::Baseline,
                index: 0,
                fingerprint: Fingerprint(2),
                cell: None,
                t_ms: None,
                sim_ms: None,
            },
            RunEvent::Cached {
                shard: 1,
                kind: UnitKind::Cell,
                index: 9,
                fingerprint: Fingerprint(3),
                cell: Some(cell),
                t_ms: None,
            },
            RunEvent::Heartbeat {
                shard: 1,
                units_done: 3,
                units_total: 8,
                t_ms: Some(1_700_000_124_000),
            },
            RunEvent::ShardDone {
                shard: 1,
                sims_executed: 12,
                wall_clock_ms: 34.5,
                t_ms: None,
            },
        ];
        for event in &samples {
            let line = event.to_json().to_string_compact();
            let back = RunEvent::from_json(&json::parse(&line).unwrap()).unwrap();
            assert_eq!(&back, event, "event must survive the JSONL round trip");
        }
        // A whole log round-trips through the line reader.
        let log: String = samples
            .iter()
            .map(|e| format!("{}\n", e.to_json().to_string_compact()))
            .collect();
        let parsed = read_events(log.as_bytes()).unwrap();
        assert_eq!(parsed, samples);
        assert!(read_events("not json\n".as_bytes()).is_err());
    }

    #[test]
    fn legacy_timestamp_free_logs_still_parse() {
        // An event with no timestamp and no steal serialises byte-identically
        // to the pre-observability wire format…
        let event = RunEvent::Claimed {
            shard: 0,
            kind: UnitKind::Cell,
            index: 1,
            fingerprint: Fingerprint(7),
            stolen: false,
            t_ms: None,
        };
        let line = event.to_json().to_string_compact();
        assert!(!line.contains("t_ms"), "absent stamps must not serialise");
        assert!(!line.contains("stolen"), "false steals must not serialise");
        // …and a hand-written legacy line (the old format verbatim) parses,
        // defaulting the new fields.
        let legacy = format!(
            r#"{{"event":"claimed","shard":0,"unit_kind":"cell","unit_index":1,"fingerprint":"{}"}}"#,
            Fingerprint(7).to_hex()
        );
        let back = RunEvent::from_json(&json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(back, event);
        let legacy_done =
            r#"{"event":"shard_done","shard":2,"sims_executed":5,"wall_clock_ms":1.5}"#;
        let back = RunEvent::from_json(&json::parse(legacy_done).unwrap()).unwrap();
        assert_eq!(
            back,
            RunEvent::ShardDone {
                shard: 2,
                sims_executed: 5,
                wall_clock_ms: 1.5,
                t_ms: None,
            }
        );
    }

    #[test]
    fn lenient_merge_fills_holes_and_converges_to_the_strict_merge() {
        let session = tiny_session(1, &[DefenseKind::Unprotected, DefenseKind::MuonTrap]);
        let plan = session.plan();
        let events = execute_local(&plan, None, false, 1, None);
        // Drop the last cell resolution: the strict merge refuses, the
        // lenient merge reports one hole with a NaN placeholder.
        let last_cell = plan.cells.len() - 1;
        let partial: Vec<RunEvent> = events
            .iter()
            .filter(|e| e.unit() != Some((UnitKind::Cell, last_cell)))
            .cloned()
            .collect();
        assert!(merge_events(&plan, partial.clone(), 0.0).is_err());
        let (report, missing) = merge_events_lenient(&plan, partial, 0.0);
        assert_eq!(missing, 1);
        assert_eq!(report.cells.len(), plan.cells.len());
        let hole = &report.cells[last_cell];
        assert!(hole.normalized_time.is_nan());
        assert!(!hole.completed);
        assert_eq!(hole.workload, plan.cells[last_cell].workload.name);
        // With the full stream the lenient merge equals the strict merge.
        let strict = merge_events(&plan, events.clone(), 5.0).unwrap();
        let (lenient, missing) = merge_events_lenient(&plan, events, 5.0);
        assert_eq!(missing, 0);
        assert_eq!(lenient, strict);
    }

    #[test]
    fn merge_requires_every_cell_and_prefers_execution_provenance() {
        let session = tiny_session(1, &[DefenseKind::MuonTrap]);
        let plan = session.clone().plan();
        let events = execute_local(&plan, None, false, 1, None);
        // Missing cells are an error, not a silent hole.
        let partial: Vec<RunEvent> = events
            .iter()
            .filter(|e| e.unit().map(|(k, _)| k) != Some(UnitKind::Cell))
            .cloned()
            .collect();
        assert_eq!(
            merge_events(&plan, partial, 0.0),
            Err(MergeError::MissingCell { index: 0 })
        );
        // Duplicated streams (a retried shard replaying its log) change
        // nothing: Completed wins over Cached, and sims are counted once.
        let mut cached_shadow = events.clone();
        for event in events.clone() {
            if let RunEvent::Completed {
                shard,
                kind,
                index,
                fingerprint,
                cell,
                t_ms,
                ..
            } = event
            {
                cached_shadow.push(RunEvent::Cached {
                    shard: shard + 1,
                    kind,
                    index,
                    fingerprint,
                    cell: cell.map(|mut c| {
                        c.cached = true;
                        c
                    }),
                    t_ms,
                });
            }
        }
        let once = merge_events(&plan, events, 0.0).unwrap();
        let doubled = merge_events(&plan, cached_shadow, 0.0).unwrap();
        assert_eq!(once.sims_executed, 2);
        assert_eq!(doubled.sims_executed, 2);
        assert_eq!(once.cells, doubled.cells);
        assert!(!doubled.cells[0].cached, "execution provenance must win");
    }

    #[test]
    fn default_options_shrink_the_ttl_and_enable_heartbeats() {
        let opts = ShardOptions::new(0, 2, "run");
        assert_eq!(opts.lease_ttl_ms, 30_000);
        assert_eq!(opts.heartbeat_ms, 5_000);
        assert!(
            opts.heartbeat_ms * 3 <= opts.lease_ttl_ms,
            "a lease must survive a few missed beats"
        );
    }

    #[test]
    fn heartbeat_guard_keeps_long_units_from_being_stolen() {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        let dir = std::env::temp_dir().join(format!(
            "muontrap-runner-heartbeat-{}-{nanos}",
            std::process::id()
        ));
        let store = ResultStore::open(&dir).unwrap();
        let key = Fingerprint(0xbeef);
        let mut opts = ShardOptions::new(0, 1, "hb-run");
        opts.lease_ttl_ms = 100;
        opts.heartbeat_ms = 25;
        let owner = "hb-owner";
        assert_eq!(
            store
                .try_lease(key, owner, &opts.run_id, opts.lease_ttl_ms)
                .unwrap(),
            crate::store::LeaseState::Acquired
        );
        {
            // Simulated long-running unit: three TTLs long.
            let _guard = LeaseHeartbeat::start(&store, key, owner, &opts);
            std::thread::sleep(std::time::Duration::from_millis(300));
            match store
                .try_lease(key, "thief", &opts.run_id, opts.lease_ttl_ms)
                .unwrap()
            {
                crate::store::LeaseState::Busy(info) => assert_eq!(info.owner, owner),
                other => {
                    panic!("the heartbeat must keep the lease alive past its TTL, got {other:?}")
                }
            }
        }
        // Guard dropped (holder "crashed"): the lease expires one TTL after
        // its last beat and is reclaimed — reported as a steal, with the
        // crashed holder's lease attached.
        std::thread::sleep(std::time::Duration::from_millis(150));
        match store.try_lease(key, "thief", &opts.run_id, 60_000).unwrap() {
            crate::store::LeaseState::Stolen { previous } => {
                assert_eq!(previous.expect("the expired lease survives").owner, owner);
            }
            other => panic!("an expired lease is stolen, not freshly acquired: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_wall_clock_is_the_slowest_shard() {
        let events = [
            RunEvent::ShardDone {
                shard: 0,
                sims_executed: 1,
                wall_clock_ms: 10.0,
                t_ms: None,
            },
            RunEvent::ShardDone {
                shard: 1,
                sims_executed: 2,
                wall_clock_ms: 25.0,
                t_ms: None,
            },
        ];
        assert_eq!(merged_wall_clock_ms(events.iter()), 25.0);
        assert_eq!(merged_wall_clock_ms([].iter()), 0.0);
    }
}
