//! Criterion bench for the figure3 harness: regenerates a reduced-scale
//! version of the series (printed to stderr) and measures the wall-clock cost
//! of one representative simulation so regressions in simulator throughput
//! are visible. The full-scale series is produced by the `fig3` binary.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let config = simkit::config::SystemConfig::small_test();
    let figure = bench::figure3(workloads::Scale::Tiny, &config);
    eprintln!("{}", figure.render());

    let workload = workloads::spec_suite(workloads::Scale::Tiny)
        .into_iter()
        .nth(20)
        .expect("suite has at least 21 kernels");
    let mut group = c.benchmark_group("fig3_spec");
    group.sample_size(10);
    group.bench_function("muontrap_one_workload", |b| {
        b.iter(|| bench::one_run_cycles(&workload, defenses::DefenseKind::MuonTrap, &config))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
