//! Throughput bench for the figure7 harness (no external harness: the
//! build runs offline, so criterion is unavailable). Regenerates the series
//! at tiny scale serially and in parallel and reports wall-clock times, so
//! simulator-throughput and session-scaling regressions are visible. The
//! full-scale series is produced by the `fig7` binary.
use std::time::Instant;

fn timed(label: &str, threads: usize) -> f64 {
    let config = simkit::config::SystemConfig::small_test();
    let started = Instant::now();
    let report = bench::figure7(workloads::Scale::Tiny, &config, threads, None);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    println!(
        "fig7_invalidate_rate/{label}: {elapsed_ms:.1} ms wall, {} cells, {} baseline sims",
        report.cells.len(),
        report.baseline_sims
    );
    elapsed_ms
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    timed("serial", 1);
    timed(&format!("parallel-{threads}"), threads);
}
