//! End-to-end acceptance for the HTML evaluation report.
//!
//! Drives the real binaries the way CI and readers do:
//!
//! * `report --html` (cold store) must write a self-contained document with
//!   one SVG chart per [`bench::FIGURE_NAMES`] entry plus the domain-switch
//!   summary table;
//! * the warm-store re-render must be served entirely from the store and say
//!   so in the per-figure provenance lines;
//! * `merge --html` over an event log must produce the same artefact a
//!   direct run produces, because merged reports are bit-identical.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "muontrap-html-report-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(binary: &str, args: &[&str]) -> String {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("{binary} spawns: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// The self-containment contract CI enforces on the artifact: nothing
/// URL-shaped, no scripts, no external stylesheets.
fn assert_self_contained(html: &str) {
    assert!(!html.contains("http"), "external URL in report");
    assert!(!html.contains("<script"), "script in report");
    assert!(!html.contains("<link"), "external stylesheet in report");
    assert!(!html.contains("@import"), "CSS import in report");
}

#[test]
fn report_html_covers_every_figure_and_rerenders_from_the_warm_store() {
    let dir = temp_dir("report");
    let store = dir.join("store");
    let html_path = dir.join("report.html");

    // Cold run: fills the store, writes the HTML and still emits the JSON
    // document on stdout.
    let stdout = run_ok(
        env!("CARGO_BIN_EXE_report"),
        &[
            "--scale",
            "tiny",
            "--store",
            store.to_str().unwrap(),
            "--html",
            html_path.to_str().unwrap(),
            "--run-id",
            "cold-run",
        ],
    );
    assert!(
        stdout.contains("\"figures\""),
        "JSON document still printed"
    );
    let html = std::fs::read_to_string(&html_path).expect("HTML artefact written");
    assert!(html.starts_with("<!doctype html>"));
    assert_eq!(
        html.matches("<svg ").count(),
        bench::FIGURE_NAMES.len(),
        "one chart per figure"
    );
    assert!(
        html.contains("Domain-switch summary"),
        "domain table present"
    );
    assert!(html.contains("syscall-storm") && html.contains("sandbox-hop"));
    assert!(html.contains("run cold-run"), "provenance stamped");
    assert_self_contained(&html);

    // Warm run: --html-only, zero simulations, and the provenance says so.
    let warm_path = dir.join("warm.html");
    let stdout = run_ok(
        env!("CARGO_BIN_EXE_report"),
        &[
            "--scale",
            "tiny",
            "--store",
            store.to_str().unwrap(),
            "--html",
            warm_path.to_str().unwrap(),
            "--html-only",
            "--run-id",
            "warm-run",
        ],
    );
    assert!(stdout.trim().is_empty(), "--html-only suppresses stdout");
    let warm = std::fs::read_to_string(&warm_path).expect("warm HTML written");
    assert_eq!(warm.matches("<svg ").count(), bench::FIGURE_NAMES.len());
    // "cells: 0 simulated", not bare "0 simulated": the latter is also a
    // suffix of "10 simulated" and would false-pass on a partially cold
    // store.
    assert_eq!(
        warm.matches("cells: 0 simulated").count(),
        bench::FIGURE_NAMES.len(),
        "every figure served from the warm store"
    );
    assert!(warm.contains("hit rate 1"));
    assert_self_contained(&warm);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_html_reproduces_the_direct_figure_artefact() {
    let dir = temp_dir("merge");
    let store = dir.join("store");
    let events = dir.join("events.jsonl");
    let direct_path = dir.join("direct.html");
    let merged_path = dir.join("merged.html");

    // A direct run of one figure (the small Parsec-like grid), streaming
    // its event log.
    run_ok(
        env!("CARGO_BIN_EXE_fig4"),
        &[
            "--scale",
            "tiny",
            "--store",
            store.to_str().unwrap(),
            "--events",
            events.to_str().unwrap(),
            "--html",
            direct_path.to_str().unwrap(),
            "--html-only",
            "--run-id",
            "same-run",
        ],
    );
    // Folding that single complete log must render the identical page
    // (modulo wall clock, which lives in the provenance line).
    run_ok(
        env!("CARGO_BIN_EXE_merge"),
        &[
            "--figure",
            "fig4",
            "--scale",
            "tiny",
            "--run-id",
            "same-run",
            "--html",
            merged_path.to_str().unwrap(),
            "--html-only",
            events.to_str().unwrap(),
        ],
    );
    let strip_provenance = |html: &str| -> String {
        html.lines()
            .filter(|line| !line.contains("class=\"provenance\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let direct = std::fs::read_to_string(&direct_path).expect("direct HTML");
    let merged = std::fs::read_to_string(&merged_path).expect("merged HTML");
    assert_eq!(
        strip_provenance(&direct),
        strip_provenance(&merged),
        "merge --html must reproduce the direct artefact"
    );
    assert_self_contained(&merged);

    std::fs::remove_dir_all(&dir).ok();
}
