//! Acceptance tests for the session-backed figure harness:
//!
//! * figure 3 costs exactly one `Unprotected` simulation per workload,
//! * parallel and serial grid runs are result-identical, and parallelism
//!   pays off wherever the host actually has more than one core,
//! * the `fig3 --json` binary output parses back into a [`RunReport`].

use std::process::Command;

use simkit::config::SystemConfig;
use simkit::json::{self, FromJson};
use simsys::session::RunReport;
use workloads::Scale;

#[test]
fn figure3_runs_exactly_one_baseline_simulation_per_workload() {
    let config = SystemConfig::small_test();
    let report = bench::figure3(Scale::Tiny, &config, 2, None);
    assert_eq!(
        report.baseline_sims,
        report.workloads.len(),
        "figure 3 must run one Unprotected baseline per workload, no more"
    );
    // Five protected columns per workload, all normalised against that one
    // baseline run.
    assert_eq!(report.columns.len(), 5);
    for w in 0..report.workloads.len() {
        let baseline = report.cell(w, 0).baseline_cycles;
        assert!(baseline > 0);
        for c in 1..report.columns.len() {
            assert_eq!(report.cell(w, c).baseline_cycles, baseline);
        }
    }
}

#[test]
fn four_thread_figure3_matches_serial_and_wins_on_multicore_hosts() {
    let config = SystemConfig::small_test();
    let serial = bench::figure3(Scale::Tiny, &config, 1, None);
    let parallel = bench::figure3(Scale::Tiny, &config, 4, None);
    assert_eq!(
        serial.cells, parallel.cells,
        "thread count must not change results"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        // Tiny-scale runtimes are small enough that scheduling noise on a
        // loaded host can flip a single measurement; require the win on the
        // best of a few attempts rather than one shot.
        let mut timings = vec![(serial.wall_clock_ms, parallel.wall_clock_ms)];
        for _ in 0..2 {
            let (best_serial, best_parallel) = best_of(&timings);
            if best_parallel < best_serial {
                break;
            }
            timings.push((
                bench::figure3(Scale::Tiny, &config, 1, None).wall_clock_ms,
                bench::figure3(Scale::Tiny, &config, 4, None).wall_clock_ms,
            ));
        }
        let (best_serial, best_parallel) = best_of(&timings);
        assert!(
            best_parallel < best_serial,
            "4 threads (best {best_parallel:.0} ms) should beat 1 thread \
             (best {best_serial:.0} ms) on a {cores}-core host; attempts: {timings:?}"
        );
    } else {
        // A single-core host cannot demonstrate the speedup; result equality
        // above is the meaningful check there.
        eprintln!(
            "single-core host: serial {:.0} ms vs 4-thread {:.0} ms (speedup not asserted)",
            serial.wall_clock_ms, parallel.wall_clock_ms
        );
    }
}

fn best_of(timings: &[(f64, f64)]) -> (f64, f64) {
    let best_serial = timings
        .iter()
        .map(|(s, _)| *s)
        .fold(f64::INFINITY, f64::min);
    let best_parallel = timings
        .iter()
        .map(|(_, p)| *p)
        .fold(f64::INFINITY, f64::min);
    (best_serial, best_parallel)
}

#[test]
fn fig3_json_output_parses_back_into_a_run_report() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(["--json", "--scale", "tiny", "--threads", "2"])
        .output()
        .expect("fig3 binary runs");
    assert!(output.status.success(), "fig3 --json failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).expect("fig3 emits UTF-8");
    let parsed = json::parse(&stdout).expect("fig3 --json emits valid JSON");
    let report = RunReport::from_json(&parsed).expect("fig3 --json is a RunReport");
    assert_eq!(report.scale.as_deref(), Some("tiny"));
    assert_eq!(report.threads, 2);
    assert_eq!(
        report.cells.len(),
        report.workloads.len() * report.columns.len()
    );
    assert_eq!(report.baseline_sims, report.workloads.len());
    assert!(report.cells.iter().all(|cell| cell.completed));
}
