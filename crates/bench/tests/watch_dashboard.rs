//! Acceptance tests for the live fleet dashboard (`merge --watch`) and the
//! self-refreshing live report (`merge --html-live`):
//!
//! * golden single-frame snapshots of `merge --watch --once` over synthetic
//!   shard logs (regenerate with `MUONTRAP_REGEN_WATCH_GOLDENS=1`);
//! * seeded property tests: frames are NaN/inf-free for arbitrary event
//!   interleavings, zero-shard views render, stalled shards are flagged, and
//!   [`LogTail`] reassembles logs delivered in mid-line fragments exactly as
//!   a strict whole-file parse would;
//! * binary end-to-end: over a complete log, `--html-live` converges to a
//!   page byte-identical to `merge --html`, while the intermediate page from
//!   a truncated log self-refreshes without tripping the no-external-refs
//!   gate.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;

use bench::watch::{render_frame, FleetView, LogTail, WatchOptions};
use simkit::config::SystemConfig;
use simkit::json::ToJson;
use simkit::rng::SimRng;
use simsys::runner::{self, Plan, RunEvent, ShardOptions, WorkUnit};
use simsys::store::ResultStore;
use workloads::Scale;

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "muontrap-watch-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn check_golden(name: &str, produced: &str) {
    let path = golden_path(name);
    if std::env::var_os("MUONTRAP_REGEN_WATCH_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, produced).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with MUONTRAP_REGEN_WATCH_GOLDENS=1",
            path.display()
        )
    });
    assert!(
        produced == golden,
        "{name} diverges from its golden snapshot. If the change is intentional, \
         regenerate with MUONTRAP_REGEN_WATCH_GOLDENS=1 and review the diff.\n\
         produced:\n{produced}\ngolden:\n{golden}"
    );
}

/// The plan every scenario runs against: the domain-switch figure at tiny
/// scale — the same derivation `merge --figure domain --scale tiny` makes.
fn domain_plan() -> Plan {
    let config = SystemConfig::paper_default();
    bench::figure_session("domain", Scale::Tiny, &config, 2, None)
        .expect("domain figure is registered")
        .plan()
}

fn claimed(unit: &WorkUnit, shard: usize, stolen: bool, t_ms: u64) -> RunEvent {
    RunEvent::Claimed {
        shard,
        kind: unit.kind,
        index: unit.index,
        fingerprint: unit.fingerprint,
        stolen,
        t_ms: Some(t_ms),
    }
}

fn completed(unit: &WorkUnit, shard: usize, t_ms: u64) -> RunEvent {
    RunEvent::Completed {
        shard,
        kind: unit.kind,
        index: unit.index,
        fingerprint: unit.fingerprint,
        cell: None,
        t_ms: Some(t_ms),
        sim_ms: None,
    }
}

fn cached(unit: &WorkUnit, shard: usize, t_ms: u64) -> RunEvent {
    RunEvent::Cached {
        shard,
        kind: unit.kind,
        index: unit.index,
        fingerprint: unit.fingerprint,
        cell: None,
        t_ms: Some(t_ms),
    }
}

fn write_log(path: &PathBuf, events: &[RunEvent]) {
    let mut text = String::new();
    for event in events {
        text.push_str(&event.to_json().to_string_compact());
        text.push('\n');
    }
    std::fs::write(path, text).expect("write event log");
}

/// Runs `merge --figure domain --scale tiny --watch --once` over the logs
/// and returns the (deterministic) frame it prints.
fn once_frame(logs: &[&PathBuf]) -> String {
    let mut args = vec![
        "--figure".to_string(),
        "domain".to_string(),
        "--scale".to_string(),
        "tiny".to_string(),
        "--watch".to_string(),
        "--once".to_string(),
    ];
    args.extend(logs.iter().map(|p| p.to_str().unwrap().to_string()));
    let output = Command::new(env!("CARGO_BIN_EXE_merge"))
        .args(&args)
        .output()
        .expect("merge binary runs");
    assert!(
        output.status.success(),
        "merge --watch --once failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 frame")
}

// ---------------------------------------------------------------------------
// Golden single-frame snapshots of `merge --watch --once`.
// ---------------------------------------------------------------------------

#[test]
fn once_frame_midrun_with_a_stalled_shard_matches_its_golden() {
    let dir = temp_dir("golden-midrun");
    let plan = domain_plan();

    // Shard 0 works steadily and is still alive at the frame's pinned "now"
    // (the newest stamp, 60s). Shard 1 resolved two baselines from cache,
    // stole a lease doing so, then went silent at t=2.5s — 57.5s of silence
    // against a 15s stall threshold.
    let mut shard0 = Vec::new();
    let half = plan.cells.len() / 2;
    for (i, unit) in plan.cells.iter().take(half).enumerate() {
        let t = 1_000 * (i as u64 + 1);
        shard0.push(claimed(unit, 0, false, t));
        shard0.push(completed(unit, 0, t + 200));
    }
    shard0.push(RunEvent::Heartbeat {
        shard: 0,
        units_done: half,
        units_total: plan.baselines.len() + plan.cells.len(),
        t_ms: Some(60_000),
    });

    let mut shard1 = Vec::new();
    for (i, unit) in plan.baselines.iter().take(2).enumerate() {
        shard1.push(claimed(unit, 1, i == 0, 2_000 + i as u64 * 250));
        shard1.push(cached(unit, 1, 2_000 + i as u64 * 250 + 50));
    }

    let log0 = dir.join("shard0.jsonl");
    let log1 = dir.join("shard1.jsonl");
    write_log(&log0, &shard0);
    write_log(&log1, &shard1);

    let frame = once_frame(&[&log0, &log1]);
    assert!(frame.contains("STALLED"), "shard 1 went silent: {frame}");
    assert!(frame.contains("running"), "shard 0 is alive: {frame}");
    check_golden("watch_midrun_stalled.txt", &frame);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn once_frame_for_a_complete_fleet_matches_its_golden() {
    let dir = temp_dir("golden-complete");
    let plan = domain_plan();

    // Both shards walk disjoint halves to completion and sign off.
    let mut shard0 = Vec::new();
    let mut shard1 = Vec::new();
    let units: Vec<&WorkUnit> = plan.baselines.iter().chain(plan.cells.iter()).collect();
    for (i, unit) in units.iter().enumerate() {
        let shard = i % 2;
        let t = 500 * (i as u64 + 1);
        let log = if shard == 0 { &mut shard0 } else { &mut shard1 };
        log.push(claimed(unit, shard, false, t));
        log.push(completed(unit, shard, t + 100));
    }
    shard0.push(RunEvent::ShardDone {
        shard: 0,
        sims_executed: shard0.len() / 2,
        wall_clock_ms: 4_200.0,
        t_ms: Some(9_000),
    });
    shard1.push(RunEvent::ShardDone {
        shard: 1,
        sims_executed: shard1.len() / 2,
        wall_clock_ms: 3_900.0,
        t_ms: Some(9_100),
    });

    let log0 = dir.join("shard0.jsonl");
    let log1 = dir.join("shard1.jsonl");
    write_log(&log0, &shard0);
    write_log(&log1, &shard1);

    let frame = once_frame(&[&log0, &log1]);
    assert_eq!(
        frame.matches("done (").count(),
        2,
        "both shards signed off with a wall clock: {frame}"
    );
    assert!(frame.contains("(100%)"), "fleet complete: {frame}");
    check_golden("watch_complete.txt", &frame);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn once_frame_over_an_empty_log_matches_its_golden() {
    let dir = temp_dir("golden-empty");
    let log = dir.join("shard0.jsonl");
    std::fs::write(&log, "").expect("empty log");
    let frame = once_frame(&[&log]);
    assert!(
        frame.contains("no shard activity yet"),
        "empty log renders the waiting line: {frame}"
    );
    check_golden("watch_empty.txt", &frame);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Seeded property tests over the fold and renderer.
// ---------------------------------------------------------------------------

/// A pseudo-random soup of events: arbitrary shards, kinds, indices,
/// timestamps (some missing), steals, heartbeats and sign-offs.
fn random_events(rng: &mut SimRng, plan: &Plan) -> Vec<RunEvent> {
    let mut events = Vec::new();
    for _ in 0..rng.below(60) {
        let shard = rng.below(4) as usize;
        let t_ms = (rng.below(4) > 0).then(|| rng.below(100_000));
        let from_cells = !plan.cells.is_empty() && rng.below(2) == 0;
        let unit = if from_cells {
            &plan.cells[rng.below(plan.cells.len() as u64) as usize]
        } else {
            &plan.baselines[rng.below(plan.baselines.len() as u64) as usize]
        };
        events.push(match rng.below(5) {
            0 => RunEvent::Claimed {
                shard,
                kind: unit.kind,
                index: unit.index,
                fingerprint: unit.fingerprint,
                stolen: rng.below(3) == 0,
                t_ms,
            },
            1 => RunEvent::Heartbeat {
                shard,
                units_done: rng.below(20) as usize,
                units_total: plan.baselines.len() + plan.cells.len(),
                t_ms,
            },
            2 => RunEvent::ShardDone {
                shard,
                sims_executed: rng.below(20) as usize,
                wall_clock_ms: rng.next_f64() * 10_000.0,
                t_ms,
            },
            3 => RunEvent::Cached {
                shard,
                kind: unit.kind,
                index: unit.index,
                fingerprint: unit.fingerprint,
                cell: None,
                t_ms,
            },
            _ => RunEvent::Completed {
                shard,
                kind: unit.kind,
                index: unit.index,
                fingerprint: unit.fingerprint,
                cell: None,
                t_ms,
                sim_ms: (rng.below(2) == 0).then(|| rng.below(600_000)),
            },
        });
    }
    events
}

#[test]
fn frames_never_leak_nan_or_inf_for_arbitrary_event_soups() {
    let plan = domain_plan();
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from(seed);
        let events = random_events(&mut rng, &plan);
        let opts = WatchOptions {
            now_ms: Some(rng.below(200_000)),
            ..WatchOptions::default()
        };
        let view = FleetView::fold(&plan, &events, &opts);
        let frame = render_frame(&view, &opts);
        assert!(
            !frame.contains("NaN") && !frame.contains("inf"),
            "seed {seed}: non-finite value leaked into the frame:\n{frame}"
        );
        if let Some(eta) = view.eta_ms() {
            assert!(eta < u64::MAX / 2, "seed {seed}: ETA overflowed: {eta}");
        }
    }
}

#[test]
fn a_view_with_no_events_renders_and_reports_incomplete() {
    let plan = domain_plan();
    let opts = WatchOptions {
        now_ms: Some(0),
        ..WatchOptions::default()
    };
    let view = FleetView::fold(&plan, &[], &opts);
    assert!(!view.complete());
    assert_eq!(view.resolved_units, 0);
    assert!(view.shards.is_empty());
    assert!(view.eta_ms().is_none(), "no rate, no ETA");
    let frame = render_frame(&view, &opts);
    assert!(frame.contains("no shard activity yet"));
    assert!(!frame.contains("NaN"));
}

#[test]
fn a_dead_shard_reads_as_stalled_and_a_timestampless_one_never_does() {
    let plan = domain_plan();
    let unit = &plan.baselines[0];
    // Shard 0 last spoke at t=1s; shard 1's events carry no stamps at all
    // (a legacy log) so it has no liveness signal to age out.
    let events = vec![
        completed(unit, 0, 1_000),
        RunEvent::Completed {
            shard: 1,
            kind: unit.kind,
            index: unit.index,
            fingerprint: unit.fingerprint,
            cell: None,
            t_ms: None,
            sim_ms: None,
        },
    ];
    let opts = WatchOptions {
        stall_after_ms: 5_000,
        now_ms: Some(60_000),
        ..WatchOptions::default()
    };
    let view = FleetView::fold(&plan, &events, &opts);
    let stalled = view.shards[&0].state_label(view.now_ms, opts.stall_after_ms);
    assert!(stalled.starts_with("STALLED"), "got {stalled}");
    assert_eq!(
        view.shards[&1].state_label(view.now_ms, opts.stall_after_ms),
        "running"
    );
}

#[test]
fn shard_sim_latency_percentiles_fold_and_render_only_when_reported() {
    let plan = domain_plan();
    let unit = &plan.baselines[0];
    let timed = |shard: usize, t_ms: u64, sim_ms: u64| RunEvent::Completed {
        shard,
        kind: unit.kind,
        index: unit.index,
        fingerprint: unit.fingerprint,
        cell: None,
        t_ms: Some(t_ms),
        sim_ms: Some(sim_ms),
    };
    // Shard 0 reports timings (100..=2000ms); shard 1 is a legacy stream.
    let mut events: Vec<RunEvent> = (1..=20u64).map(|i| timed(0, i * 10, i * 100)).collect();
    events.push(completed(unit, 1, 900));
    let opts = WatchOptions {
        now_ms: Some(1_000),
        ..WatchOptions::default()
    };
    let view = FleetView::fold(&plan, &events, &opts);
    let (p50, p95) = view.shards[&0]
        .sim_latency_p50_p95()
        .expect("timed shard has percentiles");
    assert!((900..=1100).contains(&p50), "p50 near the median: {p50}");
    assert!(p95 >= 1900, "p95 in the tail: {p95}");
    assert_eq!(view.shards[&1].sim_latency_p50_p95(), None);
    let frame = render_frame(&view, &opts);
    assert_eq!(
        frame.matches("sim p50/p95").count(),
        1,
        "only the timed shard shows latency: {frame}"
    );
}

#[test]
fn log_tail_reassembles_fragmented_writes_exactly_like_a_strict_parse() {
    let dir = temp_dir("tail");
    let plan = domain_plan();
    for seed in 0..16u64 {
        let mut rng = SimRng::seed_from(0xF00D + seed);
        let events = random_events(&mut rng, &plan);
        let mut text = String::new();
        for event in &events {
            text.push_str(&event.to_json().to_string_compact());
            text.push('\n');
        }
        let path = dir.join(format!("frag-{seed}.jsonl"));
        let mut tail = LogTail::new(&path);
        assert_eq!(tail.poll().expect("missing file is fine"), 0);

        // Deliver the log in random-sized fragments — including cuts in the
        // middle of a JSON line — polling after every append, the way a
        // watcher races a live writer.
        let bytes = text.as_bytes();
        let mut written = 0usize;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open log for append");
        while written < bytes.len() {
            let chunk = (rng.below(40) as usize + 1).min(bytes.len() - written);
            file.write_all(&bytes[written..written + chunk])
                .expect("append");
            file.flush().expect("flush");
            written += chunk;
            tail.poll().expect("poll");
        }

        let strict = runner::read_events(std::io::BufReader::new(
            std::fs::File::open(&path).expect("reopen"),
        ))
        .expect("strict parse of the complete log");
        assert_eq!(tail.events.len(), events.len(), "seed {seed}");
        assert_eq!(tail.malformed, 0, "seed {seed}");
        assert_eq!(
            tail.events
                .iter()
                .map(|e| e.to_json().to_string_compact())
                .collect::<Vec<_>>(),
            strict
                .iter()
                .map(|e| e.to_json().to_string_compact())
                .collect::<Vec<_>>(),
            "seed {seed}: tail and strict parse disagree"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn log_tail_resets_when_the_file_shrinks_and_skips_garbage_lines() {
    let dir = temp_dir("tail-reset");
    let plan = domain_plan();
    let path = dir.join("log.jsonl");
    let unit = &plan.baselines[0];

    let line = |e: &RunEvent| format!("{}\n", e.to_json().to_string_compact());
    std::fs::write(
        &path,
        format!(
            "{}not json\n{}",
            line(&completed(unit, 0, 1)),
            line(&cached(unit, 0, 2))
        ),
    )
    .expect("write");
    let mut tail = LogTail::new(&path);
    tail.poll().expect("poll");
    assert_eq!(tail.events.len(), 2);
    assert_eq!(tail.malformed, 1, "the garbage line is counted, not fatal");

    // A restarted shard truncates its log: the tail must drop everything it
    // believed and re-read from scratch.
    std::fs::write(&path, line(&completed(unit, 3, 9))).expect("truncate");
    tail.poll().expect("poll after shrink");
    assert_eq!(tail.events.len(), 1);
    assert_eq!(tail.malformed, 0);
    assert_eq!(tail.events[0].shard(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Binary end-to-end: --html-live convergence and self-containedness.
// ---------------------------------------------------------------------------

fn assert_self_contained(html: &str) {
    for needle in ["http", "<script", "<link", "@import"] {
        assert!(!html.contains(needle), "`{needle}` found in live page");
    }
}

#[test]
fn html_live_converges_byte_identical_to_merge_html_and_self_refreshes_before_that() {
    let dir = temp_dir("live");
    let config = SystemConfig::paper_default();
    let store = ResultStore::open(dir.join("store")).expect("store opens");
    let session = bench::figure_session("domain", Scale::Tiny, &config, 2, Some(&store))
        .expect("domain figure is registered");

    // One real shard produces the complete event log.
    let mut sink: Vec<u8> = Vec::new();
    session
        .run_sharded(&ShardOptions::new(0, 1, "watch-e2e"), &mut sink)
        .expect("sharded run succeeds");
    let log = dir.join("shard0.jsonl");
    std::fs::write(&log, &sink).expect("write log");

    let merge = |extra: &[&str]| {
        let mut args = vec![
            "--figure",
            "domain",
            "--scale",
            "tiny",
            "--run-id",
            "watch-e2e",
        ];
        args.extend_from_slice(extra);
        args.push(log.to_str().unwrap());
        let output = Command::new(env!("CARGO_BIN_EXE_merge"))
            .args(&args)
            .output()
            .expect("merge binary runs");
        assert!(
            output.status.success(),
            "merge {args:?} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
    };

    // The reference artefact: a strict post-hoc merge.
    let html_path = dir.join("merged.html");
    merge(&["--html", html_path.to_str().unwrap(), "--html-only"]);
    let reference = std::fs::read_to_string(&html_path).expect("merged html");

    // A watch over the complete log converges in one frame and must leave
    // the *identical* bytes behind — no refresh tag, no live intro.
    let live_path = dir.join("live.html");
    merge(&["--once", "--html-live", live_path.to_str().unwrap()]);
    let converged = std::fs::read_to_string(&live_path).expect("live html");
    assert_eq!(
        converged, reference,
        "a completed --html-live page must be byte-identical to merge --html"
    );
    assert!(
        !converged.contains("HTTP-EQUIV"),
        "no refresh once complete"
    );

    // A truncated log (the fleet mid-run) must yield the self-refreshing
    // intermediate page — still passing the no-external-refs gate.
    let full = std::fs::read_to_string(&log).expect("log text");
    let head: String = full.lines().take(5).map(|l| format!("{l}\n")).collect();
    std::fs::write(&log, head).expect("truncate log");
    merge(&["--once", "--html-live", live_path.to_str().unwrap()]);
    let partial = std::fs::read_to_string(&live_path).expect("partial html");
    assert!(
        partial.contains("<meta HTTP-EQUIV=\"refresh\""),
        "intermediate page self-refreshes"
    );
    assert!(
        partial.contains("LIVE:"),
        "intermediate page says it is live"
    );
    assert_self_contained(&partial);
    std::fs::remove_dir_all(&dir).ok();
}
