//! Acceptance tests for the content-addressed result store, end to end:
//!
//! * regenerating a figure against a warm store performs **zero**
//!   simulations and reproduces every cell exactly,
//! * the `fig3` binary's `--store` flag round-trips the same guarantee
//!   across two separate processes,
//! * `--no-store` really disables persistence.

use std::path::PathBuf;
use std::process::Command;

use simkit::config::SystemConfig;
use simkit::json::{self, FromJson};
use simsys::session::RunReport;
use simsys::store::ResultStore;
use workloads::Scale;

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "muontrap-bench-store-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

/// The payload of a cell minus its store provenance, for cold/warm equality.
fn payload(report: &RunReport) -> Vec<(String, String, u64, u64, f64)> {
    report
        .cells
        .iter()
        .map(|c| {
            (
                c.workload.clone(),
                c.column.clone(),
                c.cycles,
                c.baseline_cycles,
                c.normalized_time,
            )
        })
        .collect()
}

#[test]
fn warm_store_figure_regeneration_runs_zero_simulations() {
    let dir = temp_dir("figure3");
    let config = SystemConfig::small_test();
    let store = ResultStore::open(&dir).expect("store opens");

    let cold = bench::figure3(Scale::Tiny, &config, 2, Some(&store));
    assert!(cold.sims_executed > 0);
    assert_eq!(cold.cached_cells(), 0);
    // Everything the grid paid for is now on disk.
    assert_eq!(store.len(), cold.sims_executed);

    let warm = bench::figure3(Scale::Tiny, &config, 2, Some(&store));
    assert_eq!(
        warm.sims_executed, 0,
        "second figure3 against a warm store must not simulate"
    );
    assert_eq!(warm.baseline_sims, 0);
    assert!(warm.cells.iter().all(|cell| cell.cached));
    assert_eq!(warm.cache_hit_rate(), 1.0);
    assert_eq!(payload(&cold), payload(&warm));
    assert_eq!(cold.geomeans(), warm.geomeans());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_figures_share_baseline_entries_through_the_store() {
    let dir = temp_dir("sweep");
    let config = SystemConfig::small_test();
    let store = ResultStore::open(&dir).expect("store opens");

    // Figure 5 sweeps filter-cache sizes; its baselines are canonicalised, so
    // figure 6 (associativity sweep, same workloads, same canonical baseline
    // machine) must reuse them from the store and only pay for its own cells.
    let fig5 = bench::figure5(Scale::Tiny, &config, 2, Some(&store));
    assert!(fig5.baseline_sims > 0);
    let fig6 = bench::figure6(Scale::Tiny, &config, 2, Some(&store));
    assert_eq!(
        fig6.baseline_sims, 0,
        "figure 6 baselines must come from figure 5's store entries"
    );
    // Cross-figure cell sharing: figure 6's 32-way point on a 2 KiB filter is
    // byte-for-byte figure 5's fully-associative 2 KiB point, so it hits too;
    // every other sweep point is new and simulates.
    for (w, name) in fig6.workloads.iter().enumerate() {
        for (c, column) in fig6.columns.iter().enumerate() {
            let cell = fig6.cell(w, c);
            assert_eq!(
                cell.cached,
                column == "32-way",
                "unexpected provenance for {name}/{column}"
            );
        }
    }
    assert_eq!(fig6.sims_executed, fig6.cells.len() - fig6.cached_cells());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig3_binary_store_flag_survives_across_processes() {
    let dir = temp_dir("binary");
    let run = |extra: &[&str]| -> RunReport {
        let mut args = vec!["--json", "--scale", "tiny", "--threads", "2"];
        args.extend_from_slice(extra);
        let output = Command::new(env!("CARGO_BIN_EXE_fig3"))
            .args(&args)
            .output()
            .expect("fig3 binary runs");
        assert!(output.status.success(), "fig3 {args:?} failed: {output:?}");
        let stdout = String::from_utf8(output.stdout).expect("fig3 emits UTF-8");
        RunReport::from_json(&json::parse(&stdout).expect("valid JSON")).expect("a RunReport")
    };

    let store_flag = dir.to_str().expect("temp dir is UTF-8").to_string();
    let cold = run(&["--store", &store_flag]);
    assert!(cold.sims_executed > 0);
    assert!(cold.cells.iter().all(|cell| !cell.cached));

    let warm = run(&["--store", &store_flag]);
    assert_eq!(
        warm.sims_executed, 0,
        "a second fig3 process against the same store must not simulate"
    );
    assert!(warm.cells.iter().all(|cell| cell.cached));
    assert_eq!(payload(&cold), payload(&warm));

    // --no-store after --store must ignore the warm store entirely.
    let opted_out = run(&["--store", &store_flag, "--no-store"]);
    assert!(opted_out.sims_executed > 0);
    assert!(opted_out.cells.iter().all(|cell| !cell.cached));

    std::fs::remove_dir_all(&dir).ok();
}
