//! End-to-end smoke tests for the `fleet` shard supervisor binary.
//!
//! These drive the real binaries (`fleet` supervising real `shard` child
//! processes) over a real filesystem store: the happy path, the
//! kill-one-shard-mid-run recovery path (via the deterministic
//! `MUONTRAP_SHARD_EXIT_AFTER_EVENTS` crash hook behind `--kill-shard`),
//! the warm-store resume, and the incomplete-merge exit code.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "muontrap-fleet-smoke-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

fn fleet_cmd(store: &std::path::Path, run_id: &str, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fleet"));
    cmd.arg("--figure")
        .arg("fig5")
        .arg("--scale")
        .arg("tiny")
        .arg("--threads")
        .arg("1")
        .arg("--shards")
        .arg("2")
        .arg("--lease-ttl-ms")
        .arg("400")
        .arg("--store")
        .arg(store)
        .arg("--run-id")
        .arg(run_id)
        .arg("--shard-bin")
        .arg(env!("CARGO_BIN_EXE_shard"))
        .args(extra);
    cmd
}

fn report_field(stdout: &str, field: &str) -> simkit::json::Json {
    let report = simkit::json::parse(stdout).expect("fleet prints the merged report as JSON");
    report.get(field).cloned().unwrap_or_else(|| {
        panic!(
            "merged report is missing `{field}`: {}",
            &stdout[..stdout.len().min(400)]
        )
    })
}

#[test]
fn fleet_survives_a_killed_shard_and_completes_the_merge() {
    let dir = temp_dir("kill");
    let store = dir.join("store");
    // Shard 1's first attempt aborts (exit 17) after flushing 3 events.
    let output = fleet_cmd(&store, "smoke-kill", &["--kill-shard", "1:3"])
        .output()
        .expect("fleet runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "fleet must survive a killed shard; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("restarting (attempt 1)"),
        "the killed shard must be restarted; stderr:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        report_field(&stdout, "title").as_str(),
        Some("Figure 5: filter-cache size sweep (fully associative), Parsec-like"),
    );
    // Both the crashed attempt's partial log and the replacement's log are
    // kept — the merge folded all three.
    let logs = store.join(".fleet").join("smoke-kill");
    for name in ["shard0-a0.jsonl", "shard1-a0.jsonl", "shard1-a1.jsonl"] {
        assert!(logs.join(name).is_file(), "missing attempt log {name}");
    }

    // Warm resume: a second fleet over the same store, new run id, must
    // complete with zero simulations — every cell served from the store.
    let output = fleet_cmd(&store, "smoke-warm", &[])
        .output()
        .expect("fleet runs");
    assert!(
        output.status.success(),
        "warm fleet failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        report_field(&stdout, "sims_executed").as_u64(),
        Some(0),
        "a warm store must serve the whole grid without one simulation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_unrecoverable_shard_leaves_an_incomplete_merge_and_a_nonzero_exit() {
    let dir = temp_dir("exhausted");
    let store = dir.join("store");
    // One shard, zero restarts, killed almost immediately: nobody is left
    // to finish the grid, so the merge is incomplete and the exit nonzero.
    let output = fleet_cmd(
        &store,
        "smoke-dead",
        &[
            "--shards",
            "1",
            "--max-restarts",
            "0",
            "--kill-shard",
            "0:2",
        ],
    )
    .output()
    .expect("fleet runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "incomplete merge must exit 1; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("merge incomplete"),
        "stderr must say why:\n{stderr}"
    );
    assert!(
        stderr.contains("no restarts left"),
        "the exhausted restart budget must be reported:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
