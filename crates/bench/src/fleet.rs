//! The `fleet` supervisor: N local shard processes, one grid, one merge.
//!
//! [`supervise`] spawns `--shards` copies of the `shard` binary against one
//! shared store, each claiming work units through the store's expiring
//! leases (see [`simsys::store`]), and babysits them to completion:
//!
//! * each shard streams its JSONL event log under the fleet's log
//!   directory (`shard<i>-a<attempt>.jsonl`, one file per attempt);
//! * the supervisor tails every log with the [`crate::watch`] machinery and
//!   prints a live one-line status (resolved units, executed vs cached,
//!   lease steals, live shards) to stderr;
//! * a shard that exits nonzero is restarted — up to `--max-restarts`
//!   times — with a fresh attempt log; its expired leases are stolen by the
//!   replacement (or by its peers), so no unit is lost and none re-runs;
//! * when the last child exits, all attempt logs (including the partial
//!   logs of crashed attempts) are folded with
//!   [`runner::merge_events`] into the
//!   figure's merged [`RunReport`]. An incomplete merge — any grid cell no
//!   attempt resolved — is reported as such, and the `fleet` binary exits
//!   nonzero.
//!
//! The supervisor itself holds no locks and owns no protocol state: every
//! crash-recovery guarantee comes from the store's lease protocol, which is
//! exactly what the chaos and property suites pin down. Killing the
//! supervisor mid-run loses nothing either — re-running it with the same
//! `--run-id` resumes from the store.
//!
//! Progress counters land in the process-global [`obs::metrics`] registry
//! under `fleet.shards_spawned`, `fleet.restarts` and `fleet.shards_failed`.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use simkit::config::SystemConfig;
use simsys::runner::{self, RunEvent};
use simsys::session::RunReport;
use workloads::Scale;

use crate::cli;
use crate::watch::{FleetView, LogTail, WatchOptions};

/// Parsed `fleet` command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOptions {
    /// Figure whose grid the fleet chews through (`--figure`).
    pub figure: String,
    /// Shared store directory the shards coordinate through (`--store`).
    pub store: PathBuf,
    /// Run identifier shared by every shard (`--run-id`).
    pub run_id: String,
    /// Number of shard processes (`--shards`, default 2).
    pub shards: usize,
    /// Workload scale (`--scale`, default small).
    pub scale: Scale,
    /// Worker threads per shard (`--threads`; default: cores / shards).
    pub threads: Option<usize>,
    /// Shard lease TTL override (`--lease-ttl-ms`); short TTLs make killed
    /// shards' units reclaimable quickly.
    pub lease_ttl_ms: Option<u64>,
    /// Restarts allowed per shard before it is declared failed
    /// (`--max-restarts`, default 2).
    pub max_restarts: usize,
    /// Child-reaping poll interval (`--poll-ms`, default 200).
    pub poll_ms: u64,
    /// Cadence of the stderr status line (`--status-interval-ms`,
    /// default 1000).
    pub status_interval_ms: u64,
    /// Explicit path to the `shard` binary (`--shard-bin`; default: the
    /// `shard` beside the running `fleet` executable).
    pub shard_bin: Option<PathBuf>,
    /// Directory for the shard event logs (`--log-dir`; default
    /// `<store>/.fleet/<run-id>`, deep enough that the store's own
    /// two-level object listing never sees it).
    pub log_dir: Option<PathBuf>,
    /// Crash-injection hook (`--kill-shard ID:EVENTS`): shard ID's *first*
    /// attempt aborts after flushing EVENTS event lines (the smoke test for
    /// restart + lease-steal recovery). Restarted attempts run normally.
    pub kill_shard: Option<(usize, u64)>,
    /// Append an [`obs::metrics`] snapshot here on exit (`--metrics`).
    pub metrics: Option<PathBuf>,
}

impl FleetOptions {
    /// Parses an argument list (excluding the program name).
    ///
    /// # Errors
    /// Returns a usage message when a flag is unknown, a value is missing
    /// or malformed, or a required flag is absent.
    pub fn parse<I, S>(args: I) -> Result<FleetOptions, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut figure: Option<String> = None;
        let mut store: Option<PathBuf> = None;
        let mut run_id: Option<String> = None;
        let mut options = FleetOptions {
            figure: String::new(),
            store: PathBuf::new(),
            run_id: String::new(),
            shards: 2,
            scale: Scale::Small,
            threads: None,
            lease_ttl_ms: None,
            max_restarts: 2,
            poll_ms: 200,
            status_interval_ms: 1_000,
            shard_bin: None,
            log_dir: None,
            kill_shard: None,
            metrics: None,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| -> Result<String, String> {
                args.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_ref() {
                "--figure" => figure = Some(value("--figure")?),
                "--store" => store = Some(PathBuf::from(value("--store")?)),
                "--run-id" => run_id = Some(value("--run-id")?),
                "--shards" => {
                    options.shards = parse_positive(&value("--shards")?, "--shards")? as usize;
                }
                "--scale" => {
                    options.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?;
                }
                "--threads" => {
                    options.threads =
                        Some(parse_positive(&value("--threads")?, "--threads")? as usize);
                }
                "--lease-ttl-ms" => {
                    options.lease_ttl_ms =
                        Some(parse_positive(&value("--lease-ttl-ms")?, "--lease-ttl-ms")?);
                }
                "--max-restarts" => {
                    let raw = value("--max-restarts")?;
                    options.max_restarts = raw
                        .parse()
                        .map_err(|_| format!("invalid restart count `{raw}`"))?;
                }
                "--poll-ms" => {
                    options.poll_ms = parse_positive(&value("--poll-ms")?, "--poll-ms")?;
                }
                "--status-interval-ms" => {
                    options.status_interval_ms =
                        parse_positive(&value("--status-interval-ms")?, "--status-interval-ms")?;
                }
                "--shard-bin" => options.shard_bin = Some(PathBuf::from(value("--shard-bin")?)),
                "--log-dir" => options.log_dir = Some(PathBuf::from(value("--log-dir")?)),
                "--kill-shard" => {
                    let raw = value("--kill-shard")?;
                    let (id, quota) = raw
                        .split_once(':')
                        .ok_or_else(|| format!("--kill-shard wants ID:EVENTS, got `{raw}`"))?;
                    options.kill_shard = Some((
                        id.parse().map_err(|_| format!("invalid shard id `{id}`"))?,
                        quota
                            .parse()
                            .map_err(|_| format!("invalid event count `{quota}`"))?,
                    ));
                }
                "--metrics" => options.metrics = Some(PathBuf::from(value("--metrics")?)),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        options.figure = figure.ok_or("--figure NAME is required")?;
        options.store = store.ok_or("--store DIR is required (shards coordinate through it)")?;
        options.run_id = run_id.ok_or("--run-id ID is required, unique per logical run")?;
        if options.run_id == cli::DEFAULT_RUN_ID {
            return Err(format!(
                "--run-id must not be the placeholder `{}`",
                cli::DEFAULT_RUN_ID
            ));
        }
        if let Some((victim, _)) = options.kill_shard {
            if victim >= options.shards {
                return Err(format!(
                    "--kill-shard {victim} out of range for --shards {}",
                    options.shards
                ));
            }
        }
        Ok(options)
    }

    /// The effective event-log directory (see [`FleetOptions::log_dir`]).
    pub fn resolved_log_dir(&self) -> PathBuf {
        self.log_dir
            .clone()
            .unwrap_or_else(|| self.store.join(".fleet").join(&self.run_id))
    }
}

fn parse_positive(raw: &str, flag: &str) -> Result<u64, String> {
    let parsed: u64 = raw
        .parse()
        .map_err(|_| format!("invalid value `{raw}` for {flag}"))?;
    if parsed == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(parsed)
}

/// What a supervised run left behind.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The strict merged report — `Some` exactly when every grid cell
    /// resolved.
    pub report: Option<RunReport>,
    /// Why the merge was incomplete, when it was.
    pub merge_error: Option<String>,
    /// Total child processes spawned, restarts included.
    pub spawned: usize,
    /// Restarts performed across all shards.
    pub restarts: usize,
    /// Shards that exhausted their restart budget.
    pub failed_shards: Vec<usize>,
    /// Every attempt's event log, in spawn order.
    pub logs: Vec<PathBuf>,
}

impl FleetOutcome {
    /// True when the merge covered the whole grid — the fleet's success
    /// criterion (a permanently failed shard is fine if its peers finished
    /// the grid).
    pub fn complete(&self) -> bool {
        self.report.is_some()
    }
}

/// One supervised shard slot (a shard keeps its slot across restarts).
struct Slot {
    shard: usize,
    attempt: usize,
    child: Option<Child>,
    restarts_left: usize,
    failed: bool,
}

/// Runs the whole fleet to completion: spawn, watch, restart, merge. See
/// the module docs for the lifecycle.
///
/// # Errors
/// Returns a message when the figure is unknown, the log directory or a
/// child process cannot be created, or the `shard` binary cannot be found.
/// An *incomplete merge* is not an error here — it is reported through
/// [`FleetOutcome::merge_error`] so the caller still gets the logs and
/// accounting.
pub fn supervise(options: &FleetOptions) -> Result<FleetOutcome, String> {
    if options.shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let threads = options.threads.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        (cores / options.shards).max(1)
    });
    let config = SystemConfig::paper_default();
    let Some(session) =
        crate::figure_session(&options.figure, options.scale, &config, threads, None)
    else {
        return Err(format!(
            "unknown figure `{}` (expected one of {})",
            options.figure,
            crate::FIGURE_NAMES.join(", ")
        ));
    };
    let plan = session.plan();
    let log_dir = options.resolved_log_dir();
    std::fs::create_dir_all(&log_dir)
        .map_err(|e| format!("cannot create log directory {}: {e}", log_dir.display()))?;
    let shard_bin = match &options.shard_bin {
        Some(path) => path.clone(),
        None => sibling_shard_bin().map_err(|e| e.to_string())?,
    };

    let metrics = obs::metrics::global();
    let mut slots: Vec<Slot> = Vec::new();
    let mut tails: Vec<LogTail> = Vec::new();
    let mut logs: Vec<PathBuf> = Vec::new();
    let mut spawned = 0usize;
    let mut restarts = 0usize;
    for shard in 0..options.shards {
        let (child, log) = spawn_shard(options, &shard_bin, threads, &log_dir, shard, 0)?;
        spawned += 1;
        metrics.inc("fleet.shards_spawned", &[], 1);
        tails.push(LogTail::new(&log));
        logs.push(log);
        slots.push(Slot {
            shard,
            attempt: 0,
            child: Some(child),
            restarts_left: options.max_restarts,
            failed: false,
        });
    }

    let mut last_status: Option<Instant> = None;
    loop {
        for slot in &mut slots {
            let Some(child) = slot.child.as_mut() else {
                continue;
            };
            let status = match child.try_wait() {
                Ok(None) => continue,
                Ok(Some(status)) => status,
                Err(e) => {
                    // Losing track of a child is unrecoverable for its
                    // slot; its peers (or a later resume) pick up the
                    // units its leases release.
                    eprintln!("fleet: cannot wait on shard {}: {e}", slot.shard);
                    slot.child = None;
                    slot.failed = true;
                    metrics.inc("fleet.shards_failed", &[], 1);
                    continue;
                }
            };
            slot.child = None;
            if status.success() {
                continue;
            }
            if slot.restarts_left == 0 {
                slot.failed = true;
                metrics.inc("fleet.shards_failed", &[], 1);
                eprintln!(
                    "fleet: shard {} exited with {status} and no restarts left",
                    slot.shard
                );
                continue;
            }
            slot.restarts_left -= 1;
            slot.attempt += 1;
            restarts += 1;
            metrics.inc("fleet.restarts", &[], 1);
            eprintln!(
                "fleet: shard {} exited with {status}; restarting (attempt {})",
                slot.shard, slot.attempt
            );
            let (child, log) = spawn_shard(
                options,
                &shard_bin,
                threads,
                &log_dir,
                slot.shard,
                slot.attempt,
            )?;
            spawned += 1;
            metrics.inc("fleet.shards_spawned", &[], 1);
            tails.push(LogTail::new(&log));
            logs.push(log);
            slot.child = Some(child);
        }

        for tail in &mut tails {
            let _ = tail.poll();
        }
        let live = slots.iter().filter(|s| s.child.is_some()).count();
        let interval = Duration::from_millis(options.status_interval_ms.max(50));
        if last_status.is_none_or(|at| at.elapsed() >= interval) {
            let view = fold_tails(&plan, &tails);
            eprintln!(
                "fleet: {}/{} units · {} executed · {} cached · {} stolen · {live} live · {restarts} restarted",
                view.resolved_units,
                view.total_units,
                view.executed_units,
                view.cached_units,
                view.stolen_claims,
            );
            last_status = Some(Instant::now());
        }
        if live == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(options.poll_ms.max(10)));
    }

    for tail in &mut tails {
        let _ = tail.poll();
    }
    let view = fold_tails(&plan, &tails);
    eprintln!(
        "fleet: done — {}/{} units, {} executed, {} cached, {} stolen, {spawned} spawns, {restarts} restarts",
        view.resolved_units,
        view.total_units,
        view.executed_units,
        view.cached_units,
        view.stolen_claims,
    );
    let events: Vec<RunEvent> = tails
        .iter()
        .flat_map(|tail| tail.events.iter().cloned())
        .collect();
    let wall_clock_ms = runner::merged_wall_clock_ms(events.iter());
    let (report, merge_error) = match runner::merge_events(&plan, events, wall_clock_ms) {
        Ok(report) => (Some(report), None),
        Err(e) => (None, Some(e.to_string())),
    };
    Ok(FleetOutcome {
        report,
        merge_error,
        spawned,
        restarts,
        failed_shards: slots.iter().filter(|s| s.failed).map(|s| s.shard).collect(),
        logs,
    })
}

/// Tails, folded into one live view of the whole fleet.
fn fold_tails(plan: &runner::Plan, tails: &[LogTail]) -> FleetView {
    let events: Vec<RunEvent> = tails
        .iter()
        .flat_map(|tail| tail.events.iter().cloned())
        .collect();
    FleetView::fold(plan, &events, &WatchOptions::default())
}

/// Spawns one shard attempt, returning the child and its event-log path.
fn spawn_shard(
    options: &FleetOptions,
    shard_bin: &Path,
    threads: usize,
    log_dir: &Path,
    shard: usize,
    attempt: usize,
) -> Result<(Child, PathBuf), String> {
    let log = log_dir.join(format!("shard{shard}-a{attempt}.jsonl"));
    let mut cmd = Command::new(shard_bin);
    cmd.arg("--figure")
        .arg(&options.figure)
        .arg("--scale")
        .arg(options.scale.to_string())
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--store")
        .arg(&options.store)
        .arg("--shard-id")
        .arg(shard.to_string())
        .arg("--shard-count")
        .arg(options.shards.to_string())
        .arg("--run-id")
        .arg(&options.run_id)
        .arg("--events")
        .arg(&log)
        // The per-shard ShardSummary JSON is supervisor noise; the fleet's
        // stdout carries exactly one payload, the merged report.
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(ttl) = options.lease_ttl_ms {
        cmd.arg("--lease-ttl-ms").arg(ttl.to_string());
    }
    if let Some((victim, quota)) = options.kill_shard {
        if victim == shard && attempt == 0 {
            cmd.env("MUONTRAP_SHARD_EXIT_AFTER_EVENTS", quota.to_string());
        }
    }
    let child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", shard_bin.display()))?;
    Ok((child, log))
}

/// The `shard` binary installed beside the running executable — the layout
/// `cargo build` and `cargo install` both produce.
fn sibling_shard_bin() -> io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    let dir = exe.parent().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "fleet binary has no parent directory",
        )
    })?;
    let candidate = dir.join(format!("shard{}", std::env::consts::EXE_SUFFIX));
    if candidate.is_file() {
        Ok(candidate)
    } else {
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "no shard binary beside {}; pass --shard-bin PATH",
                exe.display()
            ),
        ))
    }
}

/// The `fleet` usage text.
pub fn usage() -> String {
    format!(
        "usage: fleet --figure NAME --store DIR --run-id ID [--shards N] \
         [--scale tiny|small|large] [--threads N] [--lease-ttl-ms MS] \
         [--max-restarts N] [--poll-ms MS] [--status-interval-ms MS] \
         [--shard-bin PATH] [--log-dir DIR] [--kill-shard ID:EVENTS] \
         [--metrics FILE]\nfigures: {}",
        crate::FIGURE_NAMES.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<&'static str> {
        vec!["--figure", "fig5", "--store", "/tmp/s", "--run-id", "r1"]
    }

    #[test]
    fn required_flags_are_enforced() {
        assert!(FleetOptions::parse(Vec::<String>::new()).is_err());
        assert!(
            FleetOptions::parse(["--figure", "fig5"]).is_err(),
            "no store"
        );
        assert!(
            FleetOptions::parse(["--figure", "fig5", "--store", "/tmp/s"]).is_err(),
            "no run id"
        );
        assert!(
            FleetOptions::parse([
                "--figure",
                "fig5",
                "--store",
                "/tmp/s",
                "--run-id",
                cli::DEFAULT_RUN_ID
            ])
            .is_err(),
            "the placeholder run id corrupts freshness provenance"
        );
        assert!(FleetOptions::parse(base()).is_ok());
    }

    #[test]
    fn defaults_and_overrides_parse() {
        let options = FleetOptions::parse(base()).unwrap();
        assert_eq!(options.shards, 2);
        assert_eq!(options.scale, Scale::Small);
        assert_eq!(options.threads, None);
        assert_eq!(options.max_restarts, 2);
        assert_eq!(options.kill_shard, None);
        assert_eq!(
            options.resolved_log_dir(),
            PathBuf::from("/tmp/s/.fleet/r1"),
            "default logs live under the store, below its two-level listing"
        );

        let mut args = base();
        args.extend([
            "--shards",
            "4",
            "--scale",
            "tiny",
            "--threads",
            "1",
            "--lease-ttl-ms",
            "250",
            "--max-restarts",
            "0",
            "--kill-shard",
            "3:5",
            "--log-dir",
            "/tmp/logs",
        ]);
        let options = FleetOptions::parse(args).unwrap();
        assert_eq!(options.shards, 4);
        assert_eq!(options.scale, Scale::Tiny);
        assert_eq!(options.threads, Some(1));
        assert_eq!(options.lease_ttl_ms, Some(250));
        assert_eq!(options.max_restarts, 0, "zero restarts is a valid budget");
        assert_eq!(options.kill_shard, Some((3, 5)));
        assert_eq!(options.resolved_log_dir(), PathBuf::from("/tmp/logs"));
    }

    #[test]
    fn malformed_values_are_rejected() {
        let with = |extra: &[&str]| {
            let mut args = base();
            args.extend_from_slice(extra);
            FleetOptions::parse(args)
        };
        assert!(with(&["--shards", "0"]).is_err());
        assert!(with(&["--lease-ttl-ms", "0"]).is_err());
        assert!(with(&["--kill-shard", "5"]).is_err(), "missing :EVENTS");
        assert!(with(&["--kill-shard", "a:b"]).is_err());
        assert!(
            with(&["--kill-shard", "2:1"]).is_err(),
            "victim must be a real shard"
        );
        assert!(with(&["--wat"]).is_err());
        assert!(usage().contains("--kill-shard"));
        assert!(usage().contains("--max-restarts"));
    }
}
