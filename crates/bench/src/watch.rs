//! The live fleet dashboard behind `merge --watch` and `merge --html-live`.
//!
//! A multi-host run streams one JSONL [`RunEvent`] log per shard; this module
//! tails any number of those logs *while the shards are still writing them*
//! and folds whatever has arrived so far into a [`FleetView`]: per-shard
//! progress, fleet-wide steal and cache-hit counters, a cells/sec rate (EWMA
//! over resolution timestamps) and the ETA it implies, plus stalled-shard
//! detection from heartbeat age.
//!
//! Two renderers share the view:
//!
//! * [`render_frame`] — the plain-text terminal dashboard. Pure string
//!   generation (the `merge` binary owns the screen-clearing), so a frame is
//!   byte-deterministic given a view and golden-testable via
//!   `merge --watch --once`.
//! * [`live_document`] — the intermediate `--html-live` page: the figure
//!   chart rendered from a lenient partial merge (unresolved cells become
//!   NaN placeholders the chart renderer already tolerates), a fleet
//!   progress table, and a script-free `<meta>` refresh so the page reloads
//!   itself. Once the fleet completes, the `merge` binary switches to the
//!   strict merge and the ordinary figure document, so the final page is
//!   byte-identical to a post-hoc `merge --html`.
//!
//! Determinism: every quantity here is computed from event timestamps, never
//! from the wall clock, unless [`WatchOptions::now_ms`] is left unset. The
//! `--once` mode pins `now_ms` to the newest event stamp, which is what makes
//! single-frame output reproducible in tests and CI.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use obs::dash::{fmt_duration_ms, fmt_percent, fmt_rate_per_sec, progress_bar};
use obs::Ewma;
use reportgen::{HtmlDocument, SummaryTable};
use simkit::json;
use simkit::json::FromJson;
use simsys::runner::{self, Plan, RunEvent, UnitKind};

/// How a watch computes and renders its view.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Progress-bar width, characters inside the brackets.
    pub width: usize,
    /// How long a not-done shard may go without emitting anything (beats
    /// included) before it renders as STALLED.
    pub stall_after_ms: u64,
    /// "Now" for age and elapsed computations. `None` reads the process
    /// clock ([`obs::now_ms`]); `--once` pins it to the newest event stamp
    /// so a frame is reproducible.
    pub now_ms: Option<u64>,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            width: 30,
            stall_after_ms: 15_000,
            now_ms: None,
        }
    }
}

/// An incremental reader over one shard's JSONL event log.
///
/// Unlike [`runner::read_events`] (strict, whole-file), a tail must tolerate
/// everything a live log does mid-write: the file not existing yet, a final
/// line cut mid-JSON (kept buffered until its newline arrives), garbage
/// lines (counted in [`malformed`](Self::malformed), skipped), and the file
/// shrinking (a restarted shard truncating its log — the tail resets and
/// re-reads).
#[derive(Debug)]
pub struct LogTail {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
    /// Every event parsed so far, in file order.
    pub events: Vec<RunEvent>,
    /// Complete lines that failed to parse as events.
    pub malformed: usize,
}

impl LogTail {
    /// A tail over `path`; nothing is read until [`poll`](Self::poll).
    pub fn new(path: impl Into<PathBuf>) -> LogTail {
        LogTail {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
            events: Vec::new(),
            malformed: 0,
        }
    }

    /// The log file this tail follows.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads whatever the writer has appended since the last poll, returning
    /// how many new events were parsed. A missing file is "nothing yet"
    /// (`Ok(0)`), not an error — shards create their logs when they start.
    ///
    /// # Errors
    /// Returns an [`io::Error`] only for real I/O failures (permissions, a
    /// directory in the file's place, …).
    pub fn poll(&mut self) -> io::Result<usize> {
        let mut file = match fs::File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            // The file shrank: the writer was restarted with truncation.
            // Everything previously parsed described a log that no longer
            // exists, so start over.
            self.offset = 0;
            self.partial.clear();
            self.events.clear();
            self.malformed = 0;
        }
        if len == self.offset {
            return Ok(0);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        file.take(len - self.offset).read_to_end(&mut buf)?;
        self.offset += buf.len() as u64;
        let mut added = 0usize;
        for byte in buf {
            if byte != b'\n' {
                self.partial.push(byte);
                continue;
            }
            let line = std::mem::take(&mut self.partial);
            let parsed = std::str::from_utf8(&line).ok().and_then(|text| {
                let text = text.trim();
                if text.is_empty() {
                    return None;
                }
                match json::parse(text)
                    .ok()
                    .and_then(|value| RunEvent::from_json(&value).ok())
                {
                    Some(event) => Some(event),
                    None => {
                        self.malformed += 1;
                        None
                    }
                }
            });
            if let Some(event) = parsed {
                self.events.push(event);
                added += 1;
            }
        }
        Ok(added)
    }
}

/// What the watcher knows about one shard, folded from its events.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Shard id.
    pub shard: usize,
    /// Units this shard has resolved (its completed + cached events, or the
    /// highest `units_done` any of its heartbeats reported — whichever is
    /// larger, since either stream may run ahead in the log).
    pub resolved: usize,
    /// Completed events from this shard.
    pub executed: usize,
    /// Cached events from this shard.
    pub cached: usize,
    /// Stolen claims from this shard.
    pub stolen: usize,
    /// Heartbeats seen from this shard.
    pub heartbeats: usize,
    /// Units in the whole plan (every shard walks all of them).
    pub units_total: usize,
    /// Newest timestamp on any of this shard's events.
    pub last_seen_ms: Option<u64>,
    /// Whether a `ShardDone` arrived.
    pub done: bool,
    /// The shard's reported wall clock, once done.
    pub wall_clock_ms: Option<f64>,
    /// Per-simulation wall times reported by this shard's `Completed`
    /// events, in arrival order (empty for legacy logs without `sim_ms`).
    pub sim_ms: Vec<u64>,
}

impl ShardView {
    fn new(shard: usize, units_total: usize) -> ShardView {
        ShardView {
            shard,
            resolved: 0,
            executed: 0,
            cached: 0,
            stolen: 0,
            heartbeats: 0,
            units_total,
            last_seen_ms: None,
            done: false,
            wall_clock_ms: None,
            sim_ms: Vec::new(),
        }
    }

    /// The shard's p50/p95 simulation latency in milliseconds, `None` until
    /// it has reported at least one timed simulation.
    pub fn sim_latency_p50_p95(&self) -> Option<(u64, u64)> {
        percentiles(&self.sim_ms)
    }

    /// The shard's display state: `done`, `running`, or `STALLED` with the
    /// silence age. A shard whose events carry no timestamps can never read
    /// as stalled (legacy logs have no liveness signal).
    pub fn state_label(&self, now_ms: u64, stall_after_ms: u64) -> String {
        if self.done {
            return match self.wall_clock_ms {
                Some(wall) => format!("done ({})", fmt_duration_ms(wall as u64)),
                None => "done".to_string(),
            };
        }
        match self.last_seen_ms {
            Some(last) if now_ms.saturating_sub(last) > stall_after_ms => {
                format!(
                    "STALLED ({} silent)",
                    fmt_duration_ms(now_ms.saturating_sub(last))
                )
            }
            _ => "running".to_string(),
        }
    }
}

/// Everything the dashboard knows, folded from all shard logs against the
/// plan. Fleet-wide unit counts are deduplicated by `(kind, index)` — every
/// shard emits an event for every unit, so raw per-shard counts overlap.
#[derive(Debug, Clone)]
pub struct FleetView {
    /// Report title, from the plan.
    pub title: String,
    /// Workload scale, from the plan.
    pub scale: Option<String>,
    /// Units in the plan (baselines + cells).
    pub total_units: usize,
    /// Grid cells in the plan.
    pub total_cells: usize,
    /// Distinct units some stream has resolved.
    pub resolved_units: usize,
    /// Distinct cells some stream has resolved.
    pub resolved_cells: usize,
    /// Distinct units with execution provenance.
    pub executed_units: usize,
    /// Distinct units resolved without simulating.
    pub cached_units: usize,
    /// Stolen claims across all streams (raw count — each steal is real).
    pub stolen_claims: usize,
    /// Per-shard views, ordered by shard id.
    pub shards: BTreeMap<usize, ShardView>,
    /// Oldest event timestamp seen.
    pub first_ms: Option<u64>,
    /// Newest event timestamp seen.
    pub last_ms: Option<u64>,
    /// The "now" the view was folded at (see [`WatchOptions::now_ms`]).
    pub now_ms: u64,
    /// EWMA of instantaneous resolution rate, units per millisecond.
    ewma_units_per_ms: Option<f64>,
}

impl FleetView {
    /// Folds `events` (any interleaving of any number of shard logs) into a
    /// view of the fleet working through `plan`.
    pub fn fold(plan: &Plan, events: &[RunEvent], opts: &WatchOptions) -> FleetView {
        let total_units = plan.baselines.len() + plan.cells.len();
        let mut resolved: HashMap<(UnitKind, usize), bool> = HashMap::new();
        let mut shards: BTreeMap<usize, ShardView> = BTreeMap::new();
        let mut stolen_claims = 0usize;
        let mut first_ms: Option<u64> = None;
        let mut last_ms: Option<u64> = None;
        let mut resolution_stamps: Vec<u64> = Vec::new();
        for event in events {
            let shard = shards
                .entry(event.shard())
                .or_insert_with(|| ShardView::new(event.shard(), total_units));
            if let Some(t) = event.t_ms() {
                first_ms = Some(first_ms.map_or(t, |f| f.min(t)));
                last_ms = Some(last_ms.map_or(t, |l| l.max(t)));
                shard.last_seen_ms = Some(shard.last_seen_ms.map_or(t, |l| l.max(t)));
            }
            match event {
                RunEvent::Claimed { stolen, .. } => {
                    if *stolen {
                        shard.stolen += 1;
                        stolen_claims += 1;
                    }
                }
                RunEvent::Completed { sim_ms, .. } => {
                    shard.executed += 1;
                    if let Some(ms) = sim_ms {
                        shard.sim_ms.push(*ms);
                    }
                    if let Some(t) = event.t_ms() {
                        resolution_stamps.push(t);
                    }
                    let unit = event.unit().expect("completed events carry an identity");
                    resolved.insert(unit, true);
                }
                RunEvent::Cached { .. } => {
                    shard.cached += 1;
                    if let Some(t) = event.t_ms() {
                        resolution_stamps.push(t);
                    }
                    let unit = event.unit().expect("cached events carry an identity");
                    resolved.entry(unit).or_insert(false);
                }
                RunEvent::Heartbeat { units_done, .. } => {
                    shard.heartbeats += 1;
                    shard.resolved = shard.resolved.max(*units_done);
                }
                RunEvent::ShardDone { wall_clock_ms, .. } => {
                    shard.done = true;
                    shard.wall_clock_ms = Some(
                        shard
                            .wall_clock_ms
                            .map_or(*wall_clock_ms, |w| w.max(*wall_clock_ms)),
                    );
                }
            }
        }
        for shard in shards.values_mut() {
            shard.resolved = shard.resolved.max(shard.executed + shard.cached);
        }
        // EWMA over the gaps between consecutive resolutions, fleet-wide.
        // Same-millisecond resolutions contribute no gap and are skipped;
        // sparse tiny runs then fall back to the overall average (below).
        resolution_stamps.sort_unstable();
        let mut ewma = Ewma::new(0.2);
        for pair in resolution_stamps.windows(2) {
            let dt = pair[1].saturating_sub(pair[0]);
            if dt > 0 {
                ewma.update(1.0 / dt as f64);
            }
        }
        let executed_units = resolved.values().filter(|executed| **executed).count();
        let resolved_cells = resolved
            .keys()
            .filter(|(kind, _)| *kind == UnitKind::Cell)
            .count();
        FleetView {
            title: plan.title.clone(),
            scale: plan.scale.clone(),
            total_units,
            total_cells: plan.cells.len(),
            resolved_units: resolved.len(),
            resolved_cells,
            executed_units,
            cached_units: resolved.len() - executed_units,
            stolen_claims,
            shards,
            first_ms,
            last_ms,
            now_ms: opts.now_ms.unwrap_or_else(obs::now_ms),
            ewma_units_per_ms: ewma.value(),
        }
    }

    /// Whether every unit of the plan has been resolved by some stream —
    /// the watch's completion criterion. Deliberately *not* "every shard
    /// sent `ShardDone`": a crashed shard never signs off, but the fleet is
    /// finished the moment the work is.
    pub fn complete(&self) -> bool {
        self.resolved_units >= self.total_units
    }

    /// Resolved fraction of the plan, in `[0, 1]` (NaN for an empty plan —
    /// the renderers' formatters all tolerate that).
    pub fn fraction(&self) -> f64 {
        self.resolved_units as f64 / self.total_units as f64
    }

    /// Completed events across all streams — raw traffic, not deduplicated:
    /// shards overlap, so this can exceed [`total_units`](Self::total_units).
    pub fn executed_events(&self) -> usize {
        self.shards.values().map(|shard| shard.executed).sum()
    }

    /// Cached events across all streams — raw traffic. This is what makes a
    /// warm-store shard visible on the dashboard: its units deduplicate away
    /// (another shard executed them), but its cache hits are real work
    /// avoided and show up here.
    pub fn cached_events(&self) -> usize {
        self.shards.values().map(|shard| shard.cached).sum()
    }

    /// Fleet cache-hit rate over resolution *events* (NaN before any
    /// resolve): the fraction of resolutions served without simulating.
    pub fn cache_hit_rate(&self) -> f64 {
        let executed = self.executed_events();
        let cached = self.cached_events();
        cached as f64 / (executed + cached) as f64
    }

    /// Resolution rate, units per millisecond: the EWMA when the stamps were
    /// dense enough to feed it, otherwise the whole-run average. `None`
    /// until two timestamped resolutions exist.
    pub fn units_per_ms(&self) -> Option<f64> {
        if let Some(rate) = self.ewma_units_per_ms {
            if rate.is_finite() && rate > 0.0 {
                return Some(rate);
            }
        }
        match (self.first_ms, self.last_ms) {
            (Some(first), Some(last)) if last > first && self.resolved_units > 1 => {
                Some((self.resolved_units - 1) as f64 / (last - first) as f64)
            }
            _ => None,
        }
    }

    /// Resolution rate in cells/sec terms for display.
    pub fn rate_per_sec(&self) -> Option<f64> {
        self.units_per_ms().map(|rate| rate * 1e3)
    }

    /// Estimated time to fleet completion, from the current rate. `None`
    /// when the rate is unknown (never NaN, never negative — see
    /// [`obs::eta_ms`]).
    pub fn eta_ms(&self) -> Option<u64> {
        let remaining = self.total_units.saturating_sub(self.resolved_units) as f64;
        obs::eta_ms(remaining, self.units_per_ms()?)
    }

    /// Milliseconds between the oldest event and "now". `None` until a
    /// timestamped event exists.
    pub fn elapsed_ms(&self) -> Option<u64> {
        let first = self.first_ms?;
        let newest = self.now_ms.max(self.last_ms.unwrap_or(0));
        Some(newest.saturating_sub(first))
    }
}

/// Nearest-rank p50/p95 over `samples` (unsorted, any order). `None` when
/// empty.
fn percentiles(samples: &[u64]) -> Option<(u64, u64)> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |pct: usize| {
        sorted[(pct * (sorted.len() - 1))
            .div_ceil(100)
            .min(sorted.len() - 1)]
    };
    Some((rank(50), rank(95)))
}

/// Renders one dashboard frame — plain text, no terminal control codes, one
/// trailing newline. This is exactly what `merge --watch --once` prints, so
/// the golden tests pin this byte-for-byte. Shards whose logs carry per-unit
/// `sim_ms` stamps get a trailing `sim p50/p95` figure; legacy logs render
/// exactly as before.
pub fn render_frame(view: &FleetView, opts: &WatchOptions) -> String {
    let mut out = String::new();
    let scale = view.scale.as_deref().unwrap_or("?");
    let _ = writeln!(
        out,
        "watching {} · scale {} · {} shard(s) seen",
        view.title,
        scale,
        view.shards.len()
    );
    let fraction = view.fraction();
    let _ = writeln!(
        out,
        "fleet    {} {}/{} units ({}) · {}/{} cells",
        progress_bar(fraction, opts.width),
        view.resolved_units,
        view.total_units,
        fmt_percent(fraction),
        view.resolved_cells,
        view.total_cells,
    );
    let _ = writeln!(
        out,
        "         executed {} · cached {} · stolen {} · cache-hit {}",
        view.executed_events(),
        view.cached_events(),
        view.stolen_claims,
        fmt_percent(view.cache_hit_rate()),
    );
    let _ = writeln!(
        out,
        "         rate {} · eta {} · elapsed {}",
        fmt_rate_per_sec(view.rate_per_sec()),
        view.eta_ms()
            .map_or_else(|| "-".to_string(), fmt_duration_ms),
        view.elapsed_ms()
            .map_or_else(|| "-".to_string(), fmt_duration_ms),
    );
    if view.shards.is_empty() {
        let _ = writeln!(out, "no shard activity yet — waiting for events");
    }
    for shard in view.shards.values() {
        let fraction = shard.resolved as f64 / shard.units_total.max(1) as f64;
        let latency = shard
            .sim_latency_p50_p95()
            .map_or(String::new(), |(p50, p95)| {
                format!(
                    " · sim p50/p95 {}/{}",
                    fmt_duration_ms(p50),
                    fmt_duration_ms(p95)
                )
            });
        let _ = writeln!(
            out,
            "shard {:>2} {} {}/{} {}{}",
            shard.shard,
            progress_bar(fraction, opts.width),
            shard.resolved,
            shard.units_total,
            shard.state_label(view.now_ms, opts.stall_after_ms),
            latency,
        );
    }
    out
}

/// The fleet-progress table embedded in the live HTML page.
pub fn fleet_table(view: &FleetView, stall_after_ms: u64) -> SummaryTable {
    let mut table = SummaryTable::new([
        "shard",
        "resolved",
        "executed",
        "cached",
        "stolen",
        "heartbeats",
        "sim p50/p95",
        "state",
    ]);
    for shard in view.shards.values() {
        let latency = shard
            .sim_latency_p50_p95()
            .map_or("-".to_string(), |(p50, p95)| {
                format!("{}/{}", fmt_duration_ms(p50), fmt_duration_ms(p95))
            });
        table.row([
            (shard.shard.to_string(), true),
            (format!("{}/{}", shard.resolved, shard.units_total), true),
            (shard.executed.to_string(), true),
            (shard.cached.to_string(), true),
            (shard.stolen.to_string(), true),
            (shard.heartbeats.to_string(), true),
            (latency, true),
            (shard.state_label(view.now_ms, stall_after_ms), false),
        ]);
    }
    table
}

/// Renders the *intermediate* `--html-live` page: the figure chart from a
/// lenient partial merge, the fleet progress table, and a script-free
/// self-refresh. `None` for figure names without registered chart metadata.
///
/// Once [`FleetView::complete`] the caller must stop using this and render
/// the ordinary strict figure document instead — that (plus this function
/// never being called again) is what makes the final on-disk page
/// byte-identical to a post-hoc `merge --html`.
pub fn live_document(
    figure: &str,
    plan: &Plan,
    events: Vec<RunEvent>,
    view: &FleetView,
    run_id: &str,
    refresh_seconds: u32,
    stall_after_ms: u64,
) -> Option<String> {
    let wall_clock_ms = runner::merged_wall_clock_ms(events.iter());
    let (report, missing) = runner::merge_events_lenient(plan, events, wall_clock_ms);
    let section = crate::render::report_figure(figure, &report, run_id)?;
    let mut doc = HtmlDocument::new(format!("{} — live", report.title));
    doc.meta_refresh(refresh_seconds);
    doc.intro(format!(
        "LIVE: {}/{} units resolved, {} cell(s) still pending. This page reloads itself \
         every {}s (no scripts — a meta refresh) and is replaced by the final report the \
         moment the fleet completes.",
        view.resolved_units, view.total_units, missing, refresh_seconds
    ));
    doc.figure(section);
    doc.table(
        "fleet",
        "Fleet progress",
        "One row per shard log being tailed. Counts are per-shard and overlap across \
         shards (every shard walks the whole plan); the headline unit count above the \
         figure is deduplicated.",
        fleet_table(view, stall_after_ms),
    );
    Some(doc.render())
}

/// Writes `contents` to `path` atomically (unique temp file in the same
/// directory, then rename), so a browser mid-refresh never reads a partial
/// page.
///
/// # Errors
/// Returns the underlying I/O error if the write or rename fails.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let temp = dir
        .unwrap_or_else(|| Path::new("."))
        .join(format!(".live-{}.tmp", std::process::id()));
    fs::write(&temp, contents)?;
    match fs::rename(&temp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&temp);
            Err(e)
        }
    }
}
