//! The figure ↔ chart metadata registry and the HTML-report assembly.
//!
//! `reportgen` knows how to draw; this module knows what the paper's figures
//! *are*: which chart shape each [`crate::FIGURE_NAMES`] entry renders as,
//! its axis titles, its reader-facing caption and its paper cross-reference.
//! The registry sits next to [`crate::figure_session`] so adding a figure
//! means touching one crate, and everything here works on any
//! [`RunReport`] with the right grid shape — run locally, replayed from a
//! warm store, or folded out of sharded event logs by
//! [`simsys::runner::merge_events`] (merged reports are bit-identical to
//! local ones, so the rendered artefact is too).
//!
//! Entry points: [`figure_document`] (one figure → one page, the `--html`
//! path of the figure binaries and `merge`) and [`evaluation_document`]
//! (every figure plus the domain-switch table → `report --html`'s
//! `report.html`).

use reportgen::report::{figure_chart, ChartKind, FigureMeta, Provenance};
use reportgen::svg::fmt_value;
use reportgen::{HtmlDocument, ReportFigure, SummaryTable};
use simsys::session::RunReport;
use speclint::Census;

/// Chart metadata for every [`crate::FIGURE_NAMES`] entry, in the same
/// order.
pub const FIGURE_METAS: [FigureMeta; 9] = [
    FigureMeta {
        name: "fig3",
        kind: ChartKind::GroupedBars,
        x_label: "SPEC CPU2006-like workload",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §6, Figure 3",
        caption: "Normalised execution time on the SPEC CPU2006-like suite under MuonTrap, \
                  InvisiSpec and STT (each in Spectre and futuristic threat models). 1.0 is the \
                  unprotected baseline (dashed); lower is better. MuonTrap's bars hugging the \
                  baseline while the delay-based defenses sit well above it is the paper's \
                  headline claim.",
        reference_line: Some(1.0),
    },
    FigureMeta {
        name: "fig4",
        kind: ChartKind::GroupedBars,
        x_label: "Parsec-like workload (4 threads)",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §6, Figure 4",
        caption: "The same comparison on the Parsec-like multithreaded suite (4 threads). \
                  Sharing and coherence traffic make the delay-based defenses costlier here; \
                  MuonTrap's filter caches keep speculative fills core-private without delaying \
                  them.",
        reference_line: Some(1.0),
    },
    FigureMeta {
        name: "fig5",
        kind: ChartKind::SweepLines,
        x_label: "data filter-cache size (fully associative)",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §6, Figure 5",
        caption: "Slowdown as the fully-associative data filter cache is swept from 64 B to \
                  4 KiB. Gray lines are individual Parsec-like workloads; the highlighted line \
                  is the geometric mean. A few hundred bytes already capture most in-flight \
                  speculation, and the curve flattens as the filter cache stops being the \
                  bottleneck.",
        reference_line: Some(1.0),
    },
    FigureMeta {
        name: "fig6",
        kind: ChartKind::SweepLines,
        x_label: "2 KiB data filter-cache associativity (ways)",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §6, Figure 6",
        caption: "Associativity sweep of the 2 KiB data filter cache, direct-mapped to fully \
                  associative. Speculative fills from many simultaneous loads conflict in \
                  low-associativity filters, so ways matter more than raw size at this scale.",
        reference_line: Some(1.0),
    },
    FigureMeta {
        name: "fig7",
        kind: ChartKind::CounterRatioBars {
            numerator: "muontrap.store_upgrade_broadcasts",
            denominator: "muontrap.committed_stores",
        },
        x_label: "SPEC CPU2006-like workload",
        y_label: "invalidation-broadcast rate",
        paper_section: "Paper §6, Figure 7",
        caption: "Fraction of committed stores that trigger a filter-cache invalidation \
                  broadcast under full MuonTrap (the coherence-protection cost of keeping \
                  speculative lines core-private). Computed per workload as \
                  muontrap.store_upgrade_broadcasts / muontrap.committed_stores.",
        reference_line: None,
    },
    FigureMeta {
        name: "fig8",
        kind: ChartKind::GroupedBars,
        x_label: "Parsec-like workload (4 threads)",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §6, Figure 8",
        caption: "Cost breakdown on the Parsec-like suite as protection mechanisms are enabled \
                  cumulatively: an insecure L0, the secure filter cache, coherence protection, \
                  the instruction filter cache, commit-time prefetcher training, and \
                  clear-on-misspeculate.",
        reference_line: Some(1.0),
    },
    FigureMeta {
        name: "fig9",
        kind: ChartKind::GroupedBars,
        x_label: "SPEC CPU2006-like workload",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §6, Figure 9",
        caption: "The same cumulative breakdown on the SPEC-like suite, plus the optional \
                  parallel L0/L1 lookup, which trades energy for latency on filter-cache \
                  misses.",
        reference_line: Some(1.0),
    },
    FigureMeta {
        name: "shootout",
        kind: ChartKind::GroupedBars,
        x_label: "SPEC CPU2006-like workload",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §7 (defense zoo; extends the paper's comparison)",
        caption: "Cross-defense shoot-out on the SPEC-like suite: every modelled defense from \
                  the registry — the insecure-L0 strawman, fence-at-every-branch, \
                  delay-speculative-loads (naive InvisiSpec), the SafeBet-style speculative \
                  access window, full MuonTrap, InvisiSpec and STT — normalised to the \
                  unprotected baseline. The sound-and-cheap corner (MuonTrap, SafeBet) versus \
                  the sound-but-slow delay family is the trade-off the defense zoo exists to \
                  show; tests/defense_soundness.rs proves the soundness half dynamically.",
        reference_line: Some(1.0),
    },
    FigureMeta {
        name: "domain",
        kind: ChartKind::GroupedBars,
        x_label: "domain-switch kernel",
        y_label: "normalised execution time (×)",
        paper_section: "Paper §4.8 (stress grid; not a paper figure)",
        caption: "Worst-case stress for MuonTrap's flush-on-domain-switch rule: the \
                  syscall-storm and sandbox-hop kernels force a protection-domain switch — and \
                  thus a filter-cache flush — every few hundred instructions. The summary table \
                  below carries the flush counters behind these bars.",
        reference_line: Some(1.0),
    },
];

/// Resolves a figure name (see [`crate::FIGURE_NAMES`]) to its chart
/// metadata.
pub fn figure_meta(name: &str) -> Option<&'static FigureMeta> {
    FIGURE_METAS.iter().find(|meta| meta.name == name)
}

/// Builds the rendered figure section for `name` from `report`:
/// [`figure_chart`] for the SVG plus title, caption, cross-reference and
/// provenance. `None` for unregistered names.
pub fn report_figure(name: &str, report: &RunReport, run_id: &str) -> Option<ReportFigure> {
    let meta = figure_meta(name)?;
    Some(ReportFigure {
        id: meta.name.to_string(),
        title: report.title.clone(),
        paper_section: meta.paper_section.to_string(),
        caption: meta.caption.to_string(),
        svg: figure_chart(meta, report),
        provenance: Some(Provenance::from_report(report, run_id)),
    })
}

/// The domain-switch summary table: one row per (kernel, defense) cell with
/// its slowdown and the filter-cache flush counters that explain it.
pub fn domain_switch_table(report: &RunReport) -> SummaryTable {
    let mut table = SummaryTable::new([
        "kernel",
        "defense",
        "slowdown (×)",
        "syscall flushes",
        "sandbox flushes",
        "completed",
    ]);
    for cell in &report.cells {
        table.row([
            (cell.workload.clone(), false),
            (cell.column.clone(), false),
            (fmt_value(cell.normalized_time), true),
            (
                cell.stats.counter("muontrap.syscall_flushes").to_string(),
                true,
            ),
            (
                cell.stats.counter("muontrap.sandbox_flushes").to_string(),
                true,
            ),
            (
                (if cell.completed { "yes" } else { "NO" }).to_string(),
                false,
            ),
        ]);
    }
    table
}

/// Renders a single figure as a complete self-contained HTML page (what
/// `fig5 --html page.html` and `merge --html page.html` write). `None` for
/// unregistered names.
pub fn figure_document(name: &str, report: &RunReport, run_id: &str) -> Option<String> {
    let figure = report_figure(name, report, run_id)?;
    let mut doc = HtmlDocument::new(report.title.clone());
    doc.figure(figure);
    if name == "domain" {
        doc.table(
            "domain-table",
            "Domain-switch summary",
            DOMAIN_TABLE_CAPTION,
            domain_switch_table(report),
        );
    }
    Some(doc.render())
}

const DOMAIN_TABLE_CAPTION: &str =
    "Per-cell detail behind the domain-switch figure. The muontrap.* flush counters are \
     nonzero only under MuonTrap configurations: every syscall or sandbox transition clears \
     the filter caches, which is exactly the overhead these kernels maximise.";

const SPECLINT_TABLE_CAPTION: &str =
    "Static speculative-taint census over the evaluation corpus (the `speclint` analyzer): \
     per program, the number of gadgets where a speculatively loaded value reaches a \
     transmitter inside a mispredicted-branch window, by transmitter class. The attack-suite \
     programs are expected to be flagged and their -fenced twins clean; the compute kernels' \
     verdicts show which workloads even carry statically reachable gadgets. Cross-validated \
     against the dynamic attack outcomes by tests/speclint_cross.rs.";

/// The speclint census table: one row per analyzed program with its gadget
/// counts per class, and the corpus totals in the footer.
pub fn speclint_table(census: &Census) -> SummaryTable {
    let mut table = SummaryTable::new([
        "program",
        "instructions",
        "branches",
        "v1-load",
        "tainted-store-address",
        "tainted-branch",
        "truncated",
    ]);
    let mut totals = [0usize; 3];
    let mut insts = 0usize;
    let mut branches = 0usize;
    for report in &census.programs {
        let counts = report.counts();
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
        insts += report.instructions;
        branches += report.branches;
        table.row([
            (report.program.clone(), false),
            (report.instructions.to_string(), true),
            (report.branches.to_string(), true),
            (counts[0].to_string(), true),
            (counts[1].to_string(), true),
            (counts[2].to_string(), true),
            (
                (if report.truncated { "YES" } else { "-" }).to_string(),
                false,
            ),
        ]);
    }
    table.footer([
        (format!("total ({} programs)", census.programs.len()), false),
        (insts.to_string(), true),
        (branches.to_string(), true),
        (totals[0].to_string(), true),
        (totals[1].to_string(), true),
        (totals[2].to_string(), true),
        (String::new(), false),
    ]);
    table
}

/// Appends the speclint census section to a document.
fn push_speclint_section(doc: &mut HtmlDocument, census: &Census) {
    doc.table(
        "speclint-table",
        format!(
            "Static gadget census ({} gadgets, {} of {} programs, window {})",
            census.total_gadgets(),
            census.flagged_programs(),
            census.programs.len(),
            census.window
        ),
        SPECLINT_TABLE_CAPTION,
        speclint_table(census),
    );
}

/// Renders the census as its own self-contained page (`speclint --html`).
pub fn speclint_document(census: &Census) -> String {
    let mut doc = HtmlDocument::new("speclint — static gadget census");
    push_speclint_section(&mut doc, census);
    doc.render()
}

/// Renders the full evaluation as one self-contained HTML document: one
/// chart per figure in `reports` (in the given order), the domain-switch
/// summary table, the static gadget census (when given), and per-figure
/// provenance. `reports` pairs each [`crate::FIGURE_NAMES`] entry with its
/// report; unregistered names are skipped.
pub fn evaluation_document(
    reports: &[(String, RunReport)],
    run_id: &str,
    scale: &str,
    census: Option<&Census>,
) -> String {
    let mut doc = HtmlDocument::new("MuonTrap reproduction — evaluation report");
    doc.intro(format!(
        "Every figure of the paper's evaluation (§6) plus the §4.8 domain-switch stress \
         grid, regenerated at {scale} scale by this repository's simulator and rendered \
         without external assets: inline SVG, inline styles, no scripts. Slowdown charts \
         are normalised to the unprotected baseline (dashed line at 1.0; lower is \
         better). Hover any mark for its exact value; the provenance line under each \
         figure records how many cells were simulated fresh versus served from the \
         content-addressed result store."
    ));
    for (name, report) in reports {
        if let Some(figure) = report_figure(name, report, run_id) {
            doc.figure(figure);
        }
        if name == "domain" {
            doc.table(
                "domain-table",
                "Domain-switch summary",
                DOMAIN_TABLE_CAPTION,
                domain_switch_table(report),
            );
        }
    }
    if let Some(census) = census {
        push_speclint_section(&mut doc, census);
    }
    doc.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FIGURE_NAMES;
    use defenses::DefenseKind;
    use simkit::config::SystemConfig;
    use simsys::session::ExperimentSession;
    use workloads::{domain_switch_suite, spec_suite, Scale};

    #[test]
    fn every_figure_name_has_metadata_and_vice_versa() {
        for name in FIGURE_NAMES {
            let meta = figure_meta(name).unwrap_or_else(|| panic!("{name} needs metadata"));
            assert_eq!(meta.name, name);
            assert!(!meta.caption.is_empty() && !meta.paper_section.is_empty());
        }
        assert_eq!(FIGURE_METAS.len(), FIGURE_NAMES.len());
        assert!(figure_meta("fig12").is_none());
    }

    #[test]
    fn sweep_figures_render_lines_and_slowdown_figures_bars() {
        assert_eq!(figure_meta("fig5").unwrap().kind, ChartKind::SweepLines);
        assert_eq!(figure_meta("fig6").unwrap().kind, ChartKind::SweepLines);
        assert_eq!(figure_meta("fig3").unwrap().kind, ChartKind::GroupedBars);
        assert!(matches!(
            figure_meta("fig7").unwrap().kind,
            ChartKind::CounterRatioBars { .. }
        ));
    }

    #[test]
    fn figure_document_is_a_complete_selfcontained_page() {
        let report = ExperimentSession::new()
            .title("smoke")
            .scale(Scale::Tiny)
            .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
            .defenses([DefenseKind::MuonTrap])
            .config(SystemConfig::small_test())
            .run();
        let html = figure_document("fig3", &report, "test-run").unwrap();
        assert!(html.starts_with("<!doctype html>"));
        assert_eq!(html.matches("<svg ").count(), 1);
        assert!(html.contains("run test-run"));
        assert!(!html.contains("http"), "self-contained");
        assert!(figure_document("nope", &report, "r").is_none());
    }

    #[test]
    fn speclint_section_renders_the_census_with_totals() {
        let census = crate::lint::corpus_census(Scale::Tiny, &speclint::AnalyzerConfig::default());
        let table = speclint_table(&census);
        assert_eq!(table.len(), census.programs.len());
        let html = speclint_document(&census);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("spectre-victim"));
        assert!(html.contains("litmus-inclusion-fenced"));
        assert!(html.contains("<tfoot>"), "totals footer present");
        assert!(html.contains(&format!("total ({} programs)", census.programs.len())));
        // The census also lands at the end of the full evaluation document.
        let full = evaluation_document(&[], "run", "tiny", Some(&census));
        assert!(full.contains("Static gadget census"));
        assert!(
            !evaluation_document(&[], "run", "tiny", None).contains("Static gadget census"),
            "census section is optional"
        );
    }

    #[test]
    fn domain_table_carries_the_flush_counters() {
        let report = ExperimentSession::new()
            .title("domain smoke")
            .scale(Scale::Tiny)
            .workloads(domain_switch_suite(Scale::Tiny))
            .defenses([DefenseKind::MuonTrap])
            .config(SystemConfig::small_test())
            .run();
        let table = domain_switch_table(&report);
        assert_eq!(table.len(), report.cells.len());
        let html = table.render();
        assert!(html.contains("syscall-storm") && html.contains("sandbox-hop"));
        // The kernels actually flush: some counter cell is a positive number.
        let has_nonzero = report.cells.iter().any(|c| {
            c.stats.counter("muontrap.syscall_flushes")
                + c.stats.counter("muontrap.sandbox_flushes")
                > 0
        });
        assert!(has_nonzero, "flush counters must be visible in the table");
    }
}
