//! The gadget census: `speclint` swept over the registered corpus.
//!
//! [`corpus_census`] runs the static analyzer over every program the
//! evaluation exercises — the SPEC-like and Parsec-like kernels, the
//! domain-switch kernels, and the attack corpus
//! ([`attacks::attack_corpus`]) — producing one [`Census`] the `speclint`
//! binary prints (`--json`/`--html`) and `report` embeds. The census is the
//! static ground truth the dynamic attack outcomes are cross-validated
//! against in `tests/speclint_cross.rs`.
//!
//! Workload entries are keyed by *workload* name (one entry per workload,
//! analyzing its thread-0 program: the sibling thread programs only differ in
//! the thread id baked into their address constants, not in control flow);
//! attack-corpus entries are keyed by program name.

use speclint::{analyze_program, AnalyzerConfig, Census};
use workloads::{domain_switch_suite, parsec_suite, spec_suite, Scale, Workload};

/// The corpus the census sweeps, as (display name, program) pairs, in census
/// order: SPEC-like, Parsec-like, domain-switch, then the attack corpus.
fn corpus(scale: Scale) -> Vec<(String, uarch_isa::prog::Program)> {
    let mut programs = Vec::new();
    let mut workload_entry = |w: Workload| {
        let program = w.thread_programs.into_iter().next().expect("≥ 1 thread");
        programs.push((w.name, program));
    };
    spec_suite(scale).into_iter().for_each(&mut workload_entry);
    // 4 threads as in figure 4; only thread 0 is analyzed (see module docs).
    parsec_suite(scale, 4)
        .into_iter()
        .for_each(&mut workload_entry);
    domain_switch_suite(scale)
        .into_iter()
        .for_each(&mut workload_entry);
    for entry in attacks::attack_corpus() {
        programs.push((entry.program.name().to_string(), entry.program));
    }
    programs
}

/// Runs the analyzer over the whole corpus at `scale`.
pub fn corpus_census(scale: Scale, config: &AnalyzerConfig) -> Census {
    let programs = corpus(scale)
        .into_iter()
        .map(|(name, program)| {
            let mut report = analyze_program(&program, config);
            report.program = name;
            report
        })
        .collect();
    Census {
        window: config.window,
        programs,
    }
}

/// Renders the census as the aligned text table the `speclint` binary prints.
pub fn census_text(census: &Census) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== speclint gadget census (speculative window: {} instructions) ==\n",
        census.window
    ));
    out.push_str(&format!(
        "{:<24}{:>8}{:>10}{:>10}{:>24}{:>16}{:>12}\n",
        "program",
        "insts",
        "branches",
        "v1-load",
        "tainted-store-address",
        "tainted-branch",
        "truncated"
    ));
    let mut totals = [0usize; 3];
    for report in &census.programs {
        let counts = report.counts();
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
        out.push_str(&format!(
            "{:<24}{:>8}{:>10}{:>10}{:>24}{:>16}{:>12}\n",
            report.program,
            report.instructions,
            report.branches,
            counts[0],
            counts[1],
            counts[2],
            if report.truncated { "YES" } else { "-" },
        ));
    }
    out.push_str(&format!(
        "{:<24}{:>8}{:>10}{:>10}{:>24}{:>16}{:>12}\n",
        "total",
        census
            .programs
            .iter()
            .map(|p| p.instructions)
            .sum::<usize>(),
        census.programs.iter().map(|p| p.branches).sum::<usize>(),
        totals[0],
        totals[1],
        totals[2],
        "",
    ));
    out.push_str(&format!(
        "{} gadgets across {} of {} programs\n",
        census.total_gadgets(),
        census.flagged_programs(),
        census.programs.len(),
    ));
    out
}

/// One `program: class@transmitter` line per gadget — the grep-friendly
/// detail listing under the text table.
pub fn gadget_lines(census: &Census) -> String {
    let mut out = String::new();
    for report in &census.programs {
        for gadget in &report.gadgets {
            out.push_str(&format!(
                "{}: {} branch@{} source@{} transmitter@{} chain={:?}\n",
                report.program,
                gadget.class,
                gadget.branch,
                gadget.source,
                gadget.transmitter,
                gadget.chain,
            ));
        }
    }
    out
}

/// The corpus-wide gadget counts per class, indexed like
/// [`speclint::GadgetClass::ALL`].
pub fn class_totals(census: &Census) -> [usize; 3] {
    let mut totals = [0usize; 3];
    for report in &census.programs {
        for (t, c) in totals.iter_mut().zip(report.counts()) {
            *t += c;
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_covers_every_suite_and_the_attack_corpus() {
        let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());
        let names: Vec<&str> = census.programs.iter().map(|p| p.program.as_str()).collect();
        assert!(names.contains(&"mcf"), "SPEC-like suite present");
        assert!(names.contains(&"syscall-storm"), "domain-switch present");
        assert!(names.contains(&"spectre-victim"), "attack corpus present");
        assert!(names.contains(&"litmus-inclusion-fenced"));
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "census names must be unique");
    }

    #[test]
    fn census_matches_the_corpus_expectations() {
        let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());
        for entry in attacks::attack_corpus() {
            let report = census
                .report(entry.program.name())
                .unwrap_or_else(|| panic!("{} missing from census", entry.program.name()));
            assert_eq!(
                !report.is_clean(),
                entry.expect_gadget,
                "{}: {}",
                entry.program.name(),
                entry.note
            );
        }
    }

    #[test]
    fn census_is_scale_invariant_for_attack_entries_and_deterministic() {
        let config = AnalyzerConfig::default();
        let tiny = corpus_census(Scale::Tiny, &config);
        assert_eq!(tiny, corpus_census(Scale::Tiny, &config));
        // The attack corpus does not depend on the workload scale.
        let small = corpus_census(Scale::Small, &config);
        assert_eq!(
            tiny.report("spectre-victim"),
            small.report("spectre-victim")
        );
    }

    #[test]
    fn text_rendering_totals_agree_with_the_census() {
        let census = corpus_census(Scale::Tiny, &AnalyzerConfig::default());
        let text = census_text(&census);
        assert!(text.contains("speclint gadget census"));
        assert!(text.contains(&format!(
            "{} gadgets across {} of {} programs",
            census.total_gadgets(),
            census.flagged_programs(),
            census.programs.len()
        )));
        assert_eq!(
            class_totals(&census).iter().sum::<usize>(),
            census.total_gadgets()
        );
        let lines = gadget_lines(&census);
        assert_eq!(lines.lines().count(), census.total_gadgets());
    }
}
