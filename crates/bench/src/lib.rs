//! Shared harness code behind the figure binaries and Criterion benches.
//!
//! Every table and figure in the paper's evaluation section (§6) has a
//! function here that produces its data series, and a thin binary in
//! `src/bin/` that prints it. The Criterion benches in `benches/` call the
//! same functions at reduced scale so `cargo bench` both regenerates the
//! series and tracks the simulator's own throughput.
//!
//! | Paper artefact | Function | Binary |
//! |----------------|----------|--------|
//! | Table 1        | [`table1`] | `table1` |
//! | Figure 3       | [`figure3`] | `fig3` |
//! | Figure 4       | [`figure4`] | `fig4` |
//! | Figure 5       | [`figure5`] | `fig5` |
//! | Figure 6       | [`figure6`] | `fig6` |
//! | Figure 7       | [`figure7`] | `fig7` |
//! | Figure 8       | [`figure8`] | `fig8` |
//! | Figure 9       | [`figure9`] | `fig9` |
//! | Attacks 1–6    | [`security_matrix`] | `attacks_report` |

use simkit::config::{ProtectionConfig, SystemConfig};
use simkit::stats::geometric_mean;

use defenses::DefenseKind;
use simsys::experiment::{normalized_times, run_workload, with_filter_cache, write_invalidate_rate};
use workloads::{parsec_suite, spec_suite, Scale, Workload};

/// One row of a normalised-execution-time figure: a workload plus one value
/// per configuration, in the same order as the `configs` header.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Workload (benchmark) name.
    pub workload: String,
    /// Normalised execution time per configuration (1.0 = unprotected).
    pub values: Vec<f64>,
}

/// A complete figure: the configuration labels and one row per workload, plus
/// the geometric-mean row the paper reports.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// One label per configuration column.
    pub configs: Vec<String>,
    /// One row per workload.
    pub rows: Vec<FigureRow>,
}

impl Figure {
    /// The geometric mean of each column across all rows.
    pub fn geomeans(&self) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| {
                let column: Vec<f64> = self.rows.iter().map(|r| r.values[c]).collect();
                geometric_mean(&column)
            })
            .collect()
    }

    /// Renders the figure as an aligned text table (what the binaries print).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<16}", "workload"));
        for c in &self.configs {
            out.push_str(&format!("{c:>24}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<16}", row.workload));
            for v in &row.values {
                out.push_str(&format!("{v:>24.3}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<16}", "geomean"));
        for g in self.geomeans() {
            out.push_str(&format!("{g:>24.3}"));
        }
        out.push('\n');
        out
    }
}

fn build_figure(
    title: &str,
    workloads: &[Workload],
    kinds: &[DefenseKind],
    config: &SystemConfig,
) -> Figure {
    let configs: Vec<String> = kinds.iter().map(|k| k.label().to_string()).collect();
    let rows = workloads
        .iter()
        .map(|w| FigureRow {
            workload: w.name.clone(),
            values: normalized_times(w, kinds, config).into_iter().map(|(_, v)| v).collect(),
        })
        .collect();
    Figure { title: title.to_string(), configs, rows }
}

/// Table 1: the simulated system configuration.
pub fn table1() -> String {
    format!("== Table 1: system configuration ==\n{}", SystemConfig::paper_default())
}

/// Figure 3: normalised execution time on the SPEC-CPU2006-like suite for
/// MuonTrap, InvisiSpec (both variants) and STT (both variants).
pub fn figure3(scale: Scale, config: &SystemConfig) -> Figure {
    build_figure(
        "Figure 3: SPEC CPU2006-like, normalised execution time (lower is better)",
        &spec_suite(scale),
        &DefenseKind::figure3_set(),
        config,
    )
}

/// Figure 4: normalised execution time on the Parsec-like suite (4 threads).
pub fn figure4(scale: Scale, config: &SystemConfig) -> Figure {
    build_figure(
        "Figure 4: Parsec-like (4 threads), normalised execution time (lower is better)",
        &parsec_suite(scale, config.cores),
        &DefenseKind::figure3_set(),
        config,
    )
}

/// Figure 5: Parsec-like performance as the (fully-associative) data filter
/// cache is swept from 64 B to 4 KiB.
pub fn figure5(scale: Scale, config: &SystemConfig) -> Figure {
    let sizes: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];
    let workloads = parsec_suite(scale, config.cores);
    let configs: Vec<String> = sizes.iter().map(|s| format!("{s} B")).collect();
    let rows = workloads
        .iter()
        .map(|w| {
            let values = sizes
                .iter()
                .map(|size| {
                    // Fully associative at every size, as in the paper's sweep.
                    let cfg = with_filter_cache(config, *size, (*size / config.line_bytes) as usize);
                    simsys::experiment::normalized_time(w, DefenseKind::MuonTrap, &cfg)
                })
                .collect();
            FigureRow { workload: w.name.clone(), values }
        })
        .collect();
    Figure {
        title: "Figure 5: filter-cache size sweep (fully associative), Parsec-like".to_string(),
        configs,
        rows,
    }
}

/// Figure 6: Parsec-like performance as the associativity of a 2 KiB filter
/// cache is swept from direct-mapped to fully associative.
pub fn figure6(scale: Scale, config: &SystemConfig) -> Figure {
    let ways: [usize; 6] = [1, 2, 4, 8, 16, 32];
    let workloads = parsec_suite(scale, config.cores);
    let configs: Vec<String> = ways.iter().map(|w| format!("{w}-way")).collect();
    let rows = workloads
        .iter()
        .map(|w| {
            let values = ways
                .iter()
                .map(|assoc| {
                    let cfg = with_filter_cache(config, 2048, *assoc);
                    simsys::experiment::normalized_time(w, DefenseKind::MuonTrap, &cfg)
                })
                .collect();
            FigureRow { workload: w.name.clone(), values }
        })
        .collect();
    Figure {
        title: "Figure 6: 2 KiB filter-cache associativity sweep, Parsec-like".to_string(),
        configs,
        rows,
    }
}

/// Figure 7: the proportion of committed stores that trigger a filter-cache
/// invalidation broadcast, per SPEC-like workload, under full MuonTrap.
pub fn figure7(scale: Scale, config: &SystemConfig) -> Figure {
    let workloads = spec_suite(scale);
    let rows = workloads
        .iter()
        .map(|w| FigureRow {
            workload: w.name.clone(),
            values: vec![write_invalidate_rate(w, config)],
        })
        .collect();
    Figure {
        title: "Figure 7: fraction of writes triggering filter-cache invalidation broadcasts"
            .to_string(),
        configs: vec!["invalidate rate".to_string()],
        rows,
    }
}

/// The cumulative protection configurations of figures 8 and 9, in the order
/// the paper stacks them.
pub fn cumulative_protection_kinds(include_parallel_l1: bool) -> Vec<(String, DefenseKind)> {
    let mut insecure = ProtectionConfig::insecure_l0();
    insecure.prefetch_at_commit = false;

    let fcache_only = ProtectionConfig {
        data_filter_cache: true,
        secure_filter: true,
        coherence_protection: false,
        instruction_filter_cache: false,
        prefetch_at_commit: false,
        clear_on_misspeculate: false,
        parallel_l1_access: false,
        filter_tlb: true,
    };
    let coherency = ProtectionConfig { coherence_protection: true, ..fcache_only };
    let ifcache = ProtectionConfig { instruction_filter_cache: true, ..coherency };
    let prefetching = ProtectionConfig { prefetch_at_commit: true, ..ifcache };
    let clear_misspec = ProtectionConfig { clear_on_misspeculate: true, ..prefetching };

    let mut kinds = vec![
        ("insecure L0".to_string(), DefenseKind::MuonTrapCustom(insecure)),
        ("fcache only".to_string(), DefenseKind::MuonTrapCustom(fcache_only)),
        ("coherency".to_string(), DefenseKind::MuonTrapCustom(coherency)),
        ("ifcache".to_string(), DefenseKind::MuonTrapCustom(ifcache)),
        ("prefetching".to_string(), DefenseKind::MuonTrapCustom(prefetching)),
        ("clear misspec".to_string(), DefenseKind::MuonTrapCustom(clear_misspec)),
    ];
    if include_parallel_l1 {
        let parallel = ProtectionConfig { parallel_l1_access: true, ..prefetching };
        kinds.push(("parallel L1d".to_string(), DefenseKind::MuonTrapCustom(parallel)));
    }
    kinds
}

fn cumulative_figure(title: &str, workloads: &[Workload], config: &SystemConfig, parallel: bool) -> Figure {
    let kinds = cumulative_protection_kinds(parallel);
    let configs: Vec<String> = kinds.iter().map(|(label, _)| label.clone()).collect();
    let kind_list: Vec<DefenseKind> = kinds.iter().map(|(_, k)| *k).collect();
    let rows = workloads
        .iter()
        .map(|w| FigureRow {
            workload: w.name.clone(),
            values: normalized_times(w, &kind_list, config).into_iter().map(|(_, v)| v).collect(),
        })
        .collect();
    Figure { title: title.to_string(), configs, rows }
}

/// Figure 8: cumulatively adding protection mechanisms, Parsec-like suite.
pub fn figure8(scale: Scale, config: &SystemConfig) -> Figure {
    cumulative_figure(
        "Figure 8: cumulative protection mechanisms, Parsec-like",
        &parsec_suite(scale, config.cores),
        config,
        false,
    )
}

/// Figure 9: cumulatively adding protection mechanisms plus the parallel
/// L0/L1 lookup option, SPEC-like suite.
pub fn figure9(scale: Scale, config: &SystemConfig) -> Figure {
    cumulative_figure(
        "Figure 9: cumulative protection mechanisms (+ parallel L1d), SPEC-like",
        &spec_suite(scale),
        config,
        true,
    )
}

/// The security matrix: every attack against every configuration, reporting
/// which configurations leak (the paper's qualitative security argument).
pub fn security_matrix(config: &SystemConfig) -> String {
    let kinds = [
        DefenseKind::Unprotected,
        DefenseKind::InsecureL0,
        DefenseKind::MuonTrap,
        DefenseKind::InvisiSpecSpectre,
        DefenseKind::SttSpectre,
    ];
    let mut out = String::new();
    out.push_str("== Security litmus: does the attack extract information? ==\n");
    for kind in kinds {
        out.push_str(&format!("--- {} ---\n", kind.label()));
        let spectre = attacks::spectre_prime_probe(kind, config);
        out.push_str(&format!(
            "  {:40} leaked: {}\n",
            spectre.attack, spectre.leaked
        ));
        for outcome in attacks::litmus::run_litmus_suite(kind, config) {
            out.push_str(&format!("  {:40} leaked: {}\n", outcome.attack, outcome.leaked));
        }
    }
    out
}

/// A small summary line used by benches: runs one workload under one defense
/// and returns its simulated cycle count (so Criterion has a deterministic
/// piece of work to measure).
pub fn one_run_cycles(workload: &Workload, kind: DefenseKind, config: &SystemConfig) -> u64 {
    run_workload(workload, kind, config).cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_render_includes_geomean() {
        let fig = Figure {
            title: "test".to_string(),
            configs: vec!["a".to_string(), "b".to_string()],
            rows: vec![
                FigureRow { workload: "w1".to_string(), values: vec![1.0, 2.0] },
                FigureRow { workload: "w2".to_string(), values: vec![4.0, 8.0] },
            ],
        };
        let text = fig.render();
        assert!(text.contains("geomean"));
        let geo = fig.geomeans();
        assert!((geo[0] - 2.0).abs() < 1e-9);
        assert!((geo[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table1_mentions_the_core_count() {
        assert!(table1().contains("cores: 4"));
    }

    #[test]
    fn cumulative_kinds_grow_monotonically() {
        let kinds = cumulative_protection_kinds(true);
        assert_eq!(kinds.len(), 7);
        assert_eq!(kinds[0].0, "insecure L0");
        assert_eq!(kinds.last().unwrap().0, "parallel L1d");
    }

    #[test]
    fn tiny_figure_3_subset_runs() {
        // A smoke test over two workloads so the full harness logic (shared
        // baseline, normalisation, geomean) is exercised quickly.
        let cfg = SystemConfig::small_test();
        let workloads = &spec_suite(Scale::Tiny)[..2];
        let fig = build_figure("smoke", workloads, &[DefenseKind::MuonTrap], &cfg);
        assert_eq!(fig.rows.len(), 2);
        assert!(fig.rows.iter().all(|r| r.values[0] > 0.2 && r.values[0] < 5.0));
    }
}
