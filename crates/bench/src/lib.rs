//! Shared harness code behind the figure binaries and benches.
//!
//! Every table and figure in the paper's evaluation section (§6) has a
//! function here that produces its data, and a thin binary in `src/bin/` that
//! prints it. All figure functions run on
//! [`simsys::session::ExperimentSession`], so baselines are memoized per
//! workload and grid cells run in parallel; each returns a structured
//! [`RunReport`] that serialises to JSON (`--json` on every binary) or
//! renders as the classic aligned text table.
//!
//! | Paper artefact | Function | Binary |
//! |----------------|----------|--------|
//! | Table 1        | [`table1`] | `table1` |
//! | Figure 3       | [`figure3`] | `fig3` |
//! | Figure 4       | [`figure4`] | `fig4` |
//! | Figure 5       | [`figure5`] | `fig5` |
//! | Figure 6       | [`figure6`] | `fig6` |
//! | Figure 7       | [`figure7`] | `fig7` |
//! | Figure 8       | [`figure8`] | `fig8` |
//! | Figure 9       | [`figure9`] | `fig9` |
//! | §4.8 stress    | [`domain_switch_report`] | `attacks_report` |
//! | Attacks 1–6    | [`security_matrix`] | `attacks_report` |
//! | Static census  | [`lint::corpus_census`] | `speclint` |
//!
//! Each `figureN` has a `figureN_session` sibling returning the *un-run*
//! [`ExperimentSession`], and [`figure_session`] resolves the same sessions
//! by name (`"fig3"`…`"fig9"`, `"domain"`). The named form is what the
//! `shard` and `merge` binaries use: every process of a multi-host run
//! rebuilds the identical plan from the figure name, then coordinates purely
//! through the shared store directory (see [`simsys::runner`]).
//!
//! The `report` binary regenerates everything at once into one JSON
//! document, and — with `--html` — into one self-contained HTML page: one
//! SVG chart per figure plus the domain-switch summary table, rendered by
//! the [`reportgen`] crate through this crate's chart-metadata registry
//! ([`render::figure_meta`]). Each figure binary and `merge` accept the same
//! flag for their single figure.

#![forbid(unsafe_code)]

pub mod cli;
pub mod fleet;
pub mod lint;
pub mod perf;
pub mod render;
pub mod watch;

use simkit::config::{ProtectionConfig, SystemConfig};
use simkit::json::{Json, ToJson};
use simkit::stats::geometric_mean;

use attacks::AttackOutcome;
use defenses::{DefenseKind, DefenseRegistry};
use simsys::session::{ExperimentSession, RunReport};
use simsys::store::ResultStore;
use workloads::{domain_switch_suite, parsec_suite, spec_suite, Scale, Workload};

/// One row of a normalised-execution-time figure: a workload plus one value
/// per configuration, in the same order as the `configs` header.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Workload (benchmark) name.
    pub workload: String,
    /// Normalised execution time per configuration (1.0 = unprotected).
    pub values: Vec<f64>,
}

/// A complete figure: the configuration labels and one row per workload, plus
/// the geometric-mean row the paper reports.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// One label per configuration column.
    pub configs: Vec<String>,
    /// One row per workload.
    pub rows: Vec<FigureRow>,
}

impl Figure {
    /// The normalised-execution-time view of a session report.
    pub fn from_report(report: &RunReport) -> Figure {
        Figure {
            title: report.title.clone(),
            configs: report.columns.clone(),
            rows: (0..report.workloads.len())
                .map(|w| FigureRow {
                    workload: report.workloads[w].clone(),
                    values: (0..report.columns.len())
                        .map(|c| report.cell(w, c).normalized_time)
                        .collect(),
                })
                .collect(),
        }
    }

    /// The geometric mean of each column across all rows.
    pub fn geomeans(&self) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| {
                let column: Vec<f64> = self.rows.iter().map(|r| r.values[c]).collect();
                geometric_mean(&column)
            })
            .collect()
    }

    /// Renders the figure as an aligned text table (what the binaries print).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<16}", "workload"));
        for c in &self.configs {
            out.push_str(&format!("{c:>24}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<16}", row.workload));
            for v in &row.values {
                out.push_str(&format!("{v:>24.3}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<16}", "geomean"));
        for g in self.geomeans() {
            out.push_str(&format!("{g:>24.3}"));
        }
        out.push('\n');
        out
    }
}

fn session(
    title: &str,
    scale: Scale,
    workloads: Vec<Workload>,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    ExperimentSession::new()
        .title(title)
        .scale(scale)
        .workloads(workloads)
        .config(config.clone())
        .threads(threads)
        .store(store.cloned())
}

/// Table 1: the simulated system configuration.
pub fn table1() -> String {
    format!(
        "== Table 1: system configuration ==\n{}",
        SystemConfig::paper_default()
    )
}

/// Table 1 as JSON (the `table1 --json` output).
pub fn table1_json() -> Json {
    let cfg = SystemConfig::paper_default();
    Json::obj([
        ("cores", Json::UInt(cfg.cores as u64)),
        ("line_bytes", Json::UInt(cfg.line_bytes)),
        ("pipeline_width", Json::UInt(cfg.pipeline.width as u64)),
        ("rob_entries", Json::UInt(cfg.pipeline.rob_entries as u64)),
        ("l1d_bytes", Json::UInt(cfg.l1d.size_bytes)),
        ("l2_bytes", Json::UInt(cfg.l2.size_bytes)),
        ("data_filter_bytes", Json::UInt(cfg.data_filter.size_bytes)),
        ("data_filter_ways", Json::UInt(cfg.data_filter.ways as u64)),
        ("description", Json::Str(format!("{cfg}"))),
    ])
}

/// The [`ExperimentSession`] behind [`figure3`], un-run (for planning,
/// sharding, or event streaming).
pub fn figure3_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    session(
        "Figure 3: SPEC CPU2006-like, normalised execution time (lower is better)",
        scale,
        spec_suite(scale),
        config,
        threads,
        store,
    )
    .defenses(DefenseKind::figure3_set())
}

/// Figure 3: normalised execution time on the SPEC-CPU2006-like suite for
/// MuonTrap, InvisiSpec (both variants) and STT (both variants).
pub fn figure3(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    figure3_session(scale, config, threads, store).run()
}

/// The [`ExperimentSession`] behind [`figure4`], un-run.
pub fn figure4_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    session(
        "Figure 4: Parsec-like (4 threads), normalised execution time (lower is better)",
        scale,
        parsec_suite(scale, config.cores),
        config,
        threads,
        store,
    )
    .defenses(DefenseKind::figure3_set())
}

/// Figure 4: normalised execution time on the Parsec-like suite (4 threads).
pub fn figure4(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    figure4_session(scale, config, threads, store).run()
}

/// The [`ExperimentSession`] behind [`figure5`], un-run.
pub fn figure5_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    let sizes: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];
    let sweep = sizes.map(|size| {
        // Fully associative at every size, as in the paper's sweep.
        (
            format!("{size} B"),
            config.with_data_filter(size, (size / config.line_bytes) as usize),
        )
    });
    session(
        "Figure 5: filter-cache size sweep (fully associative), Parsec-like",
        scale,
        parsec_suite(scale, config.cores),
        config,
        threads,
        store,
    )
    .defenses([DefenseKind::MuonTrap])
    .config_sweep(sweep)
}

/// Figure 5: Parsec-like performance as the (fully-associative) data filter
/// cache is swept from 64 B to 4 KiB. One baseline per workload: the swept
/// filter-cache geometry is invisible to the unprotected machine.
pub fn figure5(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    figure5_session(scale, config, threads, store).run()
}

/// The [`ExperimentSession`] behind [`figure6`], un-run.
pub fn figure6_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    let ways: [usize; 6] = [1, 2, 4, 8, 16, 32];
    let sweep = ways.map(|w| (format!("{w}-way"), config.with_data_filter(2048, w)));
    session(
        "Figure 6: 2 KiB filter-cache associativity sweep, Parsec-like",
        scale,
        parsec_suite(scale, config.cores),
        config,
        threads,
        store,
    )
    .defenses([DefenseKind::MuonTrap])
    .config_sweep(sweep)
}

/// Figure 6: Parsec-like performance as the associativity of a 2 KiB filter
/// cache is swept from direct-mapped to fully associative.
pub fn figure6(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    figure6_session(scale, config, threads, store).run()
}

/// The [`ExperimentSession`] behind [`figure7`], un-run.
pub fn figure7_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    session(
        "Figure 7: fraction of writes triggering filter-cache invalidation broadcasts",
        scale,
        spec_suite(scale),
        config,
        threads,
        store,
    )
    .defenses([DefenseKind::MuonTrap])
}

/// Figure 7: runs the SPEC-like suite under full MuonTrap; the figure's
/// invalidation-broadcast rates come from [`invalidate_rates`] over the
/// returned report's cell statistics.
pub fn figure7(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    figure7_session(scale, config, threads, store).run()
}

/// The per-workload invalidation-broadcast rates behind figure 7, derived
/// from a [`figure7`] report's `muontrap.*` counters.
pub fn invalidate_rates(report: &RunReport) -> Figure {
    Figure {
        title: report.title.clone(),
        configs: vec!["invalidate rate".to_string()],
        rows: report
            .cells
            .iter()
            .map(|cell| {
                let stores = cell.stats.counter("muontrap.committed_stores");
                let broadcasts = cell.stats.counter("muontrap.store_upgrade_broadcasts");
                let rate = if stores == 0 {
                    0.0
                } else {
                    broadcasts as f64 / stores as f64
                };
                FigureRow {
                    workload: cell.workload.clone(),
                    values: vec![rate],
                }
            })
            .collect(),
    }
}

/// The cumulative protection configurations of figures 8 and 9, in the order
/// the paper stacks them.
pub fn cumulative_protection_kinds(include_parallel_l1: bool) -> Vec<(String, DefenseKind)> {
    let mut insecure = ProtectionConfig::insecure_l0();
    insecure.prefetch_at_commit = false;

    let fcache_only = ProtectionConfig {
        data_filter_cache: true,
        secure_filter: true,
        coherence_protection: false,
        instruction_filter_cache: false,
        prefetch_at_commit: false,
        clear_on_misspeculate: false,
        parallel_l1_access: false,
        filter_tlb: true,
    };
    let coherency = ProtectionConfig {
        coherence_protection: true,
        ..fcache_only
    };
    let ifcache = ProtectionConfig {
        instruction_filter_cache: true,
        ..coherency
    };
    let prefetching = ProtectionConfig {
        prefetch_at_commit: true,
        ..ifcache
    };
    let clear_misspec = ProtectionConfig {
        clear_on_misspeculate: true,
        ..prefetching
    };

    let mut kinds = vec![
        (
            "insecure L0".to_string(),
            DefenseKind::MuonTrapCustom(insecure),
        ),
        (
            "fcache only".to_string(),
            DefenseKind::MuonTrapCustom(fcache_only),
        ),
        (
            "coherency".to_string(),
            DefenseKind::MuonTrapCustom(coherency),
        ),
        ("ifcache".to_string(), DefenseKind::MuonTrapCustom(ifcache)),
        (
            "prefetching".to_string(),
            DefenseKind::MuonTrapCustom(prefetching),
        ),
        (
            "clear misspec".to_string(),
            DefenseKind::MuonTrapCustom(clear_misspec),
        ),
    ];
    if include_parallel_l1 {
        let parallel = ProtectionConfig {
            parallel_l1_access: true,
            ..prefetching
        };
        kinds.push((
            "parallel L1d".to_string(),
            DefenseKind::MuonTrapCustom(parallel),
        ));
    }
    kinds
}

/// The [`ExperimentSession`] behind [`figure8`], un-run.
pub fn figure8_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    session(
        "Figure 8: cumulative protection mechanisms, Parsec-like",
        scale,
        parsec_suite(scale, config.cores),
        config,
        threads,
        store,
    )
    .defenses_labeled(cumulative_protection_kinds(false))
}

/// Figure 8: cumulatively adding protection mechanisms, Parsec-like suite.
pub fn figure8(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    figure8_session(scale, config, threads, store).run()
}

/// The [`ExperimentSession`] behind [`figure9`], un-run.
pub fn figure9_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    session(
        "Figure 9: cumulative protection mechanisms (+ parallel L1d), SPEC-like",
        scale,
        spec_suite(scale),
        config,
        threads,
        store,
    )
    .defenses_labeled(cumulative_protection_kinds(true))
}

/// Figure 9: cumulatively adding protection mechanisms plus the parallel
/// L0/L1 lookup option, SPEC-like suite.
pub fn figure9(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    figure9_session(scale, config, threads, store).run()
}

/// The [`ExperimentSession`] behind [`shootout`], un-run.
pub fn shootout_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    session(
        "Defense shoot-out: every modelled defense, SPEC-like, normalised execution time",
        scale,
        spec_suite(scale),
        config,
        threads,
        store,
    )
    .defenses(DefenseKind::shootout_set())
}

/// The cross-defense shoot-out: the SPEC-like suite under every member of
/// the defense zoo ([`DefenseKind::shootout_set`]) — the insecure L0, Fence,
/// DelayLoads, SafeBet, MuonTrap, InvisiSpec-Spectre and STT-Spectre — all
/// normalised to the unprotected baseline, so the cost of each protection
/// family lands on one axis. Shares its MuonTrap/InvisiSpec/STT cells (and
/// every baseline) with figure 3 through the result store.
pub fn shootout(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    shootout_session(scale, config, threads, store).run()
}

/// The [`ExperimentSession`] behind [`domain_switch_report`], un-run.
pub fn domain_switch_session(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> ExperimentSession {
    session(
        "Domain-switch stress (§4.8): syscall/sandbox-heavy kernels, normalised execution time",
        scale,
        domain_switch_suite(scale),
        config,
        threads,
        store,
    )
    .defenses(DefenseKind::figure3_set())
}

/// The §4.8 domain-switch stress grid: the syscall/sandbox-transition
/// kernels (which force a filter-cache flush every few hundred instructions)
/// under the figure-3 defense set. Printed by `attacks_report` alongside the
/// security matrix and included in the `report` document.
pub fn domain_switch_report(
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> RunReport {
    domain_switch_session(scale, config, threads, store).run()
}

/// The names [`figure_session`] resolves, in `report`-document order.
pub const FIGURE_NAMES: [&str; 9] = [
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "shootout", "domain",
];

/// Resolves a figure name (see [`FIGURE_NAMES`]) to its un-run
/// [`ExperimentSession`].
///
/// This is the planning entry point of the multi-process workflow: the
/// `shard` and `merge` binaries both rebuild the session from the name, so
/// every process of a run derives the identical
/// [`Plan`](simsys::runner::Plan) and they coordinate purely through the
/// shared store directory.
pub fn figure_session(
    name: &str,
    scale: Scale,
    config: &SystemConfig,
    threads: usize,
    store: Option<&ResultStore>,
) -> Option<ExperimentSession> {
    let build = match name {
        "fig3" => figure3_session,
        "fig4" => figure4_session,
        "fig5" => figure5_session,
        "fig6" => figure6_session,
        "fig7" => figure7_session,
        "fig8" => figure8_session,
        "fig9" => figure9_session,
        "shootout" => shootout_session,
        "domain" => domain_switch_session,
        _ => return None,
    };
    Some(build(scale, config, threads, store))
}

/// The raw outcome of every attack against every configuration the security
/// argument compares: the full [`DefenseRegistry::standard`] catalogue, in
/// registration order, so a newly registered defense can never silently fall
/// out of the attack report.
pub fn security_outcomes(config: &SystemConfig) -> Vec<AttackOutcome> {
    let registry = DefenseRegistry::standard();
    let mut outcomes = Vec::new();
    for (_, kind) in registry.iter() {
        outcomes.push(attacks::spectre_prime_probe(kind, config));
        outcomes.extend(attacks::litmus::run_litmus_suite(kind, config));
    }
    outcomes
}

/// The security matrix: every attack against every configuration, reporting
/// which configurations leak (the paper's qualitative security argument).
pub fn security_matrix(config: &SystemConfig) -> String {
    let mut out = String::new();
    out.push_str("== Security litmus: does the attack extract information? ==\n");
    let mut current_defense = String::new();
    for outcome in security_outcomes(config) {
        if outcome.defense != current_defense {
            current_defense = outcome.defense.clone();
            out.push_str(&format!("--- {current_defense} ---\n"));
        }
        out.push_str(&format!(
            "  {:40} leaked: {}\n",
            outcome.attack, outcome.leaked
        ));
    }
    out
}

/// The security matrix as JSON (the `attacks_report --json` output).
pub fn security_json(config: &SystemConfig) -> Json {
    Json::Arr(
        security_outcomes(config)
            .iter()
            .map(ToJson::to_json)
            .collect(),
    )
}

/// Runs one workload under one defense and returns its simulated cycle count:
/// exactly one simulation, no baseline. A convenience for ad-hoc throughput
/// measurements (the benches time whole figure grids instead).
pub fn one_run_cycles(workload: &Workload, kind: DefenseKind, config: &SystemConfig) -> u64 {
    simsys::session::simulate(workload, kind, config).cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_render_includes_geomean() {
        let fig = Figure {
            title: "test".to_string(),
            configs: vec!["a".to_string(), "b".to_string()],
            rows: vec![
                FigureRow {
                    workload: "w1".to_string(),
                    values: vec![1.0, 2.0],
                },
                FigureRow {
                    workload: "w2".to_string(),
                    values: vec![4.0, 8.0],
                },
            ],
        };
        let text = fig.render();
        assert!(text.contains("geomean"));
        let geo = fig.geomeans();
        assert!((geo[0] - 2.0).abs() < 1e-9);
        assert!((geo[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table1_mentions_the_core_count() {
        assert!(table1().contains("cores: 4"));
        assert_eq!(table1_json().get("cores").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn cumulative_kinds_grow_monotonically() {
        let kinds = cumulative_protection_kinds(true);
        assert_eq!(kinds.len(), 7);
        assert_eq!(kinds[0].0, "insecure L0");
        assert_eq!(kinds.last().unwrap().0, "parallel L1d");
    }

    #[test]
    fn tiny_figure_3_subset_runs() {
        // A smoke test over two workloads so the full harness logic (shared
        // baseline, normalisation, geomean) is exercised quickly.
        let cfg = SystemConfig::small_test();
        let report = ExperimentSession::new()
            .title("smoke")
            .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
            .defenses([DefenseKind::MuonTrap])
            .config(cfg)
            .run();
        let fig = Figure::from_report(&report);
        assert_eq!(fig.rows.len(), 2);
        assert!(fig
            .rows
            .iter()
            .all(|r| r.values[0] > 0.2 && r.values[0] < 5.0));
        assert_eq!(fig.geomeans(), report.geomeans());
    }

    #[test]
    fn one_run_cycles_performs_a_single_deterministic_simulation() {
        let cfg = SystemConfig::small_test();
        let w = &spec_suite(Scale::Tiny)[0];
        let a = one_run_cycles(w, DefenseKind::MuonTrap, &cfg);
        let b = one_run_cycles(w, DefenseKind::MuonTrap, &cfg);
        assert!(a > 0);
        assert_eq!(a, b);
    }

    #[test]
    fn figure_session_resolves_every_name_and_rejects_unknowns() {
        let cfg = SystemConfig::small_test();
        for name in FIGURE_NAMES {
            let session = figure_session(name, Scale::Tiny, &cfg, 1, None)
                .unwrap_or_else(|| panic!("figure {name} must resolve"));
            let plan = session.plan();
            assert!(!plan.cells.is_empty(), "figure {name} plans an empty grid");
            assert!(!plan.title.is_empty());
            // Planning is deterministic across resolutions — the property
            // the shard/merge binaries rely on.
            let again = figure_session(name, Scale::Tiny, &cfg, 1, None)
                .unwrap()
                .plan();
            assert_eq!(
                plan.cells.iter().map(|c| c.fingerprint).collect::<Vec<_>>(),
                again
                    .cells
                    .iter()
                    .map(|c| c.fingerprint)
                    .collect::<Vec<_>>()
            );
        }
        assert!(figure_session("fig12", Scale::Tiny, &cfg, 1, None).is_none());
    }

    #[test]
    fn domain_switch_grid_runs_the_new_kernels_under_every_defense() {
        let report = domain_switch_session(Scale::Tiny, &SystemConfig::small_test(), 2, None).run();
        assert_eq!(report.workloads, vec!["syscall-storm", "sandbox-hop"]);
        assert_eq!(report.columns.len(), DefenseKind::figure3_set().len());
        for cell in &report.cells {
            assert!(cell.completed, "{} under {}", cell.workload, cell.column);
            assert!(cell.normalized_time > 0.2 && cell.normalized_time < 6.0);
        }
        // The kernels actually exercise the flush path: MuonTrap reports
        // syscall and sandbox flushes on these workloads.
        let muontrap = report
            .cells
            .iter()
            .find(|c| c.defense == DefenseKind::MuonTrap.label())
            .expect("muontrap column exists");
        assert!(
            muontrap.stats.counter("muontrap.syscall_flushes")
                + muontrap.stats.counter("muontrap.sandbox_flushes")
                > 0,
            "domain-switch kernels must trigger filter-cache flushes"
        );
    }

    #[test]
    fn figure7_rates_are_fractions() {
        let mut cfg = SystemConfig::small_test();
        cfg.cores = 1;
        let report = ExperimentSession::new()
            .title("fig7 smoke")
            .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
            .defenses([DefenseKind::MuonTrap])
            .config(cfg)
            .run();
        let rates = invalidate_rates(&report);
        assert_eq!(rates.rows.len(), 2);
        assert!(rates
            .rows
            .iter()
            .all(|r| (0.0..=1.0).contains(&r.values[0])));
    }
}
