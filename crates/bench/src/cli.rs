//! The tiny shared argument parser behind every figure binary.
//!
//! All the binaries accept the same flags:
//!
//! * `--json` — emit the machine-readable report instead of the text table,
//! * `--scale <tiny|small|large>` — workload scale (default `small`),
//! * `--threads <n>` — session worker threads (default: all cores),
//! * `--store <dir>` — back the run with a content-addressed result store
//!   (see [`simsys::store`]): simulations already in the store are not
//!   re-run, and new results are persisted for the next invocation. Defaults
//!   to the `MUONTRAP_STORE` environment variable when set,
//! * `--no-store` — ignore `MUONTRAP_STORE` and any earlier `--store`,
//! * `--store-readonly` — open the store read-only: hits are served, misses
//!   simulate but are never written back (CI reusing a store artifact),
//! * `--events <file>` — stream one [`simsys::runner::RunEvent`] JSONL line
//!   per resolved work unit to `file` while the run progresses,
//! * `--shard-id <i> --shard-count <n>` — run as shard *i* of an *n*-process
//!   cooperating run (requires `--store` and `--events`; shards coordinate
//!   through lease files under the store). The binary then prints a
//!   [`simsys::runner::ShardSummary`] instead of a report; fold the event logs with the
//!   `merge` binary,
//! * `--run-id <id>` — the identifier shared by every shard of one logical
//!   run (and reused when resuming it). Required with `--shard-id`, and must
//!   be unique per logical run,
//! * `--lease-ttl-ms <ms>` — override the shard lease TTL (default 30000).
//!   The heartbeat interval is clamped to a third of it, so short TTLs (used
//!   by the `fleet` supervisor to reclaim killed shards quickly) keep live
//!   shards beating well inside their leases,
//! * `--html <file>` — additionally render the report as a self-contained
//!   HTML page (inline SVG chart, inline CSS, no external assets) via
//!   [`crate::render`]. On `report`, the page covers every figure plus the
//!   domain-switch table; on a figure binary or `merge`, that one figure,
//! * `--html-only` — with `--html`: write the HTML artefact and suppress the
//!   stdout report,
//! * `--metrics <file>` — on exit, append one [`obs::metrics`] snapshot of
//!   the process-global registry to `file` as a JSONL line (unit latencies,
//!   event counts — whatever the run instrumented),
//! * `--tiny` — backwards-compatible alias for `--scale tiny`,
//! * `--help` — print usage.

use std::path::PathBuf;

use simkit::config::SystemConfig;
use simkit::json::ToJson;
use simsys::runner::ShardOptions;
use simsys::session::{ExperimentSession, RunReport};
use simsys::store::ResultStore;
use workloads::Scale;

/// The placeholder run id of non-sharded invocations. Sharded runs must
/// name their own (see [`CliOptions::parse`]): freshness provenance is
/// keyed on it, so silently sharing a default across distinct runs would
/// corrupt the cached/fresh accounting of every later run on the store.
pub const DEFAULT_RUN_ID: &str = "adhoc";

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Emit JSON instead of the text rendering.
    pub json: bool,
    /// Workload scale.
    pub scale: Scale,
    /// Session worker threads.
    pub threads: usize,
    /// Result-store directory, if any (`--store`, else `MUONTRAP_STORE`,
    /// either silenced by `--no-store`).
    pub store: Option<PathBuf>,
    /// Open the store read-only (`--store-readonly`).
    pub store_readonly: bool,
    /// Stream JSONL run events to this file (`--events`).
    pub events: Option<PathBuf>,
    /// Run as this shard of a multi-process run (`--shard-id`).
    pub shard_id: Option<usize>,
    /// Total shards of the run (`--shard-count`, default 1).
    pub shard_count: usize,
    /// Identifier shared by all shards of one logical run (`--run-id`).
    pub run_id: String,
    /// Shard lease TTL override in milliseconds (`--lease-ttl-ms`).
    pub lease_ttl_ms: Option<u64>,
    /// Write a self-contained HTML rendering to this file (`--html`).
    pub html: Option<PathBuf>,
    /// Suppress the stdout report, keeping only the HTML artefact
    /// (`--html-only`).
    pub html_only: bool,
    /// Append an [`obs::metrics`] registry snapshot (one JSONL line) to this
    /// file on exit (`--metrics`).
    pub metrics: Option<PathBuf>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            json: false,
            scale: Scale::Small,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            store: std::env::var_os("MUONTRAP_STORE").map(PathBuf::from),
            store_readonly: false,
            events: None,
            shard_id: None,
            shard_count: 1,
            run_id: DEFAULT_RUN_ID.to_string(),
            lease_ttl_ms: None,
            html: None,
            html_only: false,
            metrics: None,
        }
    }
}

impl CliOptions {
    /// Parses an argument list (excluding the program name). When both
    /// `--store` and `--no-store` appear, the last one wins.
    ///
    /// # Errors
    /// Returns a usage message when a flag is unknown, a value is missing or
    /// malformed, or the sharding flags are inconsistent.
    pub fn parse<I, S>(args: I) -> Result<CliOptions, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut options = CliOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_ref() {
                "--json" => options.json = true,
                "--tiny" => options.scale = Scale::Tiny,
                "--scale" => {
                    let value = args.next().ok_or("--scale needs a value")?;
                    options.scale = value.as_ref().parse::<Scale>().map_err(|e| e.to_string())?;
                }
                "--threads" => {
                    let value = args.next().ok_or("--threads needs a value")?;
                    let parsed: usize = value
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("invalid thread count `{}`", value.as_ref()))?;
                    if parsed == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    options.threads = parsed;
                }
                "--store" => {
                    let value = args.next().ok_or("--store needs a directory")?;
                    options.store = Some(PathBuf::from(value.as_ref()));
                }
                "--no-store" => options.store = None,
                "--store-readonly" => options.store_readonly = true,
                "--events" => {
                    let value = args.next().ok_or("--events needs a file")?;
                    options.events = Some(PathBuf::from(value.as_ref()));
                }
                "--shard-id" => {
                    let value = args.next().ok_or("--shard-id needs a value")?;
                    options.shard_id = Some(
                        value
                            .as_ref()
                            .parse()
                            .map_err(|_| format!("invalid shard id `{}`", value.as_ref()))?,
                    );
                }
                "--shard-count" => {
                    let value = args.next().ok_or("--shard-count needs a value")?;
                    let parsed: usize = value
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("invalid shard count `{}`", value.as_ref()))?;
                    if parsed == 0 {
                        return Err("--shard-count must be at least 1".to_string());
                    }
                    options.shard_count = parsed;
                }
                "--run-id" => {
                    let value = args.next().ok_or("--run-id needs a value")?;
                    options.run_id = value.as_ref().to_string();
                }
                "--lease-ttl-ms" => {
                    let value = args.next().ok_or("--lease-ttl-ms needs a value")?;
                    let parsed: u64 = value
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("invalid lease TTL `{}`", value.as_ref()))?;
                    if parsed == 0 {
                        return Err("--lease-ttl-ms must be at least 1".to_string());
                    }
                    options.lease_ttl_ms = Some(parsed);
                }
                "--html" => {
                    let value = args.next().ok_or("--html needs a file")?;
                    options.html = Some(PathBuf::from(value.as_ref()));
                }
                "--html-only" => options.html_only = true,
                "--metrics" => {
                    let value = args.next().ok_or("--metrics needs a file")?;
                    options.metrics = Some(PathBuf::from(value.as_ref()));
                }
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", usage())),
            }
        }
        if options.html_only && options.html.is_none() {
            return Err(
                "--html-only needs --html FILE (there is nothing else to emit)".to_string(),
            );
        }
        if let Some(shard_id) = options.shard_id {
            if options.html.is_some() {
                // A shard resolves only its share of the grid; the complete
                // artefact comes from folding every shard's event log.
                return Err(
                    "shards emit event logs, not reports; render the HTML from the \
                     folded logs with `merge --html`"
                        .to_string(),
                );
            }
            if shard_id >= options.shard_count {
                return Err(format!(
                    "--shard-id {shard_id} out of range for --shard-count {}",
                    options.shard_count
                ));
            }
            if options.store.is_none() {
                return Err("sharded runs need --store (shards coordinate through it)".to_string());
            }
            if options.store_readonly {
                return Err("sharded runs need a writable store; drop --store-readonly".to_string());
            }
            if options.events.is_none() {
                return Err(
                    "sharded runs need --events FILE (the merge step folds the logs)".to_string(),
                );
            }
            if options.run_id == DEFAULT_RUN_ID {
                // Freshness provenance is keyed on the run id, and done
                // markers outlive the run — a silently shared default would
                // make every later run on the same store misreport its
                // store hits as fresh simulations.
                return Err(
                    "sharded runs need an explicit --run-id, unique per logical run \
                     (reuse one only to resume that run)"
                        .to_string(),
                );
            }
        }
        Ok(options)
    }

    /// Opens the configured result store (honouring `--store-readonly`),
    /// exiting with a diagnostic if the directory cannot be created. `None`
    /// when no store is configured.
    pub fn open_store(&self) -> Option<ResultStore> {
        self.store.as_ref().map(|path| {
            if self.store_readonly {
                ResultStore::read_only(path)
            } else {
                ResultStore::open(path).unwrap_or_else(|e| {
                    eprintln!("cannot open result store at {}: {e}", path.display());
                    std::process::exit(2);
                })
            }
        })
    }

    /// The [`ShardOptions`] for this invocation, when `--shard-id` was given.
    /// `--lease-ttl-ms` overrides the TTL, clamping the heartbeat interval
    /// to a third of it so the shard always beats well inside its lease.
    pub fn shard_options(&self) -> Option<ShardOptions> {
        self.shard_id.map(|id| {
            let mut opts = ShardOptions::new(id, self.shard_count, self.run_id.clone());
            if let Some(ttl) = self.lease_ttl_ms {
                opts.lease_ttl_ms = ttl;
                opts.heartbeat_ms = opts.heartbeat_ms.min((ttl / 3).max(1));
            }
            opts
        })
    }
}

/// The usage text shared by every binary.
pub fn usage() -> String {
    "usage: <binary> [--json] [--scale tiny|small|large] [--threads N] \
     [--store DIR] [--no-store] [--store-readonly] [--events FILE] \
     [--shard-id I --shard-count N] [--run-id ID] [--lease-ttl-ms MS] \
     [--html FILE [--html-only]] [--metrics FILE] [--tiny]"
        .to_string()
}

/// Parses `std::env::args`, exiting with the usage message on `--help` or a
/// parse error.
pub fn parse_or_exit() -> CliOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        std::process::exit(0);
    }
    match CliOptions::parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

/// Opens the `--events` sink, exiting with a diagnostic on failure.
pub fn open_events(options: &CliOptions) -> Option<std::fs::File> {
    options.events.as_ref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create event log {}: {e}", path.display());
            std::process::exit(2);
        })
    })
}

/// Appends one snapshot of the process-global [`obs::metrics`] registry to
/// the `--metrics` file as a JSONL line. A no-op when `--metrics` was not
/// given. Call once, when the run's work is finished — appending (rather
/// than truncating) lets a wrapper collect several invocations into one
/// telemetry log.
pub fn write_metrics(options: &CliOptions) {
    if let Some(path) = &options.metrics {
        write_metrics_to(path);
    }
}

/// [`write_metrics`] for binaries with their own flag parsing (`perf`).
pub fn write_metrics_to(path: &std::path::Path) {
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| obs::metrics::global().write_snapshot_jsonl(&mut file));
    if let Err(e) = result {
        // Telemetry must never fail the run it observes.
        eprintln!("cannot write metrics snapshot {}: {e}", path.display());
    }
}

/// Writes the HTML artefact for `--html`, exiting with a diagnostic on
/// failure. A no-op when `--html` was not given.
pub fn write_html(options: &CliOptions, html: impl FnOnce() -> String) {
    if let Some(path) = &options.html {
        std::fs::write(path, html()).unwrap_or_else(|e| {
            eprintln!("cannot write HTML report {}: {e}", path.display());
            std::process::exit(2);
        });
    }
}

/// Standard main body for a figure binary: parse flags, open the store,
/// build the *session* for the figure registered as `name` (see
/// [`crate::FIGURE_NAMES`]), then either run it locally (printing JSON with
/// `--json`, or Table 1 plus the rendered figure; `--html` additionally
/// writes the figure's self-contained HTML page) or — with `--shard-id` —
/// execute one shard of it against the shared store, streaming events to
/// `--events` and printing the [`simsys::runner::ShardSummary`] as JSON.
/// Every execution path goes through the [`simsys::runner`] pipeline.
pub fn figure_main(
    name: &str,
    build: impl FnOnce(&CliOptions, &SystemConfig, Option<&ResultStore>) -> ExperimentSession,
) {
    figure_main_rendered(name, build, |report| {
        crate::Figure::from_report(report).render()
    });
}

/// [`figure_main`] with a custom text-mode rendering (used by `fig7`, whose
/// figure is the invalidation-broadcast *rates* derived from the report's
/// counters, not the normalised times). `--json` still emits the full
/// [`RunReport`], and the sharded path is identical. (`--html` needs no
/// such override: the chart shape is the registry's
/// [`FigureMeta`](reportgen::FigureMeta), which already encodes the
/// counter-ratio derivation.)
pub fn figure_main_rendered(
    name: &str,
    build: impl FnOnce(&CliOptions, &SystemConfig, Option<&ResultStore>) -> ExperimentSession,
    render: impl FnOnce(&RunReport) -> String,
) {
    let options = parse_or_exit();
    let config = SystemConfig::paper_default();
    let store = options.open_store();
    let session = build(&options, &config, store.as_ref());
    if let Some(shard) = options.shard_options() {
        let mut events = open_events(&options).expect("--shard-id implies --events");
        match session.run_sharded(&shard, &mut events) {
            Ok(summary) => {
                write_metrics(&options);
                println!("{}", summary.to_json().to_string_pretty());
            }
            Err(e) => {
                eprintln!("shard {} failed: {e}", shard.shard_id);
                std::process::exit(1);
            }
        }
        return;
    }
    let mut events = open_events(&options);
    let report = session.run_with_events(match &mut events {
        Some(file) => Some(file),
        None => None,
    });
    write_metrics(&options);
    write_html(&options, || {
        crate::render::figure_document(name, &report, &options.run_id)
            .unwrap_or_else(|| panic!("figure binaries pass registered names; got `{name}`"))
    });
    if options.html_only {
        return;
    }
    if options.json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!("{}", crate::table1());
        println!("{}", render(&report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_old_binaries() {
        let options = CliOptions::parse(Vec::<String>::new()).unwrap();
        assert!(!options.json);
        assert_eq!(options.scale, Scale::Small);
        assert!(options.threads >= 1);
        assert!(!options.store_readonly);
        assert_eq!(options.shard_id, None);
        assert_eq!(options.shard_count, 1);
    }

    #[test]
    fn all_flags_parse() {
        let options = CliOptions::parse([
            "--json",
            "--scale",
            "large",
            "--threads",
            "3",
            "--store",
            "/tmp/s",
            "--events",
            "/tmp/e.jsonl",
            "--shard-id",
            "1",
            "--shard-count",
            "4",
            "--run-id",
            "nightly-7",
        ])
        .unwrap();
        assert!(options.json);
        assert_eq!(options.scale, Scale::Large);
        assert_eq!(options.threads, 3);
        assert_eq!(options.store, Some(PathBuf::from("/tmp/s")));
        assert_eq!(options.events, Some(PathBuf::from("/tmp/e.jsonl")));
        assert_eq!(options.shard_id, Some(1));
        assert_eq!(options.shard_count, 4);
        assert_eq!(options.run_id, "nightly-7");
        let shard = options.shard_options().unwrap();
        assert_eq!(shard.shard_id, 1);
        assert_eq!(shard.shard_count, 4);
        assert_eq!(shard.run_id, "nightly-7");
    }

    #[test]
    fn tiny_is_an_alias_for_scale_tiny() {
        let options = CliOptions::parse(["--tiny"]).unwrap();
        assert_eq!(options.scale, Scale::Tiny);
    }

    #[test]
    fn no_store_silences_an_earlier_store_and_vice_versa() {
        let off = CliOptions::parse(["--store", "/tmp/s", "--no-store"]).unwrap();
        assert_eq!(off.store, None);
        assert_eq!(off.open_store().map(|_| ()), None);
        let on = CliOptions::parse(["--no-store", "--store", "/tmp/s"]).unwrap();
        assert_eq!(on.store, Some(PathBuf::from("/tmp/s")));
    }

    #[test]
    fn readonly_stores_open_without_creating_the_directory() {
        let options =
            CliOptions::parse(["--store", "/tmp/muontrap-no-such-store", "--store-readonly"])
                .unwrap();
        let store = options.open_store().unwrap();
        assert!(store.is_read_only());
        assert!(
            !PathBuf::from("/tmp/muontrap-no-such-store").exists(),
            "read-only stores must not create directories"
        );
    }

    #[test]
    fn sharded_runs_require_a_writable_store_and_an_event_log() {
        let shard = |extra: &[&str]| {
            let mut args = vec!["--shard-id", "0", "--shard-count", "2"];
            args.extend_from_slice(extra);
            CliOptions::parse(args)
        };
        assert!(shard(&[]).is_err(), "no store");
        assert!(shard(&["--store", "/tmp/s"]).is_err(), "no events");
        assert!(
            shard(&[
                "--store",
                "/tmp/s",
                "--events",
                "/tmp/e",
                "--store-readonly"
            ])
            .is_err(),
            "read-only store"
        );
        assert!(
            shard(&["--store", "/tmp/s", "--events", "/tmp/e"]).is_err(),
            "the default run id must be rejected: done markers outlive runs"
        );
        assert!(shard(&["--store", "/tmp/s", "--events", "/tmp/e", "--run-id", "r1"]).is_ok());
        assert!(
            CliOptions::parse(["--shard-id", "2", "--shard-count", "2"]).is_err(),
            "shard id out of range"
        );
    }

    #[test]
    fn lease_ttl_overrides_shard_options_and_clamps_the_heartbeat() {
        let shard = |extra: &[&str]| {
            let mut args = vec![
                "--shard-id",
                "0",
                "--shard-count",
                "2",
                "--store",
                "/tmp/s",
                "--events",
                "/tmp/e",
                "--run-id",
                "r1",
            ];
            args.extend_from_slice(extra);
            CliOptions::parse(args).unwrap().shard_options().unwrap()
        };
        let default = shard(&[]);
        assert_eq!(default.lease_ttl_ms, 30_000);
        assert_eq!(default.heartbeat_ms, 5_000);
        let long = shard(&["--lease-ttl-ms", "60000"]);
        assert_eq!(long.lease_ttl_ms, 60_000);
        assert_eq!(
            long.heartbeat_ms, 5_000,
            "a longer TTL keeps the default beat"
        );
        let short = shard(&["--lease-ttl-ms", "300"]);
        assert_eq!(short.lease_ttl_ms, 300);
        assert_eq!(
            short.heartbeat_ms, 100,
            "the beat is clamped to a third of the TTL"
        );
        assert!(CliOptions::parse(["--lease-ttl-ms", "0"]).is_err());
        assert!(CliOptions::parse(["--lease-ttl-ms"]).is_err());
        assert!(usage().contains("--lease-ttl-ms"));
    }

    #[test]
    fn html_flags_parse_and_validate() {
        let options = CliOptions::parse(["--html", "/tmp/report.html", "--html-only"]).unwrap();
        assert_eq!(options.html, Some(PathBuf::from("/tmp/report.html")));
        assert!(options.html_only);
        let plain = CliOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(plain.html, None);
        assert!(!plain.html_only);
        assert!(
            CliOptions::parse(["--html-only"]).is_err(),
            "--html-only without --html has nothing to emit"
        );
        assert!(
            CliOptions::parse([
                "--shard-id",
                "0",
                "--shard-count",
                "2",
                "--store",
                "/tmp/s",
                "--events",
                "/tmp/e",
                "--run-id",
                "r1",
                "--html",
                "/tmp/x.html",
            ])
            .unwrap_err()
            .contains("merge --html"),
            "shards produce event logs, not rendered reports"
        );
    }

    #[test]
    fn metrics_flag_parses_and_snapshots_append() {
        let options = CliOptions::parse(["--metrics", "/tmp/m.jsonl"]).unwrap();
        assert_eq!(options.metrics, Some(PathBuf::from("/tmp/m.jsonl")));
        assert_eq!(
            CliOptions::parse(Vec::<String>::new()).unwrap().metrics,
            None
        );
        assert!(CliOptions::parse(["--metrics"]).is_err());

        let dir = std::env::temp_dir().join("muontrap-metrics-flag-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        let _ = std::fs::remove_file(&path);
        obs::metrics::global().inc("cli.test_counter", &[], 1);
        write_metrics_to(&path);
        write_metrics_to(&path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "each call appends one JSONL line");
        assert!(text.contains("cli.test_counter"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_input_is_rejected_with_usage() {
        assert!(CliOptions::parse(["--scale"]).is_err());
        assert!(CliOptions::parse(["--scale", "huge"]).is_err());
        assert!(CliOptions::parse(["--threads", "0"]).is_err());
        assert!(CliOptions::parse(["--threads", "lots"]).is_err());
        assert!(CliOptions::parse(["--store"]).is_err());
        assert!(CliOptions::parse(["--shard-count", "0"]).is_err());
        assert!(CliOptions::parse(["--wat"]).unwrap_err().contains("usage:"));
        assert!(CliOptions::parse(["--html"]).is_err());
        assert!(usage().contains("--store"));
        assert!(usage().contains("--shard-id"));
        assert!(usage().contains("--events"));
        assert!(usage().contains("--html"));
    }
}
