//! The tiny shared argument parser behind every figure binary.
//!
//! All ten binaries accept the same flags:
//!
//! * `--json` — emit the machine-readable report instead of the text table,
//! * `--scale <tiny|small|large>` — workload scale (default `small`),
//! * `--threads <n>` — session worker threads (default: all cores),
//! * `--store <dir>` — back the run with a content-addressed result store
//!   (see [`simsys::store`]): simulations already in the store are not
//!   re-run, and new results are persisted for the next invocation. Defaults
//!   to the `MUONTRAP_STORE` environment variable when set,
//! * `--no-store` — ignore `MUONTRAP_STORE` and any earlier `--store`,
//! * `--tiny` — backwards-compatible alias for `--scale tiny`,
//! * `--help` — print usage.

use std::path::PathBuf;

use simkit::config::SystemConfig;
use simkit::json::ToJson;
use simsys::session::RunReport;
use simsys::store::ResultStore;
use workloads::Scale;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Emit JSON instead of the text rendering.
    pub json: bool,
    /// Workload scale.
    pub scale: Scale,
    /// Session worker threads.
    pub threads: usize,
    /// Result-store directory, if any (`--store`, else `MUONTRAP_STORE`,
    /// either silenced by `--no-store`).
    pub store: Option<PathBuf>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            json: false,
            scale: Scale::Small,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            store: std::env::var_os("MUONTRAP_STORE").map(PathBuf::from),
        }
    }
}

impl CliOptions {
    /// Parses an argument list (excluding the program name). When both
    /// `--store` and `--no-store` appear, the last one wins.
    ///
    /// # Errors
    /// Returns a usage message when a flag is unknown or a value is missing
    /// or malformed.
    pub fn parse<I, S>(args: I) -> Result<CliOptions, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut options = CliOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_ref() {
                "--json" => options.json = true,
                "--tiny" => options.scale = Scale::Tiny,
                "--scale" => {
                    let value = args.next().ok_or("--scale needs a value")?;
                    options.scale = value.as_ref().parse::<Scale>().map_err(|e| e.to_string())?;
                }
                "--threads" => {
                    let value = args.next().ok_or("--threads needs a value")?;
                    let parsed: usize = value
                        .as_ref()
                        .parse()
                        .map_err(|_| format!("invalid thread count `{}`", value.as_ref()))?;
                    if parsed == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    options.threads = parsed;
                }
                "--store" => {
                    let value = args.next().ok_or("--store needs a directory")?;
                    options.store = Some(PathBuf::from(value.as_ref()));
                }
                "--no-store" => options.store = None,
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", usage())),
            }
        }
        Ok(options)
    }

    /// Opens the configured result store, exiting with a diagnostic if the
    /// directory cannot be created. `None` when no store is configured.
    pub fn open_store(&self) -> Option<ResultStore> {
        self.store.as_ref().map(|path| {
            ResultStore::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open result store at {}: {e}", path.display());
                std::process::exit(2);
            })
        })
    }
}

/// The usage text shared by every binary.
pub fn usage() -> String {
    "usage: <binary> [--json] [--scale tiny|small|large] [--threads N] \
     [--store DIR] [--no-store] [--tiny]"
        .to_string()
}

/// Parses `std::env::args`, exiting with the usage message on `--help` or a
/// parse error.
pub fn parse_or_exit() -> CliOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        std::process::exit(0);
    }
    match CliOptions::parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

/// Standard main body for a figure binary: parse flags, open the store,
/// build the report, print JSON (with `--json`) or Table 1 plus the rendered
/// figure.
pub fn figure_main(
    build: impl FnOnce(&CliOptions, &SystemConfig, Option<&ResultStore>) -> RunReport,
) {
    let options = parse_or_exit();
    let config = SystemConfig::paper_default();
    let store = options.open_store();
    let report = build(&options, &config, store.as_ref());
    if options.json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!("{}", crate::table1());
        println!("{}", crate::Figure::from_report(&report).render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_old_binaries() {
        let options = CliOptions::parse(Vec::<String>::new()).unwrap();
        assert!(!options.json);
        assert_eq!(options.scale, Scale::Small);
        assert!(options.threads >= 1);
    }

    #[test]
    fn all_flags_parse() {
        let options = CliOptions::parse([
            "--json",
            "--scale",
            "large",
            "--threads",
            "3",
            "--store",
            "/tmp/s",
        ])
        .unwrap();
        assert!(options.json);
        assert_eq!(options.scale, Scale::Large);
        assert_eq!(options.threads, 3);
        assert_eq!(options.store, Some(PathBuf::from("/tmp/s")));
    }

    #[test]
    fn tiny_is_an_alias_for_scale_tiny() {
        let options = CliOptions::parse(["--tiny"]).unwrap();
        assert_eq!(options.scale, Scale::Tiny);
    }

    #[test]
    fn no_store_silences_an_earlier_store_and_vice_versa() {
        let off = CliOptions::parse(["--store", "/tmp/s", "--no-store"]).unwrap();
        assert_eq!(off.store, None);
        assert_eq!(off.open_store().map(|_| ()), None);
        let on = CliOptions::parse(["--no-store", "--store", "/tmp/s"]).unwrap();
        assert_eq!(on.store, Some(PathBuf::from("/tmp/s")));
    }

    #[test]
    fn bad_input_is_rejected_with_usage() {
        assert!(CliOptions::parse(["--scale"]).is_err());
        assert!(CliOptions::parse(["--scale", "huge"]).is_err());
        assert!(CliOptions::parse(["--threads", "0"]).is_err());
        assert!(CliOptions::parse(["--threads", "lots"]).is_err());
        assert!(CliOptions::parse(["--store"]).is_err());
        assert!(CliOptions::parse(["--wat"]).unwrap_err().contains("usage:"));
        assert!(usage().contains("--store"));
    }
}
