//! Regenerates the entire evaluation — Table 1, figures 3–9 and the security
//! matrix — as one JSON document (always JSON; there is no text mode). This
//! is the one-shot artefact-regeneration entry point:
//!
//! ```text
//! cargo run --release --bin report -- --scale small --threads 8 > evaluation.json
//! ```
//!
//! With `--store DIR` (or `MUONTRAP_STORE`), every simulation result is
//! persisted content-addressed on its inputs: the first run fills the store,
//! and a second run regenerates the full document with zero simulations. The
//! emitted `sims_executed` / per-cell `cached` fields record the provenance.
use simkit::json::{Json, ToJson};

fn main() {
    let options = bench::cli::parse_or_exit();
    let config = simkit::config::SystemConfig::paper_default();
    let store = options.open_store();
    let figures: Vec<Json> = [
        bench::figure3,
        bench::figure4,
        bench::figure5,
        bench::figure6,
        bench::figure7,
        bench::figure8,
        bench::figure9,
    ]
    .iter()
    .map(|figure| figure(options.scale, &config, options.threads, store.as_ref()).to_json())
    .collect();
    let document = Json::obj([
        ("scale", Json::Str(options.scale.to_string())),
        ("table1", bench::table1_json()),
        ("figures", Json::Arr(figures)),
        ("security", bench::security_json(&config)),
    ]);
    println!("{}", document.to_string_pretty());
}
