//! Regenerates the entire evaluation — Table 1, figures 3–9, the §4.8
//! domain-switch stress grid, the security matrix and the static `speclint`
//! gadget census — as one JSON document
//! (always JSON; there is no text mode). This is the one-shot
//! artefact-regeneration entry point:
//!
//! ```text
//! cargo run --release --bin report -- --scale small --threads 8 > evaluation.json
//! ```
//!
//! Every grid goes through the [`simsys::runner`] plan/execute/stream/merge
//! pipeline. With `--store DIR` (or `MUONTRAP_STORE`), every simulation
//! result is persisted content-addressed on its inputs: the first run fills
//! the store, and a second run regenerates the full document with zero
//! simulations. A store already populated by sharded `shard`/`merge` runs of
//! the individual figures serves this document for free, because planning is
//! host-independent and the fingerprints agree by construction. The emitted
//! `sims_executed` / per-cell `cached` fields record the provenance, and
//! `--events FILE` streams per-unit progress while the document builds.
//!
//! With `--html FILE` the same reports additionally render as one
//! self-contained HTML page — one SVG chart per figure plus the
//! domain-switch summary table, captions, paper cross-references and
//! per-figure provenance; see [`bench::render`]. `--html-only` skips the
//! JSON on stdout. Against a warm store the whole artefact regenerates in
//! seconds:
//!
//! ```text
//! report --scale small --store /data/store --html report.html --html-only
//! ```
use simkit::json::{Json, ToJson};
use simsys::session::RunReport;

fn main() {
    let options = bench::cli::parse_or_exit();
    if options.shard_id.is_some() {
        eprintln!(
            "report regenerates every figure and cannot run as one shard; \
             use `shard --figure <name>` per figure and fold with `merge`"
        );
        std::process::exit(2);
    }
    let config = simkit::config::SystemConfig::paper_default();
    let store = options.open_store();
    let mut events = bench::cli::open_events(&options);
    let reports: Vec<(String, RunReport)> = bench::FIGURE_NAMES
        .iter()
        .map(|name| {
            let session = bench::figure_session(
                name,
                options.scale,
                &config,
                options.threads,
                store.as_ref(),
            )
            .expect("every listed figure resolves");
            let report = session.run_with_events(match &mut events {
                Some(file) => Some(file),
                None => None,
            });
            (name.to_string(), report)
        })
        .collect();
    let census = bench::lint::corpus_census(options.scale, &speclint::AnalyzerConfig::default());
    bench::cli::write_metrics(&options);
    bench::cli::write_html(&options, || {
        bench::render::evaluation_document(
            &reports,
            &options.run_id,
            options.scale.name(),
            Some(&census),
        )
    });
    if options.html_only {
        return;
    }
    let figures: Vec<Json> = reports.iter().map(|(_, report)| report.to_json()).collect();
    let document = Json::obj([
        ("scale", Json::Str(options.scale.to_string())),
        ("table1", bench::table1_json()),
        ("figures", Json::Arr(figures)),
        ("security", bench::security_json(&config)),
        ("speclint", census.to_json()),
    ]);
    println!("{}", document.to_string_pretty());
}
