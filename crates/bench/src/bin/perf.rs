//! Measures hot-loop throughput over a fixed figure matrix and emits the
//! `BENCH_hotpath.json`-style [`PerfReport`](bench::perf::PerfReport).
//!
//! The store is always disabled: every cell is a real simulation, so the
//! numbers measure the simulator's hot loop and nothing else. Workloads are
//! deterministic (pinned seeds), so variance is wall-clock noise only.
//!
//! ```text
//! perf [--scale tiny|small|large] [--threads N]
//!      [--figures fig5,fig3,...]   # default: fig5 (the tracked grid)
//!      [--all]                     # every figure in FIGURE_NAMES
//!      [--naive]                   # disable the event-skipping loop
//!      [--out FILE]                # write the JSON report to FILE too
//! ```
//!
//! The CI perf-smoke job runs `perf --scale small` and fails if
//! `cells_per_sec` on the fig5 grid regresses more than 25% against the
//! committed `BENCH_hotpath.json` "after" numbers.

use std::io::Write as _;

use simkit::json::ToJson;
use workloads::Scale;

fn usage() -> String {
    "usage: perf [--scale tiny|small|large] [--threads N] [--figures a,b,c] \
     [--all] [--naive] [--out FILE] [--metrics FILE]"
        .to_string()
}

fn exit_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Small;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut figures: Vec<String> = vec!["fig5".to_string()];
    let mut naive = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut metrics: Option<std::path::PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next() {
                Some(value) => match value.parse::<Scale>() {
                    Ok(parsed) => scale = parsed,
                    Err(e) => exit_usage(&e.to_string()),
                },
                None => exit_usage("--scale needs a value"),
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(parsed) if parsed >= 1 => threads = parsed,
                _ => exit_usage("--threads needs a positive integer"),
            },
            "--figures" => match args.next() {
                Some(value) => {
                    figures = value.split(',').map(|s| s.trim().to_string()).collect();
                }
                None => exit_usage("--figures needs a comma-separated list"),
            },
            "--all" => {
                figures = bench::FIGURE_NAMES.iter().map(|s| s.to_string()).collect();
            }
            "--naive" => naive = true,
            "--out" => match args.next() {
                Some(value) => out = Some(std::path::PathBuf::from(value)),
                None => exit_usage("--out needs a file"),
            },
            "--metrics" => match args.next() {
                Some(value) => metrics = Some(std::path::PathBuf::from(value)),
                None => exit_usage("--metrics needs a file"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            other => exit_usage(&format!("unknown flag `{other}`")),
        }
    }
    for name in &figures {
        if !bench::FIGURE_NAMES.contains(&name.as_str()) {
            exit_usage(&format!(
                "unknown figure `{name}`; expected one of {:?}",
                bench::FIGURE_NAMES
            ));
        }
    }
    if naive {
        // Must be set before anything queries the (cached) loop mode; the
        // report's `naive_loop` field reflects the effective mode.
        std::env::set_var("MUONTRAP_NAIVE_LOOP", "1");
    }

    let names: Vec<&str> = figures.iter().map(String::as_str).collect();
    let report = bench::perf::measure(&names, scale, threads);
    let text = report.to_json().to_string_pretty();
    println!("{text}");
    if let Some(path) = out {
        let mut file = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(2);
        });
        writeln!(file, "{text}").expect("write perf report");
    }
    if let Some(path) = metrics {
        bench::cli::write_metrics_to(&path);
    }
    let total = report.total();
    eprintln!(
        "perf: {} figure(s) at {} scale, {} threads{}: {:.2} cells/s, {:.0} sim-cycles/s, \
         {:.0} insts/s, {:.2} sim-cycles/event, {:.0} events/cell",
        report.figures.len(),
        report.scale.name(),
        report.threads,
        if report.naive_loop {
            " (naive loop)"
        } else {
            ""
        },
        total.cells_per_sec(),
        total.sim_cycles_per_sec(),
        total.committed_insts_per_sec(),
        total.sim_cycles_per_event(),
        total.events_per_cell(),
    );
}
