//! Regenerates figure 3 of the paper. Run with `--release`; see `--help`
//! for the shared flags (`--json`, `--scale`, `--threads`, `--store`,
//! `--events`, `--shard-id`/`--shard-count`, `--html`/`--html-only`,
//! `--tiny`).
fn main() {
    bench::cli::figure_main("fig3", |options, config, store| {
        bench::figure3_session(options.scale, config, options.threads, store)
    });
}
