//! Regenerates figure 8 of the paper. Run with `--release`; see `--help`
//! for the shared flags (`--json`, `--scale`, `--threads`, `--store`,
//! `--events`, `--shard-id`/`--shard-count`, `--html`/`--html-only`,
//! `--tiny`).
fn main() {
    bench::cli::figure_main("fig8", |options, config, store| {
        bench::figure8_session(options.scale, config, options.threads, store)
    });
}
