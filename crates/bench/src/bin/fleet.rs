//! Supervises a local fleet of `shard` processes over one figure's grid.
//!
//! ```text
//! fleet --figure fig5 --scale small --store /data/store \
//!       --run-id nightly --shards 4
//! ```
//!
//! spawns four `shard` processes (found beside this binary, or via
//! `--shard-bin`), tails their event logs into a live stderr status line,
//! restarts any that crash (up to `--max-restarts` each; the store's
//! expiring leases hand the crashed shard's units to its replacement), and
//! finally folds every attempt's log into the merged figure report on
//! stdout — byte-identical to a single-process `figN --json` run.
//!
//! Exit status: 0 when the merge covered the whole grid, 1 when any cell
//! was left unresolved, 2 on usage errors. See [`bench::fleet`] for the
//! supervisor's lifecycle and guarantees.

use simkit::json::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", bench::fleet::usage());
        return;
    }
    let options = match bench::fleet::FleetOptions::parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}\n{}", bench::fleet::usage());
            std::process::exit(2);
        }
    };
    match bench::fleet::supervise(&options) {
        Ok(outcome) => {
            if let Some(path) = &options.metrics {
                bench::cli::write_metrics_to(path);
            }
            match &outcome.report {
                Some(report) => println!("{}", report.to_json().to_string_pretty()),
                None => {
                    eprintln!(
                        "fleet: merge incomplete: {}",
                        outcome.merge_error.as_deref().unwrap_or("unknown"),
                    );
                    std::process::exit(1);
                }
            }
        }
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
