//! Prints Table 1 of the paper (the simulated system configuration).
//! `--json` emits the configuration as a JSON object. Accepts the shared
//! flags (`--scale`, `--threads`, `--store`) for interface uniformity; the
//! table is static configuration, so they have nothing to affect. `--html`
//! is rejected rather than silently ignored: there is no figure here, and
//! the configuration already appears in `report --html`'s provenance.
fn main() {
    let options = bench::cli::parse_or_exit();
    if options.html.is_some() {
        eprintln!("table1 has no chart to render; use `report --html` for the full page");
        std::process::exit(2);
    }
    if options.json {
        println!("{}", bench::table1_json().to_string_pretty());
    } else {
        println!("{}", bench::table1());
    }
}
