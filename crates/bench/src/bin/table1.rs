//! Prints Table 1 of the paper (the simulated system configuration).
fn main() {
    println!("{}", bench::table1());
}
