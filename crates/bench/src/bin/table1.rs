//! Prints Table 1 of the paper (the simulated system configuration).
//! `--json` emits the configuration as a JSON object. Accepts the shared
//! flags (`--scale`, `--threads`, `--store`) for interface uniformity; the
//! table is static configuration, so they have nothing to affect.
fn main() {
    let options = bench::cli::parse_or_exit();
    if options.json {
        println!("{}", bench::table1_json().to_string_pretty());
    } else {
        println!("{}", bench::table1());
    }
}
