//! Prints Table 1 of the paper (the simulated system configuration).
//! `--json` emits the configuration as a JSON object.
fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if json {
        println!("{}", bench::table1_json().to_string_pretty());
    } else {
        println!("{}", bench::table1());
    }
}
