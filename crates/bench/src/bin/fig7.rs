//! Regenerates figure 7 of the paper (invalidation-broadcast rates). Run
//! with `--release`; see `--help` for the shared flags (`--json`, `--scale`,
//! `--threads`, `--store`, `--tiny`). The `--json` report is the full session
//! `RunReport`; the per-workload rates the text mode renders come from the
//! `muontrap.*` counters in each cell's stats.
fn main() {
    let options = bench::cli::parse_or_exit();
    let config = simkit::config::SystemConfig::paper_default();
    let store = options.open_store();
    let report = bench::figure7(options.scale, &config, options.threads, store.as_ref());
    if options.json {
        use simkit::json::ToJson;
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!("{}", bench::table1());
        println!("{}", bench::invalidate_rates(&report).render());
    }
}
