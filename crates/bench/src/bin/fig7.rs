//! Regenerates figure 7 of the paper (invalidation-broadcast rates). Run
//! with `--release`; see `--help` for the shared flags (`--json`, `--scale`,
//! `--threads`, `--store`, `--events`, `--shard-id`/`--shard-count`,
//! `--html`/`--html-only`, `--tiny`). The `--json` report is the full
//! session `RunReport`; the
//! per-workload rates the text mode renders come from the `muontrap.*`
//! counters in each cell's stats.
fn main() {
    bench::cli::figure_main_rendered(
        "fig7",
        |options, config, store| {
            bench::figure7_session(options.scale, config, options.threads, store)
        },
        |report| bench::invalidate_rates(report).render(),
    );
}
