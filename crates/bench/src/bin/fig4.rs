//! Regenerates figure 4 of the paper. Run with `--release`; pass
//! `--tiny` for a quick, reduced-scale version of the same series.
fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let scale = if tiny { workloads::Scale::Tiny } else { workloads::Scale::Small };
    let config = simkit::config::SystemConfig::paper_default();
    println!("{}", bench::table1());
    println!("{}", bench::figure4(scale, &config).render());
}
