//! Regenerates figure 4 of the paper. Run with `--release`; see `--help`
//! for the shared flags (`--json`, `--scale`, `--threads`, `--store`,
//! `--events`, `--shard-id`/`--shard-count`, `--html`/`--html-only`,
//! `--tiny`).
fn main() {
    bench::cli::figure_main("fig4", |options, config, store| {
        bench::figure4_session(options.scale, config, options.threads, store)
    });
}
