//! Regenerates figure 4 of the paper. Run with `--release`; see `--help`
//! for the shared flags (`--json`, `--scale`, `--threads`, `--store`, `--tiny`).
fn main() {
    bench::cli::figure_main(|options, config, store| {
        bench::figure4(options.scale, config, options.threads, store)
    });
}
