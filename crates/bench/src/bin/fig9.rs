//! Regenerates figure 9 of the paper. Run with `--release`; see `--help`
//! for the shared flags (`--json`, `--scale`, `--threads`, `--store`,
//! `--events`, `--shard-id`/`--shard-count`, `--html`/`--html-only`,
//! `--tiny`).
fn main() {
    bench::cli::figure_main("fig9", |options, config, store| {
        bench::figure9_session(options.scale, config, options.threads, store)
    });
}
