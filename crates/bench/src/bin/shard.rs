//! Executes one shard of a named figure's plan against a shared store.
//!
//! Every shard of a run is handed the same figure name, scale and store
//! directory plus a shared `--run-id`; each rebuilds the identical
//! [`Plan`](simsys::runner::Plan) (planning is pure and host-independent) and
//! then claims units through expiring lease files under the store — so the
//! shards need no network, no coordinator and no shared memory, only the
//! directory. Progress streams to `--events FILE` as JSONL
//! [`RunEvent`](simsys::runner::RunEvent)s; the shard prints its
//! [`ShardSummary`](simsys::runner::ShardSummary) as JSON on completion.
//!
//! ```text
//! # Two processes (or hosts with a shared filesystem), one grid:
//! shard --figure fig5 --scale small --store /data/store \
//!       --shard-id 0 --shard-count 2 --run-id nightly --events s0.jsonl &
//! shard --figure fig5 --scale small --store /data/store \
//!       --shard-id 1 --shard-count 2 --run-id nightly --events s1.jsonl &
//! wait
//! merge --figure fig5 --scale small s0.jsonl s1.jsonl > figure5.json
//! ```
//!
//! A shard killed mid-run leaves expiring leases and a partial event log;
//! re-running it (same `--run-id`) steals the expired leases, serves the
//! already-stored results as cache hits, and completes the grid with no
//! simulation repeated.
//!
//! Setting `MUONTRAP_SHARD_EXIT_AFTER_EVENTS=<k>` makes the shard abort the
//! whole process (exit code 17) right after flushing its *k*-th event line —
//! the deterministic "kill one mid-run" hook behind the `fleet` supervisor's
//! crash-recovery smoke test.

use std::io::Write;

use simkit::json::ToJson;

/// Exit code of the injected crash — distinct from real failures (1) and
/// usage errors (2) so the supervisor smoke test can tell them apart.
const INJECTED_CRASH_EXIT: i32 = 17;

/// An event sink that aborts the process once a quota of JSONL lines has
/// been flushed to the wrapped log (the partial log stays merge-readable).
struct ExitAfterEvents {
    inner: std::fs::File,
    remaining: u64,
}

impl Write for ExitAfterEvents {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let written = self.inner.write(buf)?;
        let lines = buf[..written].iter().filter(|&&b| b == b'\n').count() as u64;
        if lines >= self.remaining {
            let _ = self.inner.flush();
            eprintln!("shard: injected crash (MUONTRAP_SHARD_EXIT_AFTER_EVENTS reached)");
            std::process::exit(INJECTED_CRASH_EXIT);
        }
        self.remaining -= lines;
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn main() {
    let mut figure: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--figure" {
            match args.next() {
                Some(value) => figure = Some(value),
                None => exit_usage("--figure needs a name"),
            }
        } else {
            rest.push(arg);
        }
    }
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    let options = match bench::cli::CliOptions::parse(&rest) {
        Ok(options) => options,
        Err(message) => exit_usage(&message),
    };
    let Some(figure) = figure else {
        exit_usage("--figure NAME is required");
    };
    let Some(shard) = options.shard_options() else {
        exit_usage("--shard-id I (and --shard-count N) are required");
    };
    let Some(events_path) = options.events.as_ref() else {
        exit_usage("--events FILE is required (merge folds the logs)");
    };

    let config = simkit::config::SystemConfig::paper_default();
    let store = options.open_store();
    let Some(session) = bench::figure_session(
        &figure,
        options.scale,
        &config,
        options.threads,
        store.as_ref(),
    ) else {
        exit_usage(&format!(
            "unknown figure `{figure}` (expected one of {})",
            bench::FIGURE_NAMES.join(", ")
        ));
    };
    let events = std::fs::File::create(events_path).unwrap_or_else(|e| {
        eprintln!("cannot create event log {}: {e}", events_path.display());
        std::process::exit(2);
    });
    let mut sink: Box<dyn Write + Send> = match std::env::var("MUONTRAP_SHARD_EXIT_AFTER_EVENTS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(quota) => Box::new(ExitAfterEvents {
            inner: events,
            remaining: quota,
        }),
        None => Box::new(events),
    };
    match session.run_sharded(&shard, &mut *sink) {
        Ok(summary) => {
            bench::cli::write_metrics(&options);
            println!("{}", summary.to_json().to_string_pretty());
        }
        Err(e) => {
            eprintln!("shard {} failed: {e}", shard.shard_id);
            std::process::exit(1);
        }
    }
}

fn usage() -> String {
    format!(
        "usage: shard --figure NAME --store DIR --shard-id I --shard-count N \
         --events FILE [--run-id ID] [--scale tiny|small|large] [--threads N]\n\
         figures: {}",
        bench::FIGURE_NAMES.join(", ")
    )
}

fn exit_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
