//! Regenerates figure 5 of the paper. Run with `--release`; see `--help`
//! for the shared flags (`--json`, `--scale`, `--threads`, `--store`,
//! `--events`, `--shard-id`/`--shard-count`, `--html`/`--html-only`,
//! `--tiny`).
fn main() {
    bench::cli::figure_main("fig5", |options, config, store| {
        bench::figure5_session(options.scale, config, options.threads, store)
    });
}
