//! Regenerates the cross-defense shoot-out figure: every modelled defense
//! from the [`defenses::DefenseRegistry`] on the SPEC-like suite, normalised
//! to the unprotected baseline. Run with `--release`; see `--help` for the
//! shared flags (`--json`, `--scale`, `--threads`, `--store`, `--events`,
//! `--shard-id`/`--shard-count`, `--html`/`--html-only`, `--tiny`).
fn main() {
    bench::cli::figure_main("shootout", |options, config, store| {
        bench::shootout_session(options.scale, config, options.threads, store)
    });
}
