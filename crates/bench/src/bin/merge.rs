//! Folds shard event logs back into the deterministic figure report.
//!
//! `merge` rebuilds the named figure's [`Plan`](simsys::runner::Plan) (the
//! same pure derivation every shard used), reads any number of JSONL event
//! logs, and emits the merged [`RunReport`](simsys::session::RunReport) as
//! JSON on stdout — identical in content to what a single-process
//! `figN --json` run of the same grid produces. Events are deduplicated per
//! work unit with execution provenance preferred, so feeding it a killed
//! shard's partial log alongside the resumed run's log keeps the
//! simulated-once accounting intact.
//!
//! ```text
//! merge --figure fig5 --scale small s0.jsonl s1.jsonl > figure5.json
//! ```
//!
//! Pass `--scale`/`--threads` matching the shard invocations so the rebuilt
//! plan (title, grid shape, recorded thread count) lines up. Incomplete logs
//! — a grid cell no stream resolved — are an error, not a silent hole.
//!
//! `--html FILE` renders the merged report as the figure's self-contained
//! HTML page (`--html-only` suppresses the JSON): a multi-host run produces
//! exactly the artefact a local `figN --html` run would, because the merged
//! report is bit-identical to the local one.
//!
//! # Watching a live fleet
//!
//! With `--watch`, `merge` does not require complete logs: it *tails* them
//! while the shards are still writing, redrawing an in-terminal dashboard
//! (per-shard progress, steal and cache-hit counters, a cells/sec rate and
//! ETA, stalled-shard detection from heartbeat age) every `--interval-ms`
//! until every unit of the plan has resolved. `--once` renders exactly one
//! frame — with "now" pinned to the newest event timestamp, so the output
//! is deterministic — and exits, which is what tests and CI consume.
//!
//! `--html-live FILE` (usable with or without `--watch`) atomically rewrites
//! `FILE` on the same cadence: while units are missing it is a partial
//! report page that reloads itself via a script-free meta refresh, and once
//! the fleet completes it is replaced by the strict merge's figure document
//! — byte-identical to what `--html FILE` would have produced.
//!
//! ```text
//! merge --figure domain --scale tiny --watch --html-live live.html s0.jsonl s1.jsonl
//! ```

use simkit::json::ToJson;
use simsys::runner;

use bench::watch::{self, FleetView, LogTail, WatchOptions};

fn main() {
    let mut figure: Option<String> = None;
    let mut logs: Vec<std::path::PathBuf> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut watch_mode = false;
    let mut once = false;
    let mut html_live: Option<std::path::PathBuf> = None;
    let mut interval_ms: u64 = 1_000;
    let mut stall_ms: u64 = 15_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--figure" {
            match args.next() {
                Some(value) => figure = Some(value),
                None => exit_usage("--figure needs a name"),
            }
        } else if arg == "--watch" {
            watch_mode = true;
        } else if arg == "--once" {
            watch_mode = true;
            once = true;
        } else if arg == "--html-live" {
            match args.next() {
                Some(value) => html_live = Some(std::path::PathBuf::from(value)),
                None => exit_usage("--html-live needs a file path"),
            }
        } else if arg == "--interval-ms" {
            interval_ms = parse_ms(args.next(), "--interval-ms");
        } else if arg == "--stall-ms" {
            stall_ms = parse_ms(args.next(), "--stall-ms");
        } else if arg == "--help" || arg == "-h" {
            println!("{}", usage());
            return;
        } else if arg.starts_with("--") {
            rest.push(arg.clone());
            // Forward the flag's value too, when it takes one.
            if matches!(
                arg.as_str(),
                "--scale" | "--threads" | "--store" | "--run-id" | "--html"
            ) {
                if let Some(value) = args.next() {
                    rest.push(value);
                }
            }
        } else {
            logs.push(std::path::PathBuf::from(arg));
        }
    }
    let options = match bench::cli::CliOptions::parse(&rest) {
        Ok(options) => options,
        Err(message) => exit_usage(&message),
    };
    let Some(figure) = figure else {
        exit_usage("--figure NAME is required");
    };
    if logs.is_empty() {
        exit_usage("at least one event log is required");
    }

    let config = simkit::config::SystemConfig::paper_default();
    let Some(session) =
        bench::figure_session(&figure, options.scale, &config, options.threads, None)
    else {
        exit_usage(&format!(
            "unknown figure `{figure}` (expected one of {})",
            bench::FIGURE_NAMES.join(", ")
        ));
    };
    let plan = session.plan();

    if watch_mode || html_live.is_some() {
        run_watch(
            &figure,
            &plan,
            &logs,
            &options,
            watch_mode,
            once,
            html_live.as_deref(),
            interval_ms,
            stall_ms,
        );
        bench::cli::write_metrics(&options);
        return;
    }

    let mut events = Vec::new();
    for path in &logs {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open event log {}: {e}", path.display());
            std::process::exit(2);
        });
        let parsed = runner::read_events(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        });
        events.extend(parsed);
    }
    let wall_clock_ms = runner::merged_wall_clock_ms(events.iter());
    match runner::merge_events(&plan, events, wall_clock_ms) {
        Ok(report) => {
            bench::cli::write_metrics(&options);
            bench::cli::write_html(&options, || {
                bench::render::figure_document(&figure, &report, &options.run_id)
                    .expect("figure resolved above, so it is registered")
            });
            if !options.html_only {
                println!("{}", report.to_json().to_string_pretty());
            }
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The `--watch` / `--html-live` loop: tail, fold, render, repeat until the
/// fleet completes (or after one frame, with `--once`).
#[allow(clippy::too_many_arguments)]
fn run_watch(
    figure: &str,
    plan: &runner::Plan,
    logs: &[std::path::PathBuf],
    options: &bench::cli::CliOptions,
    watch_mode: bool,
    once: bool,
    html_live: Option<&std::path::Path>,
    interval_ms: u64,
    stall_ms: u64,
) {
    let mut tails: Vec<LogTail> = logs.iter().map(LogTail::new).collect();
    let refresh_seconds = (interval_ms.div_ceil(1_000)).max(1) as u32;
    loop {
        for tail in &mut tails {
            if let Err(e) = tail.poll() {
                eprintln!("cannot read {}: {e}", tail.path().display());
            }
        }
        let events: Vec<runner::RunEvent> = tails
            .iter()
            .flat_map(|tail| tail.events.iter().cloned())
            .collect();
        let opts = WatchOptions {
            stall_after_ms: stall_ms,
            // `--once` pins "now" to the newest event stamp so the frame is
            // deterministic; live mode reads the clock for stall ages.
            now_ms: once.then(|| events.iter().filter_map(|e| e.t_ms()).max().unwrap_or(0)),
            ..WatchOptions::default()
        };
        let view = FleetView::fold(plan, &events, &opts);
        if watch_mode {
            use std::io::Write as _;
            if !once {
                // The one piece of terminal state the watch owns: clear and
                // home before each live frame. `--once` stays plain text.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", watch::render_frame(&view, &opts));
            let _ = std::io::stdout().flush();
        }
        if let Some(path) = html_live {
            let html = if view.complete() {
                let wall_clock_ms = runner::merged_wall_clock_ms(events.iter());
                match runner::merge_events(plan, events, wall_clock_ms) {
                    Ok(report) => bench::render::figure_document(figure, &report, &options.run_id)
                        .expect("figure resolved above, so it is registered"),
                    Err(e) => {
                        eprintln!("merge failed: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                watch::live_document(
                    figure,
                    plan,
                    events,
                    &view,
                    &options.run_id,
                    refresh_seconds,
                    stall_ms,
                )
                .expect("figure resolved above, so it is registered")
            };
            if let Err(e) = watch::write_atomic(path, &html) {
                eprintln!("cannot write live page {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        if once || view.complete() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

fn parse_ms(value: Option<String>, flag: &str) -> u64 {
    match value.as_deref().map(str::parse::<u64>) {
        Some(Ok(ms)) => ms,
        _ => exit_usage(&format!("{flag} needs a millisecond count")),
    }
}

fn usage() -> String {
    format!(
        "usage: merge --figure NAME [--scale tiny|small|large] [--threads N] \
         [--html FILE [--html-only]] [--watch [--once]] [--html-live FILE] \
         [--interval-ms N] [--stall-ms N] EVENTS.jsonl [EVENTS.jsonl ...]\nfigures: {}",
        bench::FIGURE_NAMES.join(", ")
    )
}

fn exit_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
