//! Folds shard event logs back into the deterministic figure report.
//!
//! `merge` rebuilds the named figure's [`Plan`](simsys::runner::Plan) (the
//! same pure derivation every shard used), reads any number of JSONL event
//! logs, and emits the merged [`RunReport`](simsys::session::RunReport) as
//! JSON on stdout — identical in content to what a single-process
//! `figN --json` run of the same grid produces. Events are deduplicated per
//! work unit with execution provenance preferred, so feeding it a killed
//! shard's partial log alongside the resumed run's log keeps the
//! simulated-once accounting intact.
//!
//! ```text
//! merge --figure fig5 --scale small s0.jsonl s1.jsonl > figure5.json
//! ```
//!
//! Pass `--scale`/`--threads` matching the shard invocations so the rebuilt
//! plan (title, grid shape, recorded thread count) lines up. Incomplete logs
//! — a grid cell no stream resolved — are an error, not a silent hole.
//!
//! `--html FILE` renders the merged report as the figure's self-contained
//! HTML page (`--html-only` suppresses the JSON): a multi-host run produces
//! exactly the artefact a local `figN --html` run would, because the merged
//! report is bit-identical to the local one.

use simkit::json::ToJson;
use simsys::runner;

fn main() {
    let mut figure: Option<String> = None;
    let mut logs: Vec<std::path::PathBuf> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--figure" {
            match args.next() {
                Some(value) => figure = Some(value),
                None => exit_usage("--figure needs a name"),
            }
        } else if arg == "--help" || arg == "-h" {
            println!("{}", usage());
            return;
        } else if arg.starts_with("--") {
            rest.push(arg.clone());
            // Forward the flag's value too, when it takes one.
            if matches!(
                arg.as_str(),
                "--scale" | "--threads" | "--store" | "--run-id" | "--html"
            ) {
                if let Some(value) = args.next() {
                    rest.push(value);
                }
            }
        } else {
            logs.push(std::path::PathBuf::from(arg));
        }
    }
    let options = match bench::cli::CliOptions::parse(&rest) {
        Ok(options) => options,
        Err(message) => exit_usage(&message),
    };
    let Some(figure) = figure else {
        exit_usage("--figure NAME is required");
    };
    if logs.is_empty() {
        exit_usage("at least one event log is required");
    }

    let config = simkit::config::SystemConfig::paper_default();
    let Some(session) =
        bench::figure_session(&figure, options.scale, &config, options.threads, None)
    else {
        exit_usage(&format!(
            "unknown figure `{figure}` (expected one of {})",
            bench::FIGURE_NAMES.join(", ")
        ));
    };
    let plan = session.plan();

    let mut events = Vec::new();
    for path in &logs {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open event log {}: {e}", path.display());
            std::process::exit(2);
        });
        let parsed = runner::read_events(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        });
        events.extend(parsed);
    }
    let wall_clock_ms = runner::merged_wall_clock_ms(events.iter());
    match runner::merge_events(&plan, events, wall_clock_ms) {
        Ok(report) => {
            bench::cli::write_html(&options, || {
                bench::render::figure_document(&figure, &report, &options.run_id)
                    .expect("figure resolved above, so it is registered")
            });
            if !options.html_only {
                println!("{}", report.to_json().to_string_pretty());
            }
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() -> String {
    format!(
        "usage: merge --figure NAME [--scale tiny|small|large] [--threads N] \
         [--html FILE [--html-only]] EVENTS.jsonl [EVENTS.jsonl ...]\nfigures: {}",
        bench::FIGURE_NAMES.join(", ")
    )
}

fn exit_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
