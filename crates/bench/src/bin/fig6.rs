//! Regenerates figure 6 of the paper. Run with `--release`; see `--help`
//! for the shared flags (`--json`, `--scale`, `--threads`, `--store`,
//! `--events`, `--shard-id`/`--shard-count`, `--html`/`--html-only`,
//! `--tiny`).
fn main() {
    bench::cli::figure_main("fig6", |options, config, store| {
        bench::figure6_session(options.scale, config, options.threads, store)
    });
}
