//! Sweeps the static speculative-taint analyzer over the whole evaluation
//! corpus — the SPEC-like, Parsec-like and domain-switch kernels plus the
//! attack corpus — and prints the gadget census.
//!
//! ```text
//! cargo run --release --bin speclint -- --scale tiny
//! ```
//!
//! The text mode prints the per-program census table followed by one
//! grep-friendly line per gadget; `--json` emits the census document (the
//! same object `report` embeds under its `speclint` key, and the one pinned
//! by `SPECLINT_baseline.json` at the repository root); `--html FILE` writes
//! the census as a self-contained page. The analysis is purely static —
//! `--threads`, `--store` and `--events` are accepted for CLI uniformity but
//! have nothing to do: no simulation runs.

use simkit::json::ToJson;
use speclint::AnalyzerConfig;

fn main() {
    let options = bench::cli::parse_or_exit();
    if options.shard_id.is_some() {
        eprintln!(
            "speclint is a static analysis, milliseconds over the whole corpus; \
             there is nothing to shard"
        );
        std::process::exit(2);
    }
    let census = bench::lint::corpus_census(options.scale, &AnalyzerConfig::default());
    bench::cli::write_html(&options, || bench::render::speclint_document(&census));
    if options.html_only {
        return;
    }
    if options.json {
        println!("{}", census.to_json().to_string_pretty());
    } else {
        println!("{}", bench::lint::census_text(&census));
        print!("{}", bench::lint::gadget_lines(&census));
    }
}
