//! Store maintenance: evict least-recently-modified result entries until the
//! store fits a byte cap, and sweep temp-file litter from crashed writers.
//! Prints a JSON [`GcSummary`](simsys::store::GcSummary) of what was
//! reclaimed.
//!
//! ```text
//! store_gc --store /data/store --max-bytes 104857600   # cap at 100 MiB
//! store_gc --store /data/store --max-bytes 0           # empty the store
//! ```
//!
//! Eviction is safe at any time — a missing entry is just a cache miss that
//! re-simulates — but running it concurrently with active shards wastes
//! their freshly written results.

use simkit::json::ToJson;
use simsys::store::ResultStore;

fn main() {
    let mut store: Option<std::path::PathBuf> =
        std::env::var_os("MUONTRAP_STORE").map(std::path::PathBuf::from);
    let mut max_bytes: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => match args.next() {
                Some(value) => store = Some(std::path::PathBuf::from(value)),
                None => exit_usage("--store needs a directory"),
            },
            "--max-bytes" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(value)) => max_bytes = Some(value),
                _ => exit_usage("--max-bytes needs a byte count"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            other => exit_usage(&format!("unknown flag `{other}`")),
        }
    }
    let Some(store) = store else {
        exit_usage("--store DIR (or MUONTRAP_STORE) is required");
    };
    let Some(max_bytes) = max_bytes else {
        exit_usage("--max-bytes N is required");
    };
    let store = ResultStore::open(&store).unwrap_or_else(|e| {
        eprintln!("cannot open result store at {}: {e}", store.display());
        std::process::exit(2);
    });
    match store.gc(max_bytes) {
        Ok(summary) => println!("{}", summary.to_json().to_string_pretty()),
        Err(e) => {
            eprintln!("gc failed: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() -> String {
    "usage: store_gc --store DIR --max-bytes N".to_string()
}

fn exit_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
