//! Runs attacks 1-6 against each memory-system configuration and prints which
//! configurations leak (the paper's security argument, in executable form).
//! `--json` emits one JSON object per (attack, defense) outcome.
fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = simkit::config::SystemConfig::paper_default();
    if json {
        println!("{}", bench::security_json(&config).to_string_pretty());
    } else {
        println!("{}", bench::security_matrix(&config));
    }
}
