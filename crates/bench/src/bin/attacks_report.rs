//! Runs attacks 1-6 against every defense in the
//! [`defenses::DefenseRegistry`] catalogue — not a hard-coded list, so a
//! newly registered defense automatically joins the matrix — and prints
//! which configurations leak (the paper's security argument, in executable
//! form), followed by the §4.8 domain-switch stress grid: the syscall/sandbox-heavy
//! kernels — which force a filter-cache flush every few hundred instructions
//! — under the figure-3 defense set. `--json` emits one object with a
//! `security` array of (attack, defense) outcomes and a `domain_switch` run
//! report. The attack litmus tests are security probes, not performance grid
//! cells, so they always execute; the domain-switch grid is a normal session
//! grid and honours `--scale`, `--threads`, `--store` and `--events` —
//! `--html FILE` renders it as the domain figure's self-contained page
//! (chart + flush-counter table; the security matrix stays text/JSON). For
//! a sharded run of the grid alone, use `shard --figure domain`.

use simkit::json::{Json, ToJson};

fn main() {
    let options = bench::cli::parse_or_exit();
    if options.shard_id.is_some() {
        eprintln!(
            "attacks_report mixes security probes with the domain-switch grid and \
             cannot run as one shard; use `shard --figure domain` for the grid"
        );
        std::process::exit(2);
    }
    let config = simkit::config::SystemConfig::paper_default();
    let store = options.open_store();
    let mut events = bench::cli::open_events(&options);
    let domain =
        bench::domain_switch_session(options.scale, &config, options.threads, store.as_ref())
            .run_with_events(match &mut events {
                Some(file) => Some(file),
                None => None,
            });
    bench::cli::write_html(&options, || {
        bench::render::figure_document("domain", &domain, &options.run_id)
            .expect("domain is a registered figure")
    });
    if options.html_only {
        return;
    }
    if options.json {
        let document = Json::obj([
            ("security", bench::security_json(&config)),
            ("domain_switch", domain.to_json()),
        ]);
        println!("{}", document.to_string_pretty());
    } else {
        println!("{}", bench::security_matrix(&config));
        println!("{}", bench::Figure::from_report(&domain).render());
    }
}
