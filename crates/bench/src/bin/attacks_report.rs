//! Runs attacks 1-6 against each memory-system configuration and prints which
//! configurations leak (the paper's security argument, in executable form).
//! `--json` emits one JSON object per (attack, defense) outcome. Accepts the
//! shared flags (`--scale`, `--threads`, `--store`) for interface uniformity;
//! attack litmus tests are security probes, not performance grid cells, so
//! they always execute rather than being served from the store.
fn main() {
    let options = bench::cli::parse_or_exit();
    let config = simkit::config::SystemConfig::paper_default();
    if options.json {
        println!("{}", bench::security_json(&config).to_string_pretty());
    } else {
        println!("{}", bench::security_matrix(&config));
    }
}
