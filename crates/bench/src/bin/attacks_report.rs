//! Runs attacks 1-6 against each memory-system configuration and prints which
//! configurations leak (the paper's security argument, in executable form).
fn main() {
    let config = simkit::config::SystemConfig::paper_default();
    println!("{}", bench::security_matrix(&config));
}
