//! The tracked performance harness behind the `perf` binary.
//!
//! Every figure in the evaluation is bounded by how fast the simulator's hot
//! loop executes grid cells, so this module measures exactly that: it runs
//! figure grids **with the result store disabled** (every cell is a real
//! simulation — no cache hits, no leases) on a fixed, pinned-seed workload
//! matrix and reports throughput per figure:
//!
//! * `cells_per_sec` — resolved grid cells per wall-clock second (the
//!   headline number the CI perf-smoke job guards),
//! * `sim_cycles_per_sec` — simulated cycles retired per wall-clock second,
//! * `committed_insts_per_sec` — committed µISA instructions per wall-clock
//!   second,
//! * `sim_cycles_per_event` — simulated cycles covered per performed
//!   per-core tick: the event queue's fast-forward leverage (under
//!   `--naive` this approaches `1 / running cores`),
//! * `events_per_cell` — per-core ticks the timing core performed per
//!   resolved grid cell.
//!
//! The workloads are deterministic (seeded generators, no host entropy), so
//! run-to-run variance is wall-clock noise only. `BENCH_hotpath.json` at the
//! repository root records a before/after pair of [`PerfReport`]s for the
//! hot-path overhaul; the CI perf-smoke job re-measures and fails if
//! `cells_per_sec` regresses more than 25% against the committed "after"
//! numbers. See README.md § "Measuring performance".

use std::time::Instant;

use simkit::config::SystemConfig;
use simkit::json::{Json, ToJson};
use workloads::Scale;

use crate::{figure_session, FIGURE_NAMES};

/// Throughput measurement of one figure grid (store disabled).
#[derive(Debug, Clone, PartialEq)]
pub struct FigurePerf {
    /// Figure name (see [`FIGURE_NAMES`]).
    pub figure: String,
    /// Wall-clock duration of the grid, milliseconds.
    pub wall_ms: f64,
    /// Grid cells resolved.
    pub cells: usize,
    /// Simulations actually executed (baselines + non-derived cells).
    pub sims_executed: usize,
    /// Total simulated cycles across all grid cells.
    pub sim_cycles: u64,
    /// Total committed instructions across all grid cells.
    pub committed_insts: u64,
    /// Per-core pipeline ticks the timing loop performed (from the
    /// process-global `sim.events` counter). The naive loop ticks every
    /// running core every cycle; the event-driven loop skips quiescent
    /// ticks, so the naive/event-driven ratio is the queue's leverage.
    pub events: u64,
}

impl FigurePerf {
    /// Grid cells resolved per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        per_sec(self.cells as f64, self.wall_ms)
    }

    /// Simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        per_sec(self.sim_cycles as f64, self.wall_ms)
    }

    /// Committed instructions per wall-clock second.
    pub fn committed_insts_per_sec(&self) -> f64 {
        per_sec(self.committed_insts as f64, self.wall_ms)
    }

    /// Simulated cycles covered per performed per-core tick — the
    /// fast-forward leverage of the event queue (0 when no ticks were
    /// recorded).
    pub fn sim_cycles_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.sim_cycles as f64 / self.events as f64
        }
    }

    /// Per-core ticks performed per resolved grid cell (0 for an empty
    /// grid).
    pub fn events_per_cell(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.events as f64 / self.cells as f64
        }
    }
}

fn per_sec(count: f64, wall_ms: f64) -> f64 {
    if wall_ms <= 0.0 {
        0.0
    } else {
        count / (wall_ms / 1e3)
    }
}

impl ToJson for FigurePerf {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::Str(self.figure.clone())),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("cells", Json::UInt(self.cells as u64)),
            ("sims_executed", Json::UInt(self.sims_executed as u64)),
            ("sim_cycles", Json::UInt(self.sim_cycles)),
            ("committed_insts", Json::UInt(self.committed_insts)),
            ("events", Json::UInt(self.events)),
            ("cells_per_sec", Json::Num(self.cells_per_sec())),
            ("sim_cycles_per_sec", Json::Num(self.sim_cycles_per_sec())),
            (
                "committed_insts_per_sec",
                Json::Num(self.committed_insts_per_sec()),
            ),
            (
                "sim_cycles_per_event",
                Json::Num(self.sim_cycles_per_event()),
            ),
            ("events_per_cell", Json::Num(self.events_per_cell())),
        ])
    }
}

/// One complete `perf` run: per-figure throughput plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Workload scale the matrix ran at.
    pub scale: Scale,
    /// Session worker threads.
    pub threads: usize,
    /// Whether the cycle-skipping fast-forward loop was disabled
    /// (`perf --naive` / `MUONTRAP_NAIVE_LOOP=1`).
    pub naive_loop: bool,
    /// Per-figure measurements, in the order requested.
    pub figures: Vec<FigurePerf>,
}

impl PerfReport {
    /// The aggregate over every measured figure, reported as a pseudo-figure
    /// named `"total"`.
    pub fn total(&self) -> FigurePerf {
        FigurePerf {
            figure: "total".to_string(),
            wall_ms: self.figures.iter().map(|f| f.wall_ms).sum(),
            cells: self.figures.iter().map(|f| f.cells).sum(),
            sims_executed: self.figures.iter().map(|f| f.sims_executed).sum(),
            sim_cycles: self.figures.iter().map(|f| f.sim_cycles).sum(),
            committed_insts: self.figures.iter().map(|f| f.committed_insts).sum(),
            events: self.figures.iter().map(|f| f.events).sum(),
        }
    }

    /// The measurement for `figure`, if it was part of the matrix.
    pub fn figure(&self, figure: &str) -> Option<&FigurePerf> {
        self.figures.iter().find(|f| f.figure == figure)
    }
}

impl ToJson for PerfReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str("muontrap-bench-hotpath-v1".to_string())),
            ("scale", Json::Str(self.scale.name().to_string())),
            ("threads", Json::UInt(self.threads as u64)),
            ("naive_loop", Json::Bool(self.naive_loop)),
            (
                "figures",
                Json::Arr(self.figures.iter().map(ToJson::to_json).collect()),
            ),
            ("total", self.total().to_json()),
        ])
    }
}

/// Measures one figure grid by name, with the store disabled.
///
/// # Panics
/// Panics if `name` is not one of [`FIGURE_NAMES`].
pub fn measure_figure(name: &str, scale: Scale, threads: usize) -> FigurePerf {
    let session = figure_session(name, scale, &SystemConfig::paper_default(), threads, None)
        .unwrap_or_else(|| panic!("unknown figure `{name}`; expected one of {FIGURE_NAMES:?}"));
    let events_before = obs::global().counter("sim.events", &[]);
    let started = Instant::now();
    let report = session.run();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    FigurePerf {
        figure: name.to_string(),
        wall_ms,
        cells: report.cells.len(),
        sims_executed: report.sims_executed,
        sim_cycles: report.cells.iter().map(|c| c.cycles).sum(),
        committed_insts: report.cells.iter().map(|c| c.committed).sum(),
        events: obs::global().counter("sim.events", &[]) - events_before,
    }
}

/// Measures a matrix of figures (store disabled) and assembles the report.
///
/// The report's `naive_loop` field records the *effective* loop mode
/// (whether `MUONTRAP_NAIVE_LOOP` disabled the event-skipping fast-forward
/// for this process), not a caller claim — so a report can never mislabel
/// its own measurement.
///
/// # Panics
/// Panics if any name is not one of [`FIGURE_NAMES`].
pub fn measure(names: &[&str], scale: Scale, threads: usize) -> PerfReport {
    PerfReport {
        scale,
        threads,
        naive_loop: simsys::system::naive_loop_requested(),
        figures: names
            .iter()
            .map(|name| measure_figure(name, scale, threads))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_wall_clock() {
        let perf = FigurePerf {
            figure: "fig5".to_string(),
            wall_ms: 2000.0,
            cells: 10,
            sims_executed: 12,
            sim_cycles: 1_000_000,
            committed_insts: 400_000,
            events: 2_000,
        };
        assert!((perf.cells_per_sec() - 5.0).abs() < 1e-9);
        assert!((perf.sim_cycles_per_sec() - 500_000.0).abs() < 1e-3);
        assert!((perf.committed_insts_per_sec() - 200_000.0).abs() < 1e-3);
        assert!((perf.sim_cycles_per_event() - 500.0).abs() < 1e-9);
        assert!((perf.events_per_cell() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_clock_reports_zero_rates() {
        let perf = FigurePerf {
            figure: "x".to_string(),
            wall_ms: 0.0,
            cells: 5,
            sims_executed: 5,
            sim_cycles: 1,
            committed_insts: 1,
            events: 0,
        };
        assert_eq!(perf.cells_per_sec(), 0.0);
        assert_eq!(perf.sim_cycles_per_event(), 0.0, "no events, no ratio");
    }

    #[test]
    fn measured_tiny_figure_reports_consistent_counts() {
        let perf = measure_figure("domain", Scale::Tiny, 1);
        assert!(perf.cells > 0);
        assert!(perf.sim_cycles > 0);
        assert!(perf.committed_insts > 0);
        assert!(perf.wall_ms > 0.0);
        assert!(perf.cells_per_sec() > 0.0);
        // `events` counts only simulations this call actually executed (the
        // process cache can serve repeats), and parallel tests share the
        // global counter — so only the fresh, event-driven case is pinned.
        if !simsys::system::naive_loop_requested() && perf.sims_executed > 0 {
            assert!(perf.events > 0, "the event-driven loop processes events");
            assert!(perf.events_per_cell() > 0.0);
        }
    }

    #[test]
    fn report_totals_and_json_shape() {
        let report = measure(&["domain"], Scale::Tiny, 1);
        let total = report.total();
        assert_eq!(total.cells, report.figures[0].cells);
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("muontrap-bench-hotpath-v1")
        );
        assert_eq!(json.get("naive_loop").and_then(Json::as_bool), Some(false));
        assert!(json.get("total").is_some());
    }
}
