//! Architectural registers and the register file.
//!
//! The µISA has 32 general-purpose 64-bit registers. `X0` always reads as
//! zero, like RISC-V's `zero` register, which keeps generated code simple.

use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// A general-purpose architectural register.
///
/// `X0` is hard-wired to zero: writes to it are ignored and reads return 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    X0,
    X1,
    X2,
    X3,
    X4,
    X5,
    X6,
    X7,
    X8,
    X9,
    X10,
    X11,
    X12,
    X13,
    X14,
    X15,
    X16,
    X17,
    X18,
    X19,
    X20,
    X21,
    X22,
    X23,
    X24,
    X25,
    X26,
    X27,
    X28,
    X29,
    X30,
    X31,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; NUM_REGS] = [
        Reg::X0,
        Reg::X1,
        Reg::X2,
        Reg::X3,
        Reg::X4,
        Reg::X5,
        Reg::X6,
        Reg::X7,
        Reg::X8,
        Reg::X9,
        Reg::X10,
        Reg::X11,
        Reg::X12,
        Reg::X13,
        Reg::X14,
        Reg::X15,
        Reg::X16,
        Reg::X17,
        Reg::X18,
        Reg::X19,
        Reg::X20,
        Reg::X21,
        Reg::X22,
        Reg::X23,
        Reg::X24,
        Reg::X25,
        Reg::X26,
        Reg::X27,
        Reg::X28,
        Reg::X29,
        Reg::X30,
        Reg::X31,
    ];

    /// Returns the register's index (0..32).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index.
    ///
    /// # Panics
    /// Panics if `index >= 32`.
    #[inline]
    pub fn from_index(index: usize) -> Reg {
        assert!(index < NUM_REGS, "register index out of range");
        Reg::ALL[index]
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        matches!(self, Reg::X0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.index())
    }
}

/// The architectural register file: 32 64-bit registers with `X0` pinned to zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegFile {
    values: [u64; NUM_REGS],
}

impl RegFile {
    /// Creates a register file with all registers zero.
    pub fn new() -> Self {
        RegFile::default()
    }

    /// Reads a register. `X0` always returns zero.
    #[inline]
    pub fn read(&self, reg: Reg) -> u64 {
        if reg.is_zero() {
            0
        } else {
            self.values[reg.index()]
        }
    }

    /// Writes a register. Writes to `X0` are discarded.
    #[inline]
    pub fn write(&mut self, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.values[reg.index()] = value;
        }
    }

    /// Returns a snapshot of all register values (with `X0` forced to zero).
    pub fn snapshot(&self) -> [u64; NUM_REGS] {
        let mut copy = self.values;
        copy[0] = 0;
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_to_zero() {
        let mut rf = RegFile::new();
        rf.write(Reg::X0, 0xdead);
        assert_eq!(rf.read(Reg::X0), 0);
    }

    #[test]
    fn writes_are_readable() {
        let mut rf = RegFile::new();
        rf.write(Reg::X5, 123);
        rf.write(Reg::X31, 456);
        assert_eq!(rf.read(Reg::X5), 123);
        assert_eq!(rf.read(Reg::X31), 456);
        assert_eq!(rf.read(Reg::X6), 0);
    }

    #[test]
    fn index_round_trips() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
    }

    #[test]
    #[should_panic]
    fn from_index_rejects_out_of_range() {
        let _ = Reg::from_index(32);
    }

    #[test]
    fn display_uses_x_prefix() {
        assert_eq!(format!("{}", Reg::X7), "x7");
    }

    #[test]
    fn snapshot_masks_x0() {
        let rf = RegFile::new();
        assert_eq!(rf.snapshot()[0], 0);
    }
}
