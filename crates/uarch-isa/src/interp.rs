//! Functional in-order interpreter (golden model).
//!
//! The interpreter executes a [`Program`] one instruction at a time with no
//! timing model at all. It serves three purposes:
//!
//! 1. validating workload programs independently of the microarchitecture,
//! 2. acting as a golden reference: the out-of-order core must produce the
//!    same architectural register and memory state,
//! 3. giving workloads a cheap way to compute expected results in tests.
//!
//! Syscalls and sandbox markers are recorded as [`SystemEvent`]s for the
//! caller to inspect; the interpreter itself gives them no semantics beyond
//! sequencing.

use std::fmt;

use simkit::addr::VirtAddr;

use crate::inst::{eval_alu, eval_branch, eval_fpu, Instruction, MemWidth};
use crate::mem::SparseMemory;
use crate::prog::Program;
use crate::reg::{Reg, RegFile};

/// A system-level event observed during functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemEvent {
    /// A syscall instruction was retired, with its code.
    Syscall(u16),
    /// Execution entered a sandboxed region.
    SandboxEnter,
    /// Execution left a sandboxed region.
    SandboxExit,
}

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `Halt` instruction was executed.
    Halted,
    /// The step budget was exhausted before halting.
    OutOfBudget,
    /// The program counter left the program (fell off the end).
    PcOutOfRange,
}

/// Error for a program that did not halt within its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Why execution stopped.
    pub reason: StopReason,
    /// Instructions retired before stopping.
    pub retired: u64,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program did not halt: {:?} after {} instructions",
            self.reason, self.retired
        )
    }
}

impl std::error::Error for RunError {}

/// Final state of a completed functional run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Architectural registers at halt.
    pub regs: RegFile,
    /// Data memory at halt.
    pub memory: SparseMemory,
    /// Instructions retired (including the halt).
    pub retired: u64,
    /// System events in program order.
    pub events: Vec<SystemEvent>,
}

/// The functional, in-order interpreter.
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    regs: RegFile,
    memory: SparseMemory,
    pc: usize,
    retired: u64,
    halted: bool,
    events: Vec<SystemEvent>,
}

impl Interpreter {
    /// Creates an interpreter with the program's data segments loaded.
    pub fn new(program: &Program) -> Self {
        let mut memory = SparseMemory::new();
        for seg in program.data_segments() {
            memory.write_bytes(seg.addr, &seg.bytes);
        }
        Interpreter {
            program: program.clone(),
            regs: RegFile::new(),
            memory,
            pc: 0,
            retired: 0,
            halted: false,
            events: Vec::new(),
        }
    }

    /// Pre-sets a register before running (useful for passing arguments).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs.write(reg, value);
    }

    /// Pre-writes memory before running.
    pub fn set_memory(&mut self, addr: VirtAddr, value: u64, width: MemWidth) {
        self.memory.write(addr, value, width);
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Read-only view of the register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Read-only view of data memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Executes one instruction. Returns `false` once halted or the PC has
    /// left the program.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(inst) = self.program.fetch(self.pc) else {
            self.halted = true;
            return false;
        };
        let mut next_pc = self.pc + 1;
        match inst {
            Instruction::Nop | Instruction::SpecBarrier => {}
            Instruction::AluReg { op, rd, rs1, rs2 } => {
                let v = eval_alu(op, self.regs.read(rs1), self.regs.read(rs2));
                self.regs.write(rd, v);
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let v = eval_alu(op, self.regs.read(rs1), imm as u64);
                self.regs.write(rd, v);
            }
            Instruction::LoadImm { rd, imm } => self.regs.write(rd, imm),
            Instruction::Fpu { op, rd, rs1, rs2 } => {
                let v = eval_fpu(op, self.regs.read(rs1), self.regs.read(rs2));
                self.regs.write(rd, v);
            }
            Instruction::Load {
                rd,
                base,
                offset,
                width,
            } => {
                let addr = VirtAddr::new(self.regs.read(base).wrapping_add(offset as u64));
                let v = self.memory.read(addr, width);
                self.regs.write(rd, v);
            }
            Instruction::Store {
                rs,
                base,
                offset,
                width,
            } => {
                let addr = VirtAddr::new(self.regs.read(base).wrapping_add(offset as u64));
                self.memory.write(addr, self.regs.read(rs), width);
            }
            Instruction::AtomicSwap { rd, rs, base } => {
                let addr = VirtAddr::new(self.regs.read(base));
                let old = self.memory.read(addr, MemWidth::Double);
                self.memory
                    .write(addr, self.regs.read(rs), MemWidth::Double);
                self.regs.write(rd, old);
            }
            Instruction::AtomicAdd { rd, rs, base } => {
                let addr = VirtAddr::new(self.regs.read(base));
                let old = self.memory.read(addr, MemWidth::Double);
                self.memory
                    .write(addr, old.wrapping_add(self.regs.read(rs)), MemWidth::Double);
                self.regs.write(rd, old);
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if eval_branch(cond, self.regs.read(rs1), self.regs.read(rs2)) {
                    next_pc = target;
                }
            }
            Instruction::Jump { target } => next_pc = target,
            Instruction::JumpIndirect { base, offset } => {
                next_pc = self.regs.read(base).wrapping_add(offset as u64) as usize;
            }
            Instruction::Call { target, link } => {
                self.regs.write(link, (self.pc + 1) as u64);
                next_pc = target;
            }
            Instruction::Return { link } => {
                next_pc = self.regs.read(link) as usize;
            }
            Instruction::ReadCycle { rd } => {
                // The functional model has no clock; retired-instruction count
                // stands in so timing loops still terminate.
                self.regs.write(rd, self.retired);
            }
            Instruction::Syscall { code } => self.events.push(SystemEvent::Syscall(code)),
            Instruction::SandboxEnter => self.events.push(SystemEvent::SandboxEnter),
            Instruction::SandboxExit => self.events.push(SystemEvent::SandboxExit),
            Instruction::Halt => {
                self.retired += 1;
                self.halted = true;
                return false;
            }
        }
        self.retired += 1;
        self.pc = next_pc;
        true
    }

    /// Runs until halt or until `max_steps` instructions have retired.
    ///
    /// # Errors
    /// Returns [`RunError`] if the program does not halt within the budget or
    /// the PC leaves the program without halting.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, RunError> {
        while self.retired < max_steps {
            if !self.step() {
                if self.halted && self.program.fetch(self.pc).is_some() {
                    return Ok(self.result());
                }
                // Either halted on the final instruction or ran off the end.
                if self.halted {
                    return Ok(self.result());
                }
                return Err(RunError {
                    reason: StopReason::PcOutOfRange,
                    retired: self.retired,
                });
            }
        }
        if self.halted {
            Ok(self.result())
        } else {
            Err(RunError {
                reason: StopReason::OutOfBudget,
                retired: self.retired,
            })
        }
    }

    fn result(&self) -> RunResult {
        RunResult {
            regs: self.regs.clone(),
            memory: self.memory.clone(),
            retired: self.retired,
            events: self.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::ProgramBuilder;

    #[test]
    fn arithmetic_program_computes_expected_result() {
        let mut b = ProgramBuilder::new("arith");
        b.li(Reg::X1, 6);
        b.li(Reg::X2, 7);
        b.mul(Reg::X3, Reg::X1, Reg::X2);
        b.addi(Reg::X3, Reg::X3, 100);
        b.halt();
        let p = b.build().unwrap();
        let result = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(result.regs.read(Reg::X3), 142);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let mut b = ProgramBuilder::new("mem");
        b.li(Reg::X1, 0x8000);
        b.li(Reg::X2, 0xabcd);
        b.store(Reg::X2, Reg::X1, 16);
        b.load(Reg::X3, Reg::X1, 16);
        b.halt();
        let p = b.build().unwrap();
        let result = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(result.regs.read(Reg::X3), 0xabcd);
        assert_eq!(
            result.memory.read(VirtAddr::new(0x8010), MemWidth::Double),
            0xabcd
        );
    }

    #[test]
    fn data_segments_visible_to_loads() {
        let mut b = ProgramBuilder::new("segments");
        b.data_u64(VirtAddr::new(0x2000), &[11, 22, 33]);
        b.li(Reg::X1, 0x2000);
        b.load(Reg::X2, Reg::X1, 8);
        b.halt();
        let p = b.build().unwrap();
        let result = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(result.regs.read(Reg::X2), 22);
    }

    #[test]
    fn call_and_return_use_link_register() {
        let mut b = ProgramBuilder::new("call");
        let func = b.new_label();
        let done = b.new_label();
        b.li(Reg::X1, 5);
        b.call(func, Reg::X30);
        b.jump(done);
        b.bind_label(func);
        b.addi(Reg::X1, Reg::X1, 10);
        b.ret(Reg::X30);
        b.bind_label(done);
        b.halt();
        let p = b.build().unwrap();
        let result = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(result.regs.read(Reg::X1), 15);
    }

    #[test]
    fn atomics_update_memory_and_return_old_value() {
        let mut b = ProgramBuilder::new("amo");
        b.li(Reg::X1, 0x3000);
        b.li(Reg::X2, 5);
        b.store(Reg::X2, Reg::X1, 0);
        b.li(Reg::X3, 3);
        b.amoadd(Reg::X4, Reg::X3, Reg::X1);
        b.amoswap(Reg::X5, Reg::X0, Reg::X1);
        b.halt();
        let p = b.build().unwrap();
        let result = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(result.regs.read(Reg::X4), 5); // old value before add
        assert_eq!(result.regs.read(Reg::X5), 8); // value after add, before swap
        assert_eq!(
            result.memory.read(VirtAddr::new(0x3000), MemWidth::Double),
            0
        );
    }

    #[test]
    fn system_events_are_recorded_in_order() {
        let mut b = ProgramBuilder::new("sys");
        b.syscall(1);
        b.sandbox_enter();
        b.sandbox_exit();
        b.syscall(2);
        b.halt();
        let p = b.build().unwrap();
        let result = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(
            result.events,
            vec![
                SystemEvent::Syscall(1),
                SystemEvent::SandboxEnter,
                SystemEvent::SandboxExit,
                SystemEvent::Syscall(2)
            ]
        );
    }

    #[test]
    fn infinite_loop_exhausts_budget() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.here();
        b.jump(top);
        let p = b.build().unwrap();
        let err = Interpreter::new(&p).run(1000).unwrap_err();
        assert_eq!(err.reason, StopReason::OutOfBudget);
    }

    #[test]
    fn indirect_jump_lands_on_register_value() {
        let mut b = ProgramBuilder::new("jmpi");
        b.li(Reg::X1, 4);
        b.jump_indirect(Reg::X1, 0);
        b.li(Reg::X2, 111); // skipped
        b.halt(); // skipped
        b.li(Reg::X2, 222); // index 4
        b.halt();
        let p = b.build().unwrap();
        let result = Interpreter::new(&p).run(100).unwrap();
        assert_eq!(result.regs.read(Reg::X2), 222);
    }

    #[test]
    fn set_reg_and_memory_act_as_inputs() {
        let mut b = ProgramBuilder::new("inputs");
        b.load(Reg::X2, Reg::X1, 0);
        b.addi(Reg::X2, Reg::X2, 1);
        b.halt();
        let p = b.build().unwrap();
        let mut interp = Interpreter::new(&p);
        interp.set_reg(Reg::X1, 0x7000);
        interp.set_memory(VirtAddr::new(0x7000), 41, MemWidth::Double);
        let result = interp.run(10).unwrap();
        assert_eq!(result.regs.read(Reg::X2), 42);
    }
}
