//! Instruction definitions and their functional semantics.
//!
//! Instructions are plain Rust enums; there is no binary encoding because the
//! simulator never needs one. Each instruction knows its source and destination
//! registers, its execution class (which functional unit it needs) and its
//! execution latency, and the pure ALU/branch evaluation functions live here so
//! that the in-order interpreter and the out-of-order core share exactly the
//! same semantics.

use std::fmt;

use crate::reg::Reg;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    /// Set if less than (signed): produces 0 or 1.
    Slt,
    /// Set if less than (unsigned): produces 0 or 1.
    Sltu,
}

/// Floating-point operations. Operands are reinterpreted as `f64` bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpuOp {
    FAdd,
    FSub,
    FMul,
    FDiv,
}

/// Conditional branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MemWidth {
    Byte,
    Half,
    Word,
    Double,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// Class of an instruction: which functional unit it occupies and how the
/// pipeline must treat it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum InstClass {
    IntAlu,
    MulDiv,
    FpAlu,
    Load,
    Store,
    Atomic,
    Branch,
    Jump,
    Call,
    Return,
    Syscall,
    Barrier,
    SandboxMarker,
    Halt,
    Nop,
}

impl InstClass {
    /// Whether instructions of this class access data memory.
    pub const fn is_memory(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store | InstClass::Atomic)
    }

    /// Whether instructions of this class change control flow.
    pub const fn is_control(self) -> bool {
        matches!(
            self,
            InstClass::Branch | InstClass::Jump | InstClass::Call | InstClass::Return
        )
    }
}

/// A µISA instruction. Branch and jump targets are instruction indices within
/// the program (the program counter is an instruction index, not a byte
/// address; the byte address used for instruction-cache modelling is derived
/// from the index by the program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Does nothing.
    Nop,
    /// `rd <- rs1 op rs2`.
    AluReg {
        /// Operation to perform.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd <- rs1 op imm`.
    AluImm {
        /// Operation to perform.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `rd <- imm` (load immediate).
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Floating-point operation over register bit patterns.
    Fpu {
        /// Operation to perform.
        op: FpuOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd <- mem[rs1 + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// `mem[base + offset] <- rs`.
    Store {
        /// Source (data) register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Atomic swap: `rd <- mem[base]; mem[base] <- rs` (8-byte).
    AtomicSwap {
        /// Destination register receiving the old memory value.
        rd: Reg,
        /// Register whose value is stored.
        rs: Reg,
        /// Address register.
        base: Reg,
    },
    /// Atomic add: `rd <- mem[base]; mem[base] <- rd + rs` (8-byte).
    AtomicAdd {
        /// Destination register receiving the old memory value.
        rd: Reg,
        /// Register added to memory.
        rs: Reg,
        /// Address register.
        base: Reg,
    },
    /// Conditional branch to instruction index `target`.
    Branch {
        /// Condition evaluated over `rs1` and `rs2`.
        cond: BranchCond,
        /// First comparison register.
        rs1: Reg,
        /// Second comparison register.
        rs2: Reg,
        /// Target instruction index when the branch is taken.
        target: usize,
    },
    /// Unconditional direct jump to instruction index `target`.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump to the instruction index held in `base` plus `offset`.
    JumpIndirect {
        /// Register holding the target instruction index.
        base: Reg,
        /// Constant added to the register value.
        offset: i64,
    },
    /// Direct call: pushes the return index and jumps to `target`.
    Call {
        /// Target instruction index.
        target: usize,
        /// Register that receives the return instruction index (link register).
        link: Reg,
    },
    /// Return: jumps to the instruction index in the link register.
    Return {
        /// Register holding the return instruction index.
        link: Reg,
    },
    /// Reads the current cycle counter into `rd`. This is the timing primitive
    /// attack code uses to observe the cache side channel.
    ReadCycle {
        /// Destination register.
        rd: Reg,
    },
    /// System call with a small immediate code; enters the kernel domain.
    Syscall {
        /// Syscall number (interpreted by the OS model in `simsys`).
        code: u16,
    },
    /// Marks entry into a sandboxed region (e.g. untrusted JIT-ed code).
    SandboxEnter,
    /// Marks exit from a sandboxed region.
    SandboxExit,
    /// Speculation barrier: younger instructions may not execute until this
    /// instruction is the oldest in the pipeline.
    SpecBarrier,
    /// Stops the hardware thread.
    Halt,
}

impl Instruction {
    /// Returns the instruction's class.
    pub fn class(&self) -> InstClass {
        match self {
            Instruction::Nop => InstClass::Nop,
            Instruction::AluReg { op, .. } | Instruction::AluImm { op, .. } => match op {
                AluOp::Mul | AluOp::Div | AluOp::Rem => InstClass::MulDiv,
                _ => InstClass::IntAlu,
            },
            Instruction::LoadImm { .. } | Instruction::ReadCycle { .. } => InstClass::IntAlu,
            Instruction::Fpu { .. } => InstClass::FpAlu,
            Instruction::Load { .. } => InstClass::Load,
            Instruction::Store { .. } => InstClass::Store,
            Instruction::AtomicSwap { .. } | Instruction::AtomicAdd { .. } => InstClass::Atomic,
            Instruction::Branch { .. } => InstClass::Branch,
            Instruction::Jump { .. } | Instruction::JumpIndirect { .. } => InstClass::Jump,
            Instruction::Call { .. } => InstClass::Call,
            Instruction::Return { .. } => InstClass::Return,
            Instruction::Syscall { .. } => InstClass::Syscall,
            Instruction::SpecBarrier => InstClass::Barrier,
            Instruction::SandboxEnter | Instruction::SandboxExit => InstClass::SandboxMarker,
            Instruction::Halt => InstClass::Halt,
        }
    }

    /// Execution latency in cycles once the instruction begins executing,
    /// excluding any memory-hierarchy latency.
    pub fn exec_latency(&self) -> u64 {
        match self.class() {
            InstClass::IntAlu | InstClass::Nop | InstClass::SandboxMarker => 1,
            InstClass::MulDiv => match self {
                Instruction::AluReg { op: AluOp::Mul, .. }
                | Instruction::AluImm { op: AluOp::Mul, .. } => 3,
                _ => 12,
            },
            InstClass::FpAlu => match self {
                Instruction::Fpu {
                    op: FpuOp::FDiv, ..
                } => 12,
                _ => 4,
            },
            InstClass::Load | InstClass::Store | InstClass::Atomic => 1,
            InstClass::Branch | InstClass::Jump | InstClass::Call | InstClass::Return => 1,
            InstClass::Syscall | InstClass::Barrier | InstClass::Halt => 1,
        }
    }

    /// Source registers read by this instruction (up to two), without
    /// allocating: a fixed pair padded with `X0` plus the live count. This is
    /// what the out-of-order core's issue loop uses — it runs for every ROB
    /// entry on every cycle, so a `Vec` per call would dominate the profile.
    pub const fn source_regs(&self) -> ([Reg; 2], usize) {
        match *self {
            Instruction::AluReg { rs1, rs2, .. } | Instruction::Fpu { rs1, rs2, .. } => {
                ([rs1, rs2], 2)
            }
            Instruction::AluImm { rs1, .. } => ([rs1, Reg::X0], 1),
            Instruction::Load { base, .. } => ([base, Reg::X0], 1),
            Instruction::Store { rs, base, .. } => ([rs, base], 2),
            Instruction::AtomicSwap { rs, base, .. } | Instruction::AtomicAdd { rs, base, .. } => {
                ([rs, base], 2)
            }
            Instruction::Branch { rs1, rs2, .. } => ([rs1, rs2], 2),
            Instruction::JumpIndirect { base, .. } => ([base, Reg::X0], 1),
            Instruction::Return { link } => ([link, Reg::X0], 1),
            _ => ([Reg::X0, Reg::X0], 0),
        }
    }

    /// Source registers read by this instruction, as a `Vec`. Convenience for
    /// tests and tools; hot paths use [`source_regs`](Self::source_regs).
    pub fn sources(&self) -> Vec<Reg> {
        let (regs, count) = self.source_regs();
        regs[..count].to_vec()
    }

    /// Destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instruction::AluReg { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::LoadImm { rd, .. }
            | Instruction::Fpu { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::AtomicSwap { rd, .. }
            | Instruction::AtomicAdd { rd, .. }
            | Instruction::ReadCycle { rd, .. } => Some(rd),
            Instruction::Call { link, .. } => Some(link),
            _ => None,
        }
    }

    /// The register this instruction uses as a memory *address* base, if any.
    /// Static analyses (like `speclint`'s taint tracker) need to distinguish
    /// the address operand — whose value picks a cache line and is therefore a
    /// transmitter — from data operands, which [`source_regs`](Self::source_regs)
    /// does not separate. Also covers [`JumpIndirect`](Self::JumpIndirect),
    /// whose base register selects an instruction-fetch address.
    pub const fn mem_base(&self) -> Option<Reg> {
        match *self {
            Instruction::Load { base, .. }
            | Instruction::Store { base, .. }
            | Instruction::AtomicSwap { base, .. }
            | Instruction::AtomicAdd { base, .. }
            | Instruction::JumpIndirect { base, .. } => Some(base),
            _ => None,
        }
    }

    /// Whether this instruction is a serialising point for speculation (the
    /// pipeline must not execute younger instructions speculatively past it).
    pub fn is_serialising(&self) -> bool {
        matches!(
            self,
            Instruction::SpecBarrier
                | Instruction::Syscall { .. }
                | Instruction::SandboxEnter
                | Instruction::SandboxExit
                | Instruction::Halt
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Nop => write!(f, "nop"),
            Instruction::AluReg { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Instruction::AluImm { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Instruction::LoadImm { rd, imm } => write!(f, "li {rd}, {imm:#x}"),
            Instruction::Fpu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Instruction::Load {
                rd,
                base,
                offset,
                width,
            } => {
                write!(f, "load.{} {rd}, [{base}{offset:+}]", width.bytes())
            }
            Instruction::Store {
                rs,
                base,
                offset,
                width,
            } => {
                write!(f, "store.{} {rs}, [{base}{offset:+}]", width.bytes())
            }
            Instruction::AtomicSwap { rd, rs, base } => write!(f, "amoswap {rd}, {rs}, [{base}]"),
            Instruction::AtomicAdd { rd, rs, base } => write!(f, "amoadd {rd}, {rs}, [{base}]"),
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "b{cond:?} {rs1}, {rs2} -> #{target}")
            }
            Instruction::Jump { target } => write!(f, "jmp #{target}"),
            Instruction::JumpIndirect { base, offset } => write!(f, "jmpi [{base}{offset:+}]"),
            Instruction::Call { target, link } => write!(f, "call #{target} (link {link})"),
            Instruction::Return { link } => write!(f, "ret [{link}]"),
            Instruction::ReadCycle { rd } => write!(f, "rdcycle {rd}"),
            Instruction::Syscall { code } => write!(f, "syscall {code}"),
            Instruction::SandboxEnter => write!(f, "sandbox.enter"),
            Instruction::SandboxExit => write!(f, "sandbox.exit"),
            Instruction::SpecBarrier => write!(f, "specbar"),
            Instruction::Halt => write!(f, "halt"),
        }
    }
}

/// Evaluates an integer ALU operation.
///
/// Division and remainder by zero produce `u64::MAX` and the dividend
/// respectively (mirroring RISC-V), so the simulator never faults.
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
    }
}

/// Evaluates a floating-point operation over `f64` bit patterns.
pub fn eval_fpu(op: FpuOp, a: u64, b: u64) -> u64 {
    let x = f64::from_bits(a);
    let y = f64::from_bits(b);
    let r = match op {
        FpuOp::FAdd => x + y,
        FpuOp::FSub => x - y,
        FpuOp::FMul => x * y,
        FpuOp::FDiv => x / y,
    };
    r.to_bits()
}

/// Evaluates a branch condition.
pub fn eval_branch(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(eval_alu(AluOp::Add, 2, 3), 5);
        assert_eq!(eval_alu(AluOp::Sub, 2, 3), u64::MAX);
        assert_eq!(eval_alu(AluOp::Mul, 7, 6), 42);
        assert_eq!(eval_alu(AluOp::Div, 42, 6), 7);
        assert_eq!(eval_alu(AluOp::Div, 42, 0), u64::MAX);
        assert_eq!(eval_alu(AluOp::Rem, 43, 6), 1);
        assert_eq!(eval_alu(AluOp::Rem, 43, 0), 43);
        assert_eq!(eval_alu(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_alu(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(eval_alu(AluOp::Shl, 1, 4), 16);
        assert_eq!(eval_alu(AluOp::Shr, 16, 4), 1);
        assert_eq!(eval_alu(AluOp::Slt, (-1i64) as u64, 0), 1);
        assert_eq!(eval_alu(AluOp::Sltu, (-1i64) as u64, 0), 0);
    }

    #[test]
    fn fpu_semantics() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(eval_fpu(FpuOp::FAdd, two, three)), 5.0);
        assert_eq!(f64::from_bits(eval_fpu(FpuOp::FMul, two, three)), 6.0);
        assert_eq!(f64::from_bits(eval_fpu(FpuOp::FSub, three, two)), 1.0);
        assert_eq!(f64::from_bits(eval_fpu(FpuOp::FDiv, three, two)), 1.5);
    }

    #[test]
    fn branch_semantics() {
        assert!(eval_branch(BranchCond::Eq, 4, 4));
        assert!(eval_branch(BranchCond::Ne, 4, 5));
        assert!(eval_branch(BranchCond::Lt, (-3i64) as u64, 2));
        assert!(!eval_branch(BranchCond::Ltu, (-3i64) as u64, 2));
        assert!(eval_branch(BranchCond::Ge, 7, 7));
        assert!(eval_branch(BranchCond::Geu, 7, 2));
    }

    #[test]
    fn classes_and_latencies() {
        let ld = Instruction::Load {
            rd: Reg::X1,
            base: Reg::X2,
            offset: 0,
            width: MemWidth::Double,
        };
        assert_eq!(ld.class(), InstClass::Load);
        assert!(ld.class().is_memory());
        let br = Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::X1,
            rs2: Reg::X2,
            target: 0,
        };
        assert!(br.class().is_control());
        let div = Instruction::AluReg {
            op: AluOp::Div,
            rd: Reg::X1,
            rs1: Reg::X2,
            rs2: Reg::X3,
        };
        assert_eq!(div.class(), InstClass::MulDiv);
        assert!(div.exec_latency() > 1);
        let mul = Instruction::AluImm {
            op: AluOp::Mul,
            rd: Reg::X1,
            rs1: Reg::X2,
            imm: 3,
        };
        assert_eq!(mul.exec_latency(), 3);
    }

    #[test]
    fn sources_and_dests() {
        let st = Instruction::Store {
            rs: Reg::X3,
            base: Reg::X4,
            offset: 8,
            width: MemWidth::Word,
        };
        assert_eq!(st.sources(), vec![Reg::X3, Reg::X4]);
        assert_eq!(st.dest(), None);
        let amo = Instruction::AtomicAdd {
            rd: Reg::X1,
            rs: Reg::X2,
            base: Reg::X3,
        };
        assert_eq!(amo.dest(), Some(Reg::X1));
        assert_eq!(amo.sources(), vec![Reg::X2, Reg::X3]);
        let call = Instruction::Call {
            target: 7,
            link: Reg::X30,
        };
        assert_eq!(call.dest(), Some(Reg::X30));
        let ret = Instruction::Return { link: Reg::X30 };
        assert_eq!(ret.sources(), vec![Reg::X30]);
    }

    #[test]
    fn mem_base_separates_address_from_data_operands() {
        let st = Instruction::Store {
            rs: Reg::X3,
            base: Reg::X4,
            offset: 8,
            width: MemWidth::Word,
        };
        assert_eq!(st.mem_base(), Some(Reg::X4));
        let ld = Instruction::Load {
            rd: Reg::X1,
            base: Reg::X2,
            offset: 0,
            width: MemWidth::Double,
        };
        assert_eq!(ld.mem_base(), Some(Reg::X2));
        let amo = Instruction::AtomicSwap {
            rd: Reg::X1,
            rs: Reg::X2,
            base: Reg::X3,
        };
        assert_eq!(amo.mem_base(), Some(Reg::X3));
        let jmpi = Instruction::JumpIndirect {
            base: Reg::X5,
            offset: 0,
        };
        assert_eq!(jmpi.mem_base(), Some(Reg::X5));
        assert_eq!(Instruction::Nop.mem_base(), None);
        assert_eq!(Instruction::Halt.mem_base(), None);
    }

    #[test]
    fn serialising_instructions() {
        assert!(Instruction::SpecBarrier.is_serialising());
        assert!(Instruction::Syscall { code: 1 }.is_serialising());
        assert!(Instruction::SandboxEnter.is_serialising());
        assert!(!Instruction::Nop.is_serialising());
    }

    #[test]
    fn display_is_nonempty_for_all_shapes() {
        let insts = [
            Instruction::Nop,
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::X1,
                rs1: Reg::X2,
                rs2: Reg::X3,
            },
            Instruction::Load {
                rd: Reg::X1,
                base: Reg::X2,
                offset: -8,
                width: MemWidth::Byte,
            },
            Instruction::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::X1,
                rs2: Reg::X0,
                target: 3,
            },
            Instruction::Syscall { code: 2 },
            Instruction::Halt,
        ];
        for i in insts {
            assert!(!format!("{i}").is_empty());
        }
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert_eq!(MemWidth::Double.bytes(), 8);
    }
}
