//! Static control-flow analysis helpers over [`Program`]s.
//!
//! The dynamic simulator never needs a control-flow graph — it just follows
//! the program counter — but static tooling (the `speclint` speculative-taint
//! analyzer, program validation) reasons about *all* paths at once. This
//! module provides the shared pieces: per-instruction successor enumeration
//! and a whole-program [`Cfg`] with predecessor lists, basic-block leaders and
//! reachability.
//!
//! Conventions:
//!
//! * Successors are instruction indices (the µISA program counter is an
//!   instruction index, see [`crate::inst::Instruction`]).
//! * A [`Call`](crate::inst::Instruction::Call) has a single successor, its
//!   target: the matching return edge is a property of the *caller's* link
//!   value, which a graph over instruction indices cannot represent. Callers
//!   that need call/return pairing (like `speclint`'s speculative walker)
//!   track a return stack on top of [`successors`].
//! * [`JumpIndirect`](crate::inst::Instruction::JumpIndirect) and
//!   [`Return`](crate::inst::Instruction::Return) targets are register
//!   values, unknown statically: they contribute no successor edges.
//! * [`Halt`](crate::inst::Instruction::Halt) has no successors.

use crate::inst::Instruction;
use crate::prog::Program;

/// Static successor instruction indices of `inst` at index `pc`, without
/// allocating: a fixed pair padded with zero plus the live count (mirroring
/// [`Instruction::source_regs`]). Successors may be out of range for the
/// enclosing program when the instruction itself encodes an out-of-range
/// target; [`Program::validate`](crate::prog::Program::validate) rejects such
/// programs.
pub const fn successors(inst: &Instruction, pc: usize) -> ([usize; 2], usize) {
    match *inst {
        Instruction::Branch { target, .. } => ([pc + 1, target], 2),
        Instruction::Jump { target } => ([target, 0], 1),
        Instruction::Call { target, .. } => ([target, 0], 1),
        Instruction::JumpIndirect { .. } | Instruction::Return { .. } | Instruction::Halt => {
            ([0, 0], 0)
        }
        _ => ([pc + 1, 0], 1),
    }
}

/// Whether `inst` can fall through to the next instruction (i.e. `pc + 1` is
/// among its successors).
pub const fn falls_through(inst: &Instruction) -> bool {
    !matches!(
        inst,
        Instruction::Jump { .. }
            | Instruction::JumpIndirect { .. }
            | Instruction::Call { .. }
            | Instruction::Return { .. }
            | Instruction::Halt
    )
}

/// A whole-program control-flow graph over instruction indices.
///
/// # Examples
///
/// ```
/// use uarch_isa::cfg::Cfg;
/// use uarch_isa::prog::ProgramBuilder;
/// use uarch_isa::reg::Reg;
///
/// let mut b = ProgramBuilder::new("loop");
/// let top = b.new_label();
/// b.li(Reg::X1, 0);
/// b.bind_label(top);
/// b.addi(Reg::X1, Reg::X1, 1);
/// b.blt_imm(Reg::X1, 4, top);
/// b.halt();
/// let program = b.build().unwrap();
///
/// let cfg = Cfg::of(&program);
/// // The back edge: the branch (index 3) targets the loop body (index 1).
/// assert!(cfg.successors_of(3).contains(&1));
/// assert!(cfg.predecessors_of(1).contains(&3));
/// assert!(cfg.is_block_start(1), "a branch target starts a block");
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    block_start: Vec<bool>,
}

impl Cfg {
    /// Builds the graph for `program`. Out-of-range successor targets (only
    /// possible in hand-emitted programs that bypass
    /// [`Program::validate`](crate::prog::Program::validate)) are dropped.
    pub fn of(program: &Program) -> Cfg {
        let n = program.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut block_start = vec![false; n];
        if n > 0 {
            block_start[0] = true;
        }
        for (pc, inst) in program.iter().enumerate() {
            let (targets, count) = successors(inst, pc);
            for &s in &targets[..count] {
                if s < n {
                    succs[pc].push(s);
                    preds[s].push(pc);
                }
            }
            // Control transfers start blocks at their targets and after
            // themselves (the fall-through of a branch is a merge point).
            if inst.class().is_control() {
                for &s in &targets[..count] {
                    if s < n {
                        block_start[s] = true;
                    }
                }
                if pc + 1 < n {
                    block_start[pc + 1] = true;
                }
            }
        }
        for p in preds.iter_mut() {
            p.sort_unstable();
            p.dedup();
        }
        Cfg {
            succs,
            preds,
            block_start,
        }
    }

    /// Number of instructions (graph nodes).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The successor indices of instruction `pc`.
    pub fn successors_of(&self, pc: usize) -> &[usize] {
        &self.succs[pc]
    }

    /// The predecessor indices of instruction `pc` (sorted, deduplicated).
    pub fn predecessors_of(&self, pc: usize) -> &[usize] {
        &self.preds[pc]
    }

    /// Whether instruction `pc` starts a basic block (entry point, control
    /// transfer target, or fall-through join after a control instruction).
    pub fn is_block_start(&self, pc: usize) -> bool {
        self.block_start[pc]
    }

    /// The basic-block leader indices, in program order.
    pub fn block_starts(&self) -> Vec<usize> {
        self.block_start
            .iter()
            .enumerate()
            .filter_map(|(pc, &s)| s.then_some(pc))
            .collect()
    }

    /// The set of instructions reachable from `entry` along successor edges,
    /// as a membership mask. Indirect control flow (returns, indirect jumps)
    /// contributes no edges, so this is the *direct-edge* reachability.
    pub fn reachable_from(&self, entry: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if entry >= self.len() {
            return seen;
        }
        let mut stack = vec![entry];
        seen[entry] = true;
        while let Some(pc) = stack.pop() {
            for &s in &self.succs[pc] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BranchCond;
    use crate::prog::ProgramBuilder;
    use crate::reg::Reg;

    fn branchy_program() -> Program {
        let mut b = ProgramBuilder::new("cfg-test");
        let taken = b.new_label();
        let join = b.new_label();
        b.li(Reg::X1, 1); // 0
        b.branch(BranchCond::Eq, Reg::X1, Reg::X0, taken); // 1
        b.addi(Reg::X2, Reg::X2, 1); // 2 (fall-through)
        b.jump(join); // 3
        b.bind_label(taken);
        b.addi(Reg::X2, Reg::X2, 2); // 4
        b.bind_label(join);
        b.halt(); // 5
        b.build().unwrap()
    }

    #[test]
    fn successor_shapes_per_instruction_kind() {
        let branch = Instruction::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::X1,
            rs2: Reg::X0,
            target: 7,
        };
        let ([a, b], n) = successors(&branch, 3);
        assert_eq!((a, b, n), (4, 7, 2));
        let (t, n) = successors(&Instruction::Jump { target: 9 }, 0);
        assert_eq!((t[0], n), (9, 1));
        let (t, n) = successors(
            &Instruction::Call {
                target: 2,
                link: Reg::X30,
            },
            5,
        );
        assert_eq!((t[0], n), (2, 1));
        assert_eq!(successors(&Instruction::Halt, 5).1, 0);
        assert_eq!(successors(&Instruction::Return { link: Reg::X30 }, 5).1, 0);
        assert_eq!(
            successors(
                &Instruction::JumpIndirect {
                    base: Reg::X1,
                    offset: 0
                },
                5
            )
            .1,
            0
        );
        let (t, n) = successors(&Instruction::Nop, 5);
        assert_eq!((t[0], n), (6, 1));
    }

    #[test]
    fn fall_through_classification() {
        assert!(falls_through(&Instruction::Nop));
        assert!(falls_through(&Instruction::SpecBarrier));
        assert!(falls_through(&Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::X0,
            rs2: Reg::X0,
            target: 0
        }));
        assert!(!falls_through(&Instruction::Jump { target: 0 }));
        assert!(!falls_through(&Instruction::Halt));
        assert!(!falls_through(&Instruction::Return { link: Reg::X30 }));
    }

    #[test]
    fn graph_edges_and_blocks_of_a_diamond() {
        let p = branchy_program();
        let cfg = Cfg::of(&p);
        assert_eq!(cfg.len(), p.len());
        assert_eq!(cfg.successors_of(1), &[2, 4]);
        assert_eq!(cfg.predecessors_of(5), &[3, 4]);
        // Leaders: entry, both branch arms, and the join.
        assert_eq!(cfg.block_starts(), vec![0, 2, 4, 5]);
        assert!(!cfg.is_block_start(1));
    }

    #[test]
    fn reachability_covers_the_diamond_and_stops_at_halt() {
        let p = branchy_program();
        let cfg = Cfg::of(&p);
        let from_entry = cfg.reachable_from(0);
        assert!(from_entry.iter().all(|&r| r), "every node is reachable");
        let from_join = cfg.reachable_from(5);
        assert_eq!(from_join.iter().filter(|&&r| r).count(), 1);
        assert!(cfg.reachable_from(99).iter().all(|&r| !r));
    }

    #[test]
    fn out_of_range_targets_are_dropped_not_panicked() {
        // Such a program fails `Program::validate` (so the builder rejects it
        // in debug builds); the graph still degrades gracefully.
        let p = Program::from_raw_parts(
            "oob",
            vec![
                Instruction::Branch {
                    cond: BranchCond::Eq,
                    rs1: Reg::X0,
                    rs2: Reg::X0,
                    target: 2, // == len: past the end
                },
                Instruction::Halt,
            ],
            Vec::new(),
        );
        let cfg = Cfg::of(&p);
        assert_eq!(cfg.successors_of(0), &[1], "the oob edge is dropped");
    }
}
