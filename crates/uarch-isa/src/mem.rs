//! Sparse byte-addressable data memory.
//!
//! Each simulated process owns one [`SparseMemory`], allocated lazily in 4 KiB
//! chunks. The memory stores functional values only — timing is the job of the
//! cache hierarchy in `memsys`. Reads of never-written locations return zero.

use std::collections::HashMap;

use simkit::addr::VirtAddr;

use crate::inst::MemWidth;

/// Size of each lazily-allocated chunk.
const CHUNK_BYTES: u64 = 4096;

/// A sparse, byte-addressable, zero-initialised memory.
///
/// # Example
///
/// ```
/// use uarch_isa::mem::SparseMemory;
/// use uarch_isa::inst::MemWidth;
/// use simkit::addr::VirtAddr;
///
/// let mut mem = SparseMemory::new();
/// mem.write(VirtAddr::new(0x1000), 0xdead_beef, MemWidth::Word);
/// assert_eq!(mem.read(VirtAddr::new(0x1000), MemWidth::Word), 0xdead_beef);
/// assert_eq!(mem.read(VirtAddr::new(0x2000), MemWidth::Double), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseMemory {
    chunks: HashMap<u64, Box<[u8; CHUNK_BYTES as usize]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Reads `width` bytes at `addr`, little-endian, zero-extended to 64 bits.
    pub fn read(&self, addr: VirtAddr, width: MemWidth) -> u64 {
        let mut value = 0u64;
        for i in 0..width.bytes() {
            let byte = self.read_byte(addr.raw().wrapping_add(i));
            value |= (byte as u64) << (8 * i);
        }
        value
    }

    /// Writes the low `width` bytes of `value` at `addr`, little-endian.
    pub fn write(&mut self, addr: VirtAddr, value: u64, width: MemWidth) {
        for i in 0..width.bytes() {
            let byte = ((value >> (8 * i)) & 0xff) as u8;
            self.write_byte(addr.raw().wrapping_add(i), byte);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr.raw().wrapping_add(i as u64), *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: VirtAddr, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_byte(addr.raw().wrapping_add(i as u64)))
            .collect()
    }

    /// Number of chunks that have been touched (allocated).
    pub fn allocated_chunks(&self) -> usize {
        self.chunks.len()
    }

    fn read_byte(&self, addr: u64) -> u8 {
        let chunk = addr / CHUNK_BYTES;
        let offset = (addr % CHUNK_BYTES) as usize;
        self.chunks.get(&chunk).map(|c| c[offset]).unwrap_or(0)
    }

    fn write_byte(&mut self, addr: u64, value: u8) {
        let chunk = addr / CHUNK_BYTES;
        let offset = (addr % CHUNK_BYTES) as usize;
        let entry = self
            .chunks
            .entry(chunk)
            .or_insert_with(|| Box::new([0u8; CHUNK_BYTES as usize]));
        entry[offset] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read(VirtAddr::new(0x1234_5678), MemWidth::Double), 0);
        assert_eq!(mem.allocated_chunks(), 0);
    }

    #[test]
    fn round_trip_all_widths() {
        let mut mem = SparseMemory::new();
        let addr = VirtAddr::new(0x4000);
        for (width, mask) in [
            (MemWidth::Byte, 0xffu64),
            (MemWidth::Half, 0xffff),
            (MemWidth::Word, 0xffff_ffff),
            (MemWidth::Double, u64::MAX),
        ] {
            mem.write(addr, 0x1122_3344_5566_7788, width);
            assert_eq!(mem.read(addr, width), 0x1122_3344_5566_7788 & mask);
        }
    }

    #[test]
    fn writes_cross_chunk_boundaries() {
        let mut mem = SparseMemory::new();
        let addr = VirtAddr::new(CHUNK_BYTES - 4);
        mem.write(addr, 0xaabb_ccdd_eeff_0011, MemWidth::Double);
        assert_eq!(mem.read(addr, MemWidth::Double), 0xaabb_ccdd_eeff_0011);
        assert_eq!(mem.allocated_chunks(), 2);
    }

    #[test]
    fn byte_slices_round_trip() {
        let mut mem = SparseMemory::new();
        let data: Vec<u8> = (0..100).collect();
        mem.write_bytes(VirtAddr::new(0x9000), &data);
        assert_eq!(mem.read_bytes(VirtAddr::new(0x9000), 100), data);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = SparseMemory::new();
        mem.write(VirtAddr::new(0x100), 0x0102_0304, MemWidth::Word);
        assert_eq!(mem.read(VirtAddr::new(0x100), MemWidth::Byte), 0x04);
        assert_eq!(mem.read(VirtAddr::new(0x103), MemWidth::Byte), 0x01);
    }
}
