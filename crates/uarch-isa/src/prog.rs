//! Programs and the program builder (assembler).
//!
//! A [`Program`] is an immutable sequence of instructions plus initial data
//! segments. The [`ProgramBuilder`] is a tiny assembler: workload generators
//! and attack litmus tests emit instructions through its helper methods and use
//! forward-referencing labels for control flow; `build` resolves labels and
//! validates targets.

use std::fmt;
use std::sync::Arc;

use simkit::addr::VirtAddr;

use crate::inst::{AluOp, BranchCond, FpuOp, Instruction, MemWidth};
use crate::reg::Reg;

/// Byte size of one instruction slot in the virtual instruction address space;
/// used to derive instruction-fetch addresses for the instruction cache.
pub const INST_BYTES: u64 = 4;

/// Base virtual address of the text (code) segment.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// A forward-referencing label handle returned by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An initial data segment copied into memory before the program runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataSegment {
    /// Destination virtual address.
    pub addr: VirtAddr,
    /// Bytes to place at `addr`.
    pub bytes: Vec<u8>,
}

/// An immutable µISA program: code, initial data and a name.
///
/// Every field is behind an [`Arc`], so cloning a program — which the system
/// layer does once per thread and per simulation — is three reference-count
/// bumps, never a copy of the instruction stream or the data segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    name: Arc<str>,
    code: Arc<Vec<Instruction>>,
    data: Arc<Vec<DataSegment>>,
}

impl Program {
    /// Assembles a program directly from parts, bypassing the builder *and*
    /// [`validate`](Self::validate). Static tools use this to construct
    /// deliberately malformed programs (out-of-range targets, fall-through
    /// ends) and check that analyses degrade gracefully instead of panicking;
    /// everything that actually runs should come from [`ProgramBuilder`].
    pub fn from_raw_parts(
        name: impl Into<String>,
        code: Vec<Instruction>,
        data: Vec<DataSegment>,
    ) -> Self {
        Program {
            name: name.into().into(),
            code: Arc::new(code),
            data: Arc::new(data),
        }
    }

    /// The program's name (used as the workload label in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at index `pc`, if in range.
    pub fn fetch(&self, pc: usize) -> Option<Instruction> {
        self.code.get(pc).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The virtual address instruction `pc` is fetched from (for I-cache and
    /// branch-predictor indexing).
    pub fn inst_addr(&self, pc: usize) -> VirtAddr {
        VirtAddr::new(TEXT_BASE + pc as u64 * INST_BYTES)
    }

    /// The initial data segments.
    pub fn data_segments(&self) -> &[DataSegment] {
        &self.data
    }

    /// Iterates over the instructions in order.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.code.iter()
    }

    /// Checks the whole-program well-formedness invariants the interpreter and
    /// the static analyses rely on:
    ///
    /// * every branch/jump/call target is a valid instruction index
    ///   (strictly less than [`len`](Self::len) — the builder's historical
    ///   check tolerated `target == len`, which the interpreter reports as
    ///   [`PcOutOfRange`](crate::interp::StopReason::PcOutOfRange) when taken);
    /// * the final instruction cannot fall through past the end of the
    ///   program (it must be a halt, jump, return or indirect jump);
    /// * no two initial data segments overlap.
    ///
    /// [`ProgramBuilder::build`] runs this automatically in debug builds, so
    /// every program constructed in tests is known-valid; release builds skip
    /// it and [`from_raw_parts`](Self::from_raw_parts) bypasses it entirely.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for (at, inst) in self.code.iter().enumerate() {
            let target = match *inst {
                Instruction::Branch { target, .. }
                | Instruction::Jump { target }
                | Instruction::Call { target, .. } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if target >= self.code.len() {
                    return Err(ValidateError::TargetOutOfRange { at, target });
                }
            }
        }
        if let Some(last) = self.code.last() {
            if crate::cfg::falls_through(last) {
                return Err(ValidateError::FallsOffEnd {
                    at: self.code.len() - 1,
                });
            }
        }
        // Overlap check over segments sorted by start address; zero-length
        // segments occupy no bytes and cannot overlap anything.
        let mut spans: Vec<(u64, u64, usize)> = self
            .data
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.bytes.is_empty())
            .map(|(i, s)| (s.addr.raw(), s.addr.raw() + s.bytes.len() as u64, i))
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            let (_, prev_end, prev_idx) = pair[0];
            let (cur_start, _, cur_idx) = pair[1];
            if prev_end > cur_start {
                return Err(ValidateError::OverlappingData {
                    first: prev_idx.min(cur_idx),
                    second: prev_idx.max(cur_idx),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program `{}` ({} instructions)",
            self.name,
            self.code.len()
        )?;
        for (i, inst) in self.code.iter().enumerate() {
            writeln!(f, "  {i:5}: {inst}")?;
        }
        Ok(())
    }
}

/// Error produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch, jump or call targets an instruction index at or past the end
    /// of the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// The final instruction can fall through past the end of the program.
    FallsOffEnd {
        /// Index of the final instruction.
        at: usize,
    },
    /// Two initial data segments overlap.
    OverlappingData {
        /// Index (into [`Program::data_segments`]) of the earlier segment.
        first: usize,
        /// Index of the overlapping later segment.
        second: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            ValidateError::FallsOffEnd { at } => {
                write!(f, "final instruction {at} can fall off the end")
            }
            ValidateError::OverlappingData { first, second } => {
                write!(f, "data segments {first} and {second} overlap")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Error produced by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(usize),
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// The program contains no instructions.
    Empty,
    /// The assembled program failed [`Program::validate`] (debug builds only).
    Invalid(ValidateError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(id) => write!(f, "label {id} was never bound"),
            BuildError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            BuildError::Empty => write!(f, "program has no instructions"),
            BuildError::Invalid(e) => write!(f, "program failed validation: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Placeholder target used before labels are resolved.
const UNRESOLVED: usize = usize::MAX;

/// Incremental builder ("assembler") for [`Program`]s.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    code: Vec<Instruction>,
    data: Vec<DataSegment>,
    /// For each label id: bound position (or `None`).
    labels: Vec<Option<usize>>,
    /// (instruction index, label id) pairs to patch at build time.
    fixups: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Creates a builder for a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            code: Vec::new(),
            data: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Creates a new, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position (the next emitted instruction).
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind_label(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len());
    }

    /// Creates a label already bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind_label(l);
        l
    }

    /// Current number of emitted instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Adds an initial data segment.
    pub fn data(&mut self, addr: VirtAddr, bytes: Vec<u8>) -> &mut Self {
        self.data.push(DataSegment { addr, bytes });
        self
    }

    /// Adds a data segment of `count` little-endian u64 values.
    pub fn data_u64(&mut self, addr: VirtAddr, values: &[u64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.data(addr, bytes)
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Instruction) -> &mut Self {
        self.code.push(inst);
        self
    }

    // ---- ALU helpers -----------------------------------------------------

    /// `rd <- imm`.
    pub fn li(&mut self, rd: Reg, imm: u64) -> &mut Self {
        self.emit(Instruction::LoadImm { rd, imm })
    }

    /// `rd <- rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::AluReg {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd <- rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::AluReg {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd <- rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::AluReg {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd <- rs1 / rs2` (signed).
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::AluReg {
            op: AluOp::Div,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd <- rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instruction::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd <- rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instruction::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd <- rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::AluReg {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd <- rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::AluReg {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd <- rs1 << imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instruction::AluImm {
            op: AluOp::Shl,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd <- rs1 >> imm`.
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instruction::AluImm {
            op: AluOp::Shr,
            rd,
            rs1,
            imm,
        })
    }

    /// `rd <- rs1 % imm`.
    pub fn remi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instruction::AluImm {
            op: AluOp::Rem,
            rd,
            rs1,
            imm,
        })
    }

    /// Generic register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::AluReg { op, rd, rs1, rs2 })
    }

    /// Generic register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Instruction::AluImm { op, rd, rs1, imm })
    }

    /// Floating-point operation.
    pub fn fpu(&mut self, op: FpuOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instruction::Fpu { op, rd, rs1, rs2 })
    }

    // ---- memory helpers --------------------------------------------------

    /// 8-byte load: `rd <- mem[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Load {
            rd,
            base,
            offset,
            width: MemWidth::Double,
        })
    }

    /// 1-byte load.
    pub fn load_byte(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Load {
            rd,
            base,
            offset,
            width: MemWidth::Byte,
        })
    }

    /// 8-byte store: `mem[base + offset] <- rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Store {
            rs,
            base,
            offset,
            width: MemWidth::Double,
        })
    }

    /// 1-byte store.
    pub fn store_byte(&mut self, rs: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Store {
            rs,
            base,
            offset,
            width: MemWidth::Byte,
        })
    }

    /// Atomic swap (8-byte).
    pub fn amoswap(&mut self, rd: Reg, rs: Reg, base: Reg) -> &mut Self {
        self.emit(Instruction::AtomicSwap { rd, rs, base })
    }

    /// Atomic add (8-byte).
    pub fn amoadd(&mut self, rd: Reg, rs: Reg, base: Reg) -> &mut Self {
        self.emit(Instruction::AtomicAdd { rd, rs, base })
    }

    // ---- control-flow helpers --------------------------------------------

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        let at = self.code.len();
        self.fixups.push((at, label.0));
        self.emit(Instruction::Branch {
            cond,
            rs1,
            rs2,
            target: UNRESOLVED,
        })
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }

    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Geu, rs1, rs2, label)
    }

    /// Compares `rs1` with a small immediate (materialised into `X31`) and
    /// branches if `rs1 < imm` (signed). Clobbers `X31`.
    pub fn blt_imm(&mut self, rs1: Reg, imm: u64, label: Label) -> &mut Self {
        self.li(Reg::X31, imm);
        self.blt(rs1, Reg::X31, label)
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        let at = self.code.len();
        self.fixups.push((at, label.0));
        self.emit(Instruction::Jump { target: UNRESOLVED })
    }

    /// Indirect jump to the instruction index in `base` plus `offset`.
    pub fn jump_indirect(&mut self, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::JumpIndirect { base, offset })
    }

    /// Call `label`, linking into `link`.
    pub fn call(&mut self, label: Label, link: Reg) -> &mut Self {
        let at = self.code.len();
        self.fixups.push((at, label.0));
        self.emit(Instruction::Call {
            target: UNRESOLVED,
            link,
        })
    }

    /// Return through `link`.
    pub fn ret(&mut self, link: Reg) -> &mut Self {
        self.emit(Instruction::Return { link })
    }

    // ---- system helpers ---------------------------------------------------

    /// Read the cycle counter into `rd`.
    pub fn rdcycle(&mut self, rd: Reg) -> &mut Self {
        self.emit(Instruction::ReadCycle { rd })
    }

    /// System call.
    pub fn syscall(&mut self, code: u16) -> &mut Self {
        self.emit(Instruction::Syscall { code })
    }

    /// Sandbox entry marker.
    pub fn sandbox_enter(&mut self) -> &mut Self {
        self.emit(Instruction::SandboxEnter)
    }

    /// Sandbox exit marker.
    pub fn sandbox_exit(&mut self) -> &mut Self {
        self.emit(Instruction::SandboxExit)
    }

    /// Speculation barrier.
    pub fn spec_barrier(&mut self) -> &mut Self {
        self.emit(Instruction::SpecBarrier)
    }

    /// No-operation.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instruction::Nop)
    }

    /// Halt the hardware thread.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instruction::Halt)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    /// Returns [`BuildError`] if the program is empty, a referenced label was
    /// never bound, or a resolved target is out of range. Debug builds also
    /// run [`Program::validate`] and return [`BuildError::Invalid`] on
    /// failure.
    pub fn build(mut self) -> Result<Program, BuildError> {
        if self.code.is_empty() {
            return Err(BuildError::Empty);
        }
        for (at, label_id) in &self.fixups {
            let position = self.labels[*label_id].ok_or(BuildError::UnboundLabel(*label_id))?;
            if position > self.code.len() {
                return Err(BuildError::TargetOutOfRange {
                    at: *at,
                    target: position,
                });
            }
            match &mut self.code[*at] {
                Instruction::Branch { target, .. }
                | Instruction::Jump { target }
                | Instruction::Call { target, .. } => *target = position,
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        // Validate static targets (including hand-emitted ones).
        for (i, inst) in self.code.iter().enumerate() {
            let target = match inst {
                Instruction::Branch { target, .. }
                | Instruction::Jump { target }
                | Instruction::Call { target, .. } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                if t > self.code.len() {
                    return Err(BuildError::TargetOutOfRange { at: i, target: t });
                }
            }
        }
        let program = Program {
            name: self.name.into(),
            code: Arc::new(self.code),
            data: Arc::new(self.data),
        };
        // Debug builds (which is how every test runs) additionally hold
        // programs to the stricter whole-program invariants; release builds
        // keep the historical fast path.
        #[cfg(debug_assertions)]
        program.validate().map_err(BuildError::Invalid)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_loop() {
        let mut b = ProgramBuilder::new("loop");
        let top = b.new_label();
        b.li(Reg::X1, 0);
        b.bind_label(top);
        b.addi(Reg::X1, Reg::X1, 1);
        b.blt_imm(Reg::X1, 5, top);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.name(), "loop");
        // li + addi + (li X31 + blt from blt_imm) + halt = 5 instructions.
        assert_eq!(p.len(), 5);
        // The branch at index 3 must target index 1 (after bind).
        match p.fetch(3).unwrap() {
            Instruction::Branch { target, .. } => assert_eq!(target, 1),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.new_label();
        b.jump(l);
        b.halt();
        assert!(matches!(b.build(), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    fn empty_program_is_an_error() {
        let b = ProgramBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), BuildError::Empty);
    }

    #[test]
    fn out_of_range_static_target_is_an_error() {
        let mut b = ProgramBuilder::new("bad-target");
        b.emit(Instruction::Jump { target: 999 });
        b.halt();
        assert!(matches!(
            b.build(),
            Err(BuildError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("double");
        let l = b.new_label();
        b.bind_label(l);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.bind_label(l);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn validate_accepts_a_well_formed_program() {
        let mut b = ProgramBuilder::new("ok");
        let done = b.new_label();
        b.data_u64(VirtAddr::new(0x1000), &[1, 2]);
        b.data_u64(VirtAddr::new(0x1010), &[3]);
        b.li(Reg::X1, 1);
        b.beq(Reg::X1, Reg::X0, done);
        b.bind_label(done);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_target_equal_to_len() {
        // The historical builder check tolerated `target == len`; validate is
        // strict because taking such a branch walks off the program.
        let p = Program::from_raw_parts(
            "edge",
            vec![Instruction::Jump { target: 2 }, Instruction::Halt],
            Vec::new(),
        );
        assert_eq!(
            p.validate(),
            Err(ValidateError::TargetOutOfRange { at: 0, target: 2 })
        );
    }

    #[test]
    fn validate_rejects_a_fall_through_end() {
        let p = Program::from_raw_parts("no-halt", vec![Instruction::Nop], Vec::new());
        assert_eq!(p.validate(), Err(ValidateError::FallsOffEnd { at: 0 }));
        // The build() hook only runs under debug assertions; release builds
        // keep the fast path and accept the program.
        let mut b = ProgramBuilder::new("no-halt-built");
        b.nop();
        let built = b.build();
        if cfg!(debug_assertions) {
            assert!(matches!(
                built,
                Err(BuildError::Invalid(ValidateError::FallsOffEnd { at: 0 }))
            ));
        } else {
            assert!(built.is_ok());
        }
    }

    #[test]
    fn validate_rejects_overlapping_data_segments() {
        let p = Program::from_raw_parts(
            "overlap",
            vec![Instruction::Halt],
            vec![
                DataSegment {
                    addr: VirtAddr::new(0x1000),
                    bytes: vec![0; 16],
                },
                DataSegment {
                    addr: VirtAddr::new(0x1008),
                    bytes: vec![0; 8],
                },
            ],
        );
        assert_eq!(
            p.validate(),
            Err(ValidateError::OverlappingData {
                first: 0,
                second: 1
            })
        );
        // Adjacent (touching) segments and zero-length segments are fine.
        let p = Program::from_raw_parts(
            "adjacent",
            vec![Instruction::Halt],
            vec![
                DataSegment {
                    addr: VirtAddr::new(0x1000),
                    bytes: vec![0; 8],
                },
                DataSegment {
                    addr: VirtAddr::new(0x1008),
                    bytes: vec![0; 8],
                },
                DataSegment {
                    addr: VirtAddr::new(0x1004),
                    bytes: Vec::new(),
                },
            ],
        );
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_error_messages_are_informative() {
        let cases: [(ValidateError, &str); 3] = [
            (
                ValidateError::TargetOutOfRange { at: 3, target: 9 },
                "out-of-range",
            ),
            (ValidateError::FallsOffEnd { at: 7 }, "fall off"),
            (
                ValidateError::OverlappingData {
                    first: 0,
                    second: 2,
                },
                "overlap",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn data_segments_are_kept() {
        let mut b = ProgramBuilder::new("data");
        b.data_u64(VirtAddr::new(0x1000), &[1, 2, 3]);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data_segments().len(), 1);
        assert_eq!(p.data_segments()[0].bytes.len(), 24);
    }

    #[test]
    fn inst_addr_is_monotonic() {
        let mut b = ProgramBuilder::new("addrs");
        b.nop().nop().halt();
        let p = b.build().unwrap();
        assert!(p.inst_addr(1).raw() > p.inst_addr(0).raw());
        assert_eq!(p.inst_addr(1).raw() - p.inst_addr(0).raw(), INST_BYTES);
    }

    #[test]
    fn display_lists_instructions() {
        let mut b = ProgramBuilder::new("show");
        b.li(Reg::X1, 7);
        b.halt();
        let p = b.build().unwrap();
        let text = format!("{p}");
        assert!(text.contains("program `show`"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn here_binds_at_current_position() {
        let mut b = ProgramBuilder::new("here");
        b.nop();
        let l = b.here();
        b.nop();
        b.jump(l);
        b.halt();
        let p = b.build().unwrap();
        match p.fetch(2).unwrap() {
            Instruction::Jump { target } => assert_eq!(target, 1),
            other => panic!("expected jump, got {other}"),
        }
    }
}
