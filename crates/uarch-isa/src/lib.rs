//! A small RISC-like instruction set ("µISA") used as the workload substrate
//! for the MuonTrap reproduction.
//!
//! The paper evaluates MuonTrap on ARMv8 binaries running under gem5. We have
//! no ARMv8 front end, so workloads, baselines and attack litmus tests in this
//! repository are written in this µISA instead. The ISA is deliberately small
//! but complete enough to express the behaviours the paper depends on:
//!
//! * loads, stores and atomics with computed addresses (so speculative loads
//!   can have attacker-influenced addresses),
//! * conditional branches, indirect jumps, calls and returns (so the branch
//!   predictor, BTB and RAS have something to mispredict),
//! * a cycle-counter read (so attack code can time its own accesses, which is
//!   the cache side channel itself),
//! * syscall and sandbox-entry/exit markers (the protection-domain switches
//!   MuonTrap flushes on).
//!
//! The crate also contains [`interp::Interpreter`], a purely functional
//! in-order interpreter used as a golden model: the out-of-order core in
//! `ooo-core` must produce exactly the same architectural results.
//!
//! # Example
//!
//! ```
//! use uarch_isa::prog::ProgramBuilder;
//! use uarch_isa::reg::Reg;
//! use uarch_isa::interp::Interpreter;
//!
//! // Sum the integers 0..10 into x1.
//! let mut b = ProgramBuilder::new("sum");
//! let loop_top = b.new_label();
//! b.li(Reg::X1, 0);
//! b.li(Reg::X2, 0);
//! b.bind_label(loop_top);
//! b.add(Reg::X1, Reg::X1, Reg::X2);
//! b.addi(Reg::X2, Reg::X2, 1);
//! b.blt_imm(Reg::X2, 10, loop_top);
//! b.halt();
//! let program = b.build().expect("label resolution succeeds");
//!
//! let mut interp = Interpreter::new(&program);
//! let result = interp.run(10_000).expect("program halts");
//! assert_eq!(result.regs.read(Reg::X1), 45);
//! ```

#![forbid(unsafe_code)]

pub mod cfg;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod prog;
pub mod reg;

pub use inst::{AluOp, BranchCond, FpuOp, InstClass, Instruction, MemWidth};
pub use interp::Interpreter;
pub use mem::SparseMemory;
pub use prog::{Program, ProgramBuilder};
pub use reg::{Reg, RegFile};
