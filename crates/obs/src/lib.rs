//! The observability layer: a dependency-free telemetry core for fleet runs.
//!
//! A multi-hour sharded run is only operable if its progress is visible
//! without attaching a debugger to every shard. This crate supplies the
//! pieces the rest of the workspace composes into that visibility:
//!
//! * [`metrics`] — a process-wide [`MetricsRegistry`]
//!   of counters, gauges and histograms with labeled series. The simulator
//!   crates (`simsys::runner`, `simsys::store`, `simsys::session`) increment
//!   it at every interesting point — cells claimed/completed/cached/stolen,
//!   lease heartbeats and steals, store read/write/GC bytes, per-figure
//!   cells/sec — and snapshots emit as JSONL through `simkit::json`, the
//!   same dependency-free serialisation the rest of the workspace uses.
//! * [`clock`] — monotonic, epoch-anchored millisecond timestamps. Run
//!   events from different shards must be comparable across processes, yet
//!   a single shard's stream must never step backwards; [`clock::now_ms`]
//!   guarantees both.
//! * [`rate`] — the EWMA the dashboard's ETA is derived from, with the
//!   NaN/zero-rate edge cases handled once, here, instead of in every
//!   renderer.
//! * [`dash`] — plain-text dashboard primitives (progress bars, duration
//!   and rate formatting) used by `merge --watch`. Pure string generation:
//!   deterministic output for golden tests, no terminal library.
//!
//! Everything here is plain `std`; the crate depends only on `simkit` (for
//! JSON), keeping the workspace's offline, zero-external-deps build intact.

#![forbid(unsafe_code)]

pub mod clock;
pub mod dash;
pub mod metrics;
pub mod rate;

pub use clock::{now_ms, MonoClock};
pub use metrics::{global, MetricsRegistry, MetricsSnapshot, SeriesSnapshot, SeriesValue};
pub use rate::{eta_ms, Ewma};
