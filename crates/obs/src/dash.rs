//! Plain-text dashboard primitives: progress bars and human-readable
//! numbers.
//!
//! Everything here is pure string generation — no terminal control codes, no
//! cursor movement — so a rendered frame is byte-deterministic given its
//! inputs and golden-testable. The watch loop in the `merge` binary owns the
//! one piece of terminal state (clearing the screen between frames); these
//! helpers only ever produce the frame body.
//!
//! Every formatter accepts the degenerate inputs a live fleet actually
//! produces (NaN fractions before the first event, zero rates, empty logs)
//! and renders a placeholder instead of propagating them.

/// A fixed-width progress bar, e.g. `[#####..........]`. Non-finite
/// fractions render as empty; fractions clamp into `[0, 1]`.
pub fn progress_bar(fraction: f64, width: usize) -> String {
    let fraction = if fraction.is_finite() {
        fraction.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (fraction * width as f64).round() as usize;
    let filled = filled.min(width);
    let mut bar = String::with_capacity(width + 2);
    bar.push('[');
    for _ in 0..filled {
        bar.push('#');
    }
    for _ in filled..width {
        bar.push('.');
    }
    bar.push(']');
    bar
}

/// A duration in short human units: `"0s"`, `"42s"`, `"3m04s"`, `"2h07m"`.
pub fn fmt_duration_ms(ms: u64) -> String {
    let secs = ms / 1000;
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3600 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

/// A per-second rate: `"1.25/s"`, or `"-"` when unknown/non-finite.
pub fn fmt_rate_per_sec(rate: Option<f64>) -> String {
    match rate {
        Some(r) if r.is_finite() && r >= 0.0 => format!("{r:.2}/s"),
        _ => "-".to_string(),
    }
}

/// A percentage with no decimals: `"67%"`, or `"-"` for non-finite input.
pub fn fmt_percent(fraction: f64) -> String {
    if fraction.is_finite() {
        format!("{:.0}%", fraction.clamp(0.0, 1.0) * 100.0)
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_are_fixed_width_and_clamped() {
        assert_eq!(progress_bar(0.0, 10), "[..........]");
        assert_eq!(progress_bar(0.5, 10), "[#####.....]");
        assert_eq!(progress_bar(1.0, 10), "[##########]");
        assert_eq!(progress_bar(7.5, 10), "[##########]", "overshoot clamps");
        assert_eq!(progress_bar(-3.0, 10), "[..........]");
        assert_eq!(progress_bar(f64::NAN, 10), "[..........]");
        assert_eq!(
            progress_bar(f64::INFINITY, 4),
            "[....]",
            "non-finite is unknown, not full"
        );
    }

    #[test]
    fn durations_pick_sensible_units() {
        assert_eq!(fmt_duration_ms(0), "0s");
        assert_eq!(fmt_duration_ms(999), "0s");
        assert_eq!(fmt_duration_ms(42_000), "42s");
        assert_eq!(fmt_duration_ms(184_000), "3m04s");
        assert_eq!(fmt_duration_ms(7_620_000), "2h07m");
    }

    #[test]
    fn rates_and_percentages_placeholder_on_bad_input() {
        assert_eq!(fmt_rate_per_sec(Some(1.25)), "1.25/s");
        assert_eq!(fmt_rate_per_sec(Some(f64::NAN)), "-");
        assert_eq!(fmt_rate_per_sec(Some(-1.0)), "-");
        assert_eq!(fmt_rate_per_sec(None), "-");
        assert_eq!(fmt_percent(0.666), "67%");
        assert_eq!(fmt_percent(f64::NAN), "-");
        assert_eq!(fmt_percent(2.0), "100%");
    }
}
