//! Rate smoothing and ETA derivation, with the degenerate cases handled
//! once.
//!
//! A live dashboard's ETA is `remaining / rate`, and both operands misbehave
//! at the edges: the first sample has no history, a stalled fleet has rate
//! zero, and a clock hiccup can hand the sampler a non-finite instantaneous
//! rate. [`Ewma`] and [`eta_ms`] absorb all of that — an ETA either exists
//! and is finite, or is `None`; `NaN` never escapes into a rendered frame.

/// An exponentially weighted moving average over `f64` samples.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An EWMA with smoothing factor `alpha` (clamped into `(0, 1]`; higher
    /// tracks faster). `1.0` degrades to "latest sample".
    pub fn new(alpha: f64) -> Ewma {
        let alpha = if alpha.is_finite() {
            alpha.clamp(0.05, 1.0)
        } else {
            1.0
        };
        Ewma { alpha, value: None }
    }

    /// Folds in one sample and returns the new average. Non-finite samples
    /// are ignored (the previous average is returned unchanged).
    pub fn update(&mut self, sample: f64) -> Option<f64> {
        if sample.is_finite() {
            self.value = Some(match self.value {
                None => sample,
                Some(current) => current + self.alpha * (sample - current),
            });
        }
        self.value
    }

    /// The current average, once at least one finite sample has arrived.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// The ETA for `remaining` units at `units_per_ms`, in milliseconds.
/// `None` whenever the division would be meaningless: a non-finite or
/// non-positive rate, or non-finite/negative remaining work.
pub fn eta_ms(remaining: f64, units_per_ms: f64) -> Option<u64> {
    if !remaining.is_finite() || remaining < 0.0 {
        return None;
    }
    if !units_per_ms.is_finite() || units_per_ms <= 0.0 {
        return None;
    }
    let eta = remaining / units_per_ms;
    if eta.is_finite() {
        Some(eta.round() as u64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_the_average() {
        let mut ewma = Ewma::new(0.5);
        assert_eq!(ewma.value(), None);
        assert_eq!(ewma.update(10.0), Some(10.0));
        assert_eq!(ewma.update(20.0), Some(15.0));
        assert_eq!(ewma.update(15.0), Some(15.0));
    }

    #[test]
    fn non_finite_samples_and_alphas_never_poison_the_average() {
        let mut ewma = Ewma::new(f64::NAN);
        ewma.update(5.0);
        ewma.update(f64::NAN);
        ewma.update(f64::INFINITY);
        ewma.update(f64::NEG_INFINITY);
        let value = ewma.value().unwrap();
        assert!(value.is_finite());
        assert_eq!(value, 5.0);
    }

    #[test]
    fn eta_exists_only_for_positive_finite_rates() {
        assert_eq!(eta_ms(100.0, 0.5), Some(200));
        assert_eq!(eta_ms(0.0, 0.5), Some(0));
        assert_eq!(eta_ms(100.0, 0.0), None, "stalled fleet has no ETA");
        assert_eq!(eta_ms(100.0, -1.0), None);
        assert_eq!(eta_ms(100.0, f64::NAN), None);
        assert_eq!(eta_ms(f64::NAN, 1.0), None);
        assert_eq!(eta_ms(f64::INFINITY, 1.0), None);
        assert_eq!(eta_ms(-5.0, 1.0), None);
    }
}
