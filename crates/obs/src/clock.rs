//! Monotonic, epoch-anchored millisecond timestamps.
//!
//! Telemetry needs two properties the standard clocks give separately:
//! timestamps from *different processes* must be comparable (a watcher
//! subtracts a shard's last heartbeat time from its own idea of "now" to
//! detect a stall), and timestamps within *one* stream must never step
//! backwards (an NTP adjustment mid-run must not make a heartbeat look
//! older than its predecessor). [`MonoClock`] anchors [`std::time::Instant`]
//! — which is monotonic but process-local — to the Unix epoch once at
//! construction, then derives every reading from the monotonic elapsed
//! time, giving epoch-comparable values that only move forward.

use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A monotonic clock anchored to the Unix epoch at construction.
#[derive(Debug, Clone)]
pub struct MonoClock {
    base_unix_ms: u64,
    origin: Instant,
}

impl MonoClock {
    /// A clock anchored to the wall clock *now*; all later readings are
    /// `now + monotonic elapsed`, immune to wall-clock adjustments.
    pub fn new() -> MonoClock {
        let base_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        MonoClock {
            base_unix_ms,
            origin: Instant::now(),
        }
    }

    /// Milliseconds since the Unix epoch, guaranteed non-decreasing across
    /// calls on one clock.
    pub fn now_ms(&self) -> u64 {
        self.base_unix_ms
            .saturating_add(self.origin.elapsed().as_millis() as u64)
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        MonoClock::new()
    }
}

/// The process-wide clock every telemetry point stamps with, so all series
/// and run events within one process share a single monotonic time base.
pub fn now_ms() -> u64 {
    static CLOCK: OnceLock<MonoClock> = OnceLock::new();
    CLOCK.get_or_init(MonoClock::new).now_ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_monotonic_and_epoch_anchored() {
        let clock = MonoClock::new();
        let mut last = clock.now_ms();
        // Sanity: anchored near the wall clock (2020-01-01 in ms).
        assert!(last > 1_577_836_800_000, "clock is epoch-anchored: {last}");
        for _ in 0..1000 {
            let now = clock.now_ms();
            assert!(now >= last, "monotonic: {now} >= {last}");
            last = now;
        }
    }

    #[test]
    fn global_clock_is_shared_and_monotonic() {
        let a = now_ms();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = now_ms();
        assert!(b > a, "global clock advances: {a} -> {b}");
    }
}
