//! The metrics registry: labeled counter/gauge/histogram series with JSONL
//! snapshot emission.
//!
//! Instrumentation points call [`MetricsRegistry::inc`],
//! [`set_gauge`](MetricsRegistry::set_gauge) or
//! [`observe`](MetricsRegistry::observe) with a metric name and a (possibly
//! empty) label set; the registry keeps one series per distinct
//! `(name, labels)` pair, in sorted order so snapshots are deterministic.
//! [`snapshot`](MetricsRegistry::snapshot) captures the whole registry with
//! a monotonic [`clock`](crate::clock) timestamp, and
//! [`write_snapshot_jsonl`](MetricsRegistry::write_snapshot_jsonl) appends
//! it as one compact-JSON line — the same streaming shape the runner's
//! event logs use, so the same tail-and-fold tooling applies.
//!
//! A series' kind is fixed by its first update: a later update of a
//! different kind on the same key is dropped rather than silently
//! reinterpreting the series. Gauge updates with non-finite values are
//! dropped too — telemetry must never be the thing that injects a NaN into
//! a dashboard.
//!
//! The per-process [`global`] registry is what the simulator crates
//! instrument; tests construct private registries.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Mutex, OnceLock};

use simkit::json::{FromJson, Json, JsonError, ToJson};

use crate::clock::MonoClock;

/// Histogram bucket boundaries are powers of two: bucket `i` counts samples
/// with `value < 2^i` (and at least `2^(i-1)` for `i > 0`). 32 buckets cover
/// every plausible millisecond/byte magnitude.
const HISTOGRAM_BUCKETS: usize = 32;

/// One series' current value.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// A monotonically increasing sum.
    Counter(u64),
    /// A last-write-wins scalar (always finite).
    Gauge(f64),
    /// Power-of-two bucket counts plus count/sum/max.
    Histogram {
        /// `buckets[i]` counts samples in `[2^(i-1), 2^i)`; bucket 0 counts
        /// only zero. Samples beyond the last bucket land in it.
        buckets: Vec<u64>,
        /// Total samples observed.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Largest sample observed.
        max: u64,
    },
}

impl SeriesValue {
    fn kind_name(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) => "counter",
            SeriesValue::Gauge(_) => "gauge",
            SeriesValue::Histogram { .. } => "histogram",
        }
    }
}

/// A registry of labeled metric series. Cheap to share: all methods take
/// `&self` (the map lives behind a mutex), so one registry instruments any
/// number of worker threads.
#[derive(Debug)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<SeriesKey, SeriesValue>>,
    clock: MonoClock,
}

/// A series identity: metric name plus its sorted label pairs.
type SeriesKey = (String, Vec<(String, String)>);

impl MetricsRegistry {
    /// An empty registry with its own monotonic clock.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            series: Mutex::new(BTreeMap::new()),
            clock: MonoClock::new(),
        }
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        (name.to_string(), labels)
    }

    /// Adds `delta` to the counter `(name, labels)`, creating it at zero.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut series = self.series.lock().unwrap();
        // On kind mismatch the sample is dropped, never reinterpreted.
        if let SeriesValue::Counter(total) = series
            .entry(Self::key(name, labels))
            .or_insert(SeriesValue::Counter(0))
        {
            *total = total.saturating_add(delta);
        }
    }

    /// Sets the gauge `(name, labels)` to `value`. Non-finite values are
    /// dropped so downstream ETA/rate math stays NaN-free by construction.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut series = self.series.lock().unwrap();
        if let SeriesValue::Gauge(current) = series
            .entry(Self::key(name, labels))
            .or_insert(SeriesValue::Gauge(value))
        {
            *current = value;
        }
    }

    /// Records one sample into the histogram `(name, labels)`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut series = self.series.lock().unwrap();
        if let SeriesValue::Histogram {
            buckets,
            count,
            sum,
            max,
        } = series
            .entry(Self::key(name, labels))
            .or_insert(SeriesValue::Histogram {
                buckets: vec![0; HISTOGRAM_BUCKETS],
                count: 0,
                sum: 0,
                max: 0,
            })
        {
            let bucket = (64 - u64::leading_zeros(value) as usize).min(buckets.len() - 1);
            buckets[bucket] += 1;
            *count += 1;
            *sum = sum.saturating_add(value);
            *max = (*max).max(value);
        }
    }

    /// The counter's current total (zero when absent), for tests and
    /// dashboards reading back their own process.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.series.lock().unwrap().get(&Self::key(name, labels)) {
            Some(SeriesValue::Counter(total)) => *total,
            _ => 0,
        }
    }

    /// The gauge's current value, when present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.series.lock().unwrap().get(&Self::key(name, labels)) {
            Some(SeriesValue::Gauge(value)) => Some(*value),
            _ => None,
        }
    }

    /// Captures every series, in sorted `(name, labels)` order, stamped with
    /// this registry's monotonic clock.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self.series.lock().unwrap();
        MetricsSnapshot {
            t_ms: self.clock.now_ms(),
            series: series
                .iter()
                .map(|((name, labels), value)| SeriesSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: value.clone(),
                })
                .collect(),
        }
    }

    /// Appends one snapshot as a compact-JSON line (the JSONL emission
    /// shape; call periodically to stream a process' telemetry to a file).
    ///
    /// # Errors
    /// Returns the I/O error if the line cannot be written.
    pub fn write_snapshot_jsonl(&self, sink: &mut dyn Write) -> io::Result<()> {
        writeln!(sink, "{}", self.snapshot().to_json().to_string_compact())
    }

    /// Clears every series (tests that share the [`global`] registry).
    pub fn reset(&self) {
        self.series.lock().unwrap().clear();
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// The process-wide registry the simulator crates instrument.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// One series inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric name, e.g. `"store.read_bytes"`.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SeriesValue,
}

/// A point-in-time capture of a whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic, epoch-anchored capture time (milliseconds).
    pub t_ms: u64,
    /// Every series, sorted by `(name, labels)`.
    pub series: Vec<SeriesSnapshot>,
}

impl ToJson for SeriesSnapshot {
    fn to_json(&self) -> Json {
        let labels = Json::Obj(
            self.labels
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let mut fields = vec![
            ("name", Json::Str(self.name.clone())),
            ("labels", labels),
            ("kind", Json::Str(self.value.kind_name().to_string())),
        ];
        match &self.value {
            SeriesValue::Counter(total) => fields.push(("value", Json::UInt(*total))),
            SeriesValue::Gauge(value) => fields.push(("value", Json::Num(*value))),
            SeriesValue::Histogram {
                buckets,
                count,
                sum,
                max,
            } => {
                fields.push((
                    "buckets",
                    Json::Arr(buckets.iter().map(|b| Json::UInt(*b)).collect()),
                ));
                fields.push(("count", Json::UInt(*count)));
                fields.push(("sum", Json::UInt(*sum)));
                fields.push(("max", Json::UInt(*max)));
            }
        }
        Json::obj(fields)
    }
}

impl FromJson for SeriesSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::missing("name"))?
            .to_string();
        let labels = match json.get("labels") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or_else(|| JsonError::missing("labels"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(JsonError::missing("labels")),
        };
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::missing("kind"))?;
        let value = match kind {
            "counter" => SeriesValue::Counter(
                json.get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| JsonError::missing("value"))?,
            ),
            "gauge" => SeriesValue::Gauge(
                json.get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| JsonError::missing("value"))?,
            ),
            "histogram" => SeriesValue::Histogram {
                buckets: json
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| JsonError::missing("buckets"))?
                    .iter()
                    .map(|b| b.as_u64().ok_or_else(|| JsonError::missing("buckets")))
                    .collect::<Result<Vec<_>, _>>()?,
                count: json
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| JsonError::missing("count"))?,
                sum: json
                    .get("sum")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| JsonError::missing("sum"))?,
                max: json
                    .get("max")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| JsonError::missing("max"))?,
            },
            _ => return Err(JsonError::missing("kind")),
        };
        Ok(SeriesSnapshot {
            name,
            labels,
            value,
        })
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("t_ms", Json::UInt(self.t_ms)),
            (
                "series",
                Json::Arr(self.series.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for MetricsSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(MetricsSnapshot {
            t_ms: json
                .get("t_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing("t_ms"))?,
            series: json
                .get("series")
                .and_then(Json::as_arr)
                .ok_or_else(|| JsonError::missing("series"))?
                .iter()
                .map(SeriesSnapshot::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::json;

    #[test]
    fn counters_accumulate_per_label_set() {
        let registry = MetricsRegistry::new();
        registry.inc("cells", &[("figure", "fig5")], 2);
        registry.inc("cells", &[("figure", "fig5")], 3);
        registry.inc("cells", &[("figure", "fig6")], 1);
        registry.inc("cells", &[], 10);
        assert_eq!(registry.counter("cells", &[("figure", "fig5")]), 5);
        assert_eq!(registry.counter("cells", &[("figure", "fig6")]), 1);
        assert_eq!(registry.counter("cells", &[]), 10);
        assert_eq!(registry.counter("absent", &[]), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = MetricsRegistry::new();
        registry.inc("m", &[("a", "1"), ("b", "2")], 1);
        registry.inc("m", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(registry.counter("m", &[("b", "2"), ("a", "1")]), 2);
        assert_eq!(registry.snapshot().series.len(), 1);
    }

    #[test]
    fn gauges_drop_non_finite_updates() {
        let registry = MetricsRegistry::new();
        registry.set_gauge("rate", &[], 1.5);
        registry.set_gauge("rate", &[], f64::NAN);
        registry.set_gauge("rate", &[], f64::INFINITY);
        assert_eq!(registry.gauge("rate", &[]), Some(1.5));
        registry.set_gauge("rate", &[], 2.5);
        assert_eq!(registry.gauge("rate", &[]), Some(2.5));
    }

    #[test]
    fn kind_is_fixed_by_first_update() {
        let registry = MetricsRegistry::new();
        registry.inc("x", &[], 1);
        registry.set_gauge("x", &[], 9.0);
        registry.observe("x", &[], 9);
        assert_eq!(registry.counter("x", &[]), 1, "counter stays a counter");
        assert_eq!(registry.gauge("x", &[]), None);
    }

    #[test]
    fn histograms_bucket_by_magnitude() {
        let registry = MetricsRegistry::new();
        for sample in [0u64, 1, 2, 3, 900, 1100] {
            registry.observe("lat_ms", &[], sample);
        }
        let snapshot = registry.snapshot();
        let series = &snapshot.series[0];
        let SeriesValue::Histogram {
            buckets,
            count,
            sum,
            max,
        } = &series.value
        else {
            panic!("histogram expected");
        };
        assert_eq!(*count, 6);
        assert_eq!(*sum, 2006);
        assert_eq!(*max, 1100);
        assert_eq!(buckets.iter().sum::<u64>(), 6);
        assert_eq!(buckets[0], 1, "only 0 lands in bucket 0");
        assert_eq!(buckets[1], 1, "1 lands in [1,2)");
        assert_eq!(buckets[2], 2, "2 and 3 land in [2,4)");
        assert_eq!(buckets[10], 1, "900 lands in [512,1024)");
        assert_eq!(buckets[11], 1, "1100 lands in [1024,2048)");
    }

    #[test]
    fn snapshots_are_sorted_and_round_trip_through_json() {
        let registry = MetricsRegistry::new();
        registry.inc("z.counter", &[], 7);
        registry.set_gauge("a.gauge", &[("figure", "fig3")], 0.25);
        registry.observe("m.hist", &[], 42);
        let snapshot = registry.snapshot();
        assert!(snapshot.t_ms > 0);
        let names: Vec<&str> = snapshot.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.gauge", "m.hist", "z.counter"], "sorted order");
        let line = snapshot.to_json().to_string_compact();
        let back = MetricsSnapshot::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, snapshot, "snapshot survives the JSONL round trip");
    }

    #[test]
    fn jsonl_emission_appends_one_parseable_line_per_snapshot() {
        let registry = MetricsRegistry::new();
        registry.inc("events", &[], 1);
        let mut sink = Vec::new();
        registry.write_snapshot_jsonl(&mut sink).unwrap();
        registry.inc("events", &[], 1);
        registry.write_snapshot_jsonl(&mut sink).unwrap();
        let text = String::from_utf8(sink).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let snap = MetricsSnapshot::from_json(&json::parse(line).unwrap()).unwrap();
            assert_eq!(snap.series[0].name, "events");
        }
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        registry.inc("parallel", &[], 1);
                    }
                });
            }
        });
        assert_eq!(registry.counter("parallel", &[]), 400);
    }
}
