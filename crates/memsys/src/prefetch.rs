//! Stride prefetcher.
//!
//! Table 1 attaches a stride prefetcher to the shared L2. The prefetcher is
//! trained on (pc, line) pairs and, once it has seen the same stride twice for
//! a PC, emits prefetch candidates `degree` strides ahead.
//!
//! MuonTrap's §4.6 requires that training happens only on the *committed*
//! instruction stream; in the defended configurations the defense layer simply
//! calls [`StridePrefetcher::train`] at commit time instead of at access time.
//! The prefetcher itself is identical in both cases (attack 5 is prevented by
//! when it is trained, not by how it predicts).

use simkit::addr::LineAddr;

/// Number of PC-indexed entries in the prefetcher's reference prediction table.
const TABLE_ENTRIES: usize = 256;

/// Confidence threshold above which prefetches are issued.
const CONFIDENCE_THRESHOLD: i8 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u64,
    last_line: u64,
    stride: i64,
    confidence: i8,
    valid: bool,
}

/// A PC-indexed stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: usize,
    trained: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher issuing `degree` lines ahead; `degree == 0`
    /// disables prefetching entirely.
    pub fn new(degree: usize) -> Self {
        StridePrefetcher {
            table: vec![StrideEntry::default(); TABLE_ENTRIES],
            degree,
            trained: 0,
            issued: 0,
        }
    }

    /// Number of training observations so far.
    pub fn trained(&self) -> u64 {
        self.trained
    }

    /// Number of prefetch candidates issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Whether the prefetcher is enabled.
    pub fn is_enabled(&self) -> bool {
        self.degree > 0
    }

    /// Trains the prefetcher with an access by instruction `pc` to `line` and
    /// returns the prefetch candidates it wants fetched (empty when cold, when
    /// the stride is unstable, or when disabled).
    ///
    /// The candidates come back as an allocation-free [`PrefetchCandidates`]
    /// iterator — training runs on every (committed) memory access, so a
    /// `Vec` per call would be an allocation on the simulator's hottest path.
    pub fn train(&mut self, pc: u64, line: LineAddr) -> PrefetchCandidates {
        if self.degree == 0 {
            return PrefetchCandidates::empty();
        }
        self.trained += 1;
        let idx = (pc as usize) % TABLE_ENTRIES;
        let entry = &mut self.table[idx];

        if !entry.valid || entry.tag != pc {
            *entry = StrideEntry {
                tag: pc,
                last_line: line.raw(),
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return PrefetchCandidates::empty();
        }

        let observed = line.raw() as i64 - entry.last_line as i64;
        if observed == entry.stride && observed != 0 {
            entry.confidence = (entry.confidence + 1).min(4);
        } else {
            entry.confidence = (entry.confidence - 1).max(0);
            entry.stride = observed;
        }
        entry.last_line = line.raw();

        if entry.confidence >= CONFIDENCE_THRESHOLD && entry.stride != 0 {
            let candidates = PrefetchCandidates {
                next: line.raw() as i64 + entry.stride,
                stride: entry.stride,
                remaining: self.degree,
            };
            // Count exactly the candidates the iterator will yield (negative
            // targets are skipped, matching the old collect-and-filter).
            // `PrefetchCandidates` is `Copy`, so counting consumes a copy.
            self.issued += candidates.count() as u64;
            candidates
        } else {
            PrefetchCandidates::empty()
        }
    }

    /// Forgets all training state (e.g. across a full system reset).
    pub fn reset(&mut self) {
        for e in &mut self.table {
            *e = StrideEntry::default();
        }
    }
}

/// The prefetch candidates one [`StridePrefetcher::train`] call produced:
/// up to `remaining` lines spaced `stride` apart, skipping any that would
/// fall below address zero. A `Copy`-sized iterator, so the hot path never
/// allocates for prefetching.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchCandidates {
    next: i64,
    stride: i64,
    remaining: usize,
}

impl PrefetchCandidates {
    /// An iterator yielding nothing (cold entry, unstable stride, disabled).
    pub fn empty() -> Self {
        PrefetchCandidates {
            next: 0,
            stride: 0,
            remaining: 0,
        }
    }

    /// Whether no candidates will be yielded.
    pub fn is_empty(&self) -> bool {
        (*self).count() == 0
    }
}

impl Iterator for PrefetchCandidates {
    type Item = LineAddr;

    fn next(&mut self) -> Option<LineAddr> {
        while self.remaining > 0 {
            let target = self.next;
            self.next += self.stride;
            self.remaining -= 1;
            if target >= 0 {
                return Some(LineAddr::new(target as u64));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stride_triggers_prefetches() {
        let mut p = StridePrefetcher::new(2);
        let pc = 0x400;
        let mut total = Vec::new();
        for i in 0..6u64 {
            total = p.train(pc, LineAddr::new(10 + i * 3)).collect();
        }
        assert_eq!(
            total,
            vec![LineAddr::new(10 + 5 * 3 + 3), LineAddr::new(10 + 5 * 3 + 6)]
        );
        assert!(p.issued() > 0);
    }

    #[test]
    fn unit_stride_streams_are_detected() {
        let mut p = StridePrefetcher::new(1);
        let pc = 0x88;
        let mut out = Vec::new();
        for i in 0..5u64 {
            out = p.train(pc, LineAddr::new(i)).collect();
        }
        assert_eq!(out, vec![LineAddr::new(5)]);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = StridePrefetcher::new(2);
        let pc = 0x77;
        let lines = [5u64, 100, 3, 77, 12, 9000, 4];
        let mut issued_any = false;
        for l in lines {
            issued_any |= !p.train(pc, LineAddr::new(l)).is_empty();
        }
        assert!(
            !issued_any,
            "irregular access pattern must not trigger prefetching"
        );
    }

    #[test]
    fn zero_degree_disables_prefetching() {
        let mut p = StridePrefetcher::new(0);
        assert!(!p.is_enabled());
        for i in 0..10u64 {
            assert!(p.train(0x1, LineAddr::new(i)).is_empty());
        }
        assert_eq!(p.trained(), 0);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut p = StridePrefetcher::new(1);
        // Interleave two streams with different strides on different PCs.
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..6u64 {
            out_a = p.train(0x10, LineAddr::new(i * 2)).collect();
            out_b = p.train(0x20, LineAddr::new(1000 + i * 5)).collect();
        }
        assert_eq!(out_a, vec![LineAddr::new(12)]);
        assert_eq!(out_b, vec![LineAddr::new(1030)]);
    }

    #[test]
    fn reset_clears_training() {
        let mut p = StridePrefetcher::new(1);
        for i in 0..5u64 {
            p.train(0x10, LineAddr::new(i));
        }
        p.reset();
        assert!(p.train(0x10, LineAddr::new(5)).is_empty());
    }

    #[test]
    fn negative_strides_are_followed() {
        let mut p = StridePrefetcher::new(1);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out = p.train(0x5, LineAddr::new(1000 - i * 4)).collect();
        }
        assert_eq!(out, vec![LineAddr::new(1000 - 5 * 4 - 4)]);
    }
}
