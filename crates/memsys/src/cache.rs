//! Generic set-associative cache arrays.
//!
//! [`CacheArray`] models the tag array of a cache: which lines are present, in
//! which coherence state, with LRU replacement inside each set. It is generic
//! over a per-line metadata type so the MuonTrap filter cache can attach its
//! committed bit, virtual tag and fill-level tag without this crate knowing
//! about them.

use simkit::addr::LineAddr;
use simkit::config::CacheConfig;

use crate::mesi::MesiState;

/// One line in a [`CacheArray`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLine<M> {
    /// The physical line address stored here.
    pub addr: LineAddr,
    /// Coherence state (Invalid lines are treated as empty slots).
    pub state: MesiState,
    /// Dirty bit (tracked separately from MESI for the shared L2, which does
    /// not participate in MESI as an owner).
    pub dirty: bool,
    /// LRU timestamp: larger means more recently used.
    pub lru: u64,
    /// Caller-defined metadata (e.g. the filter cache's committed bit).
    pub meta: M,
}

/// The result of inserting a line into a set.
#[derive(Debug, Clone, PartialEq)]
pub struct Eviction<M> {
    /// The line that was evicted to make room, if a valid line had to go.
    pub victim: Option<CacheLine<M>>,
}

/// A set-associative cache tag array with per-set LRU replacement.
///
/// The array is indexed by physical line address. Lookups update LRU;
/// [`CacheArray::peek`] does not, and exists so coherence probes stay
/// side-effect free.
#[derive(Debug, Clone)]
pub struct CacheArray<M> {
    sets: Vec<Vec<CacheLine<M>>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<M: Default + Clone> CacheArray<M> {
    /// Creates a cache array from a configuration and the line size.
    ///
    /// # Panics
    /// Panics if the configuration describes fewer than one line.
    pub fn new(config: &CacheConfig, line_bytes: u64) -> Self {
        let lines = config.num_lines(line_bytes);
        assert!(lines >= 1, "cache must hold at least one line");
        let ways = config.ways.min(lines);
        let num_sets = (lines / ways).max(1);
        CacheArray {
            sets: (0..num_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a cache array with explicit geometry (used in tests and sweeps).
    pub fn with_geometry(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets >= 1 && ways >= 1, "geometry must be at least 1x1");
        CacheArray {
            sets: (0..num_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.state.can_read()).count())
            .sum()
    }

    /// Hits recorded by [`CacheArray::lookup`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`CacheArray::lookup`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        addr.set_index(self.sets.len())
    }

    /// Looks up `addr`, updating LRU and hit/miss counters. Returns a mutable
    /// reference to the line if present and readable.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<&mut CacheLine<M>> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if let Some(line) = set
            .iter_mut()
            .find(|l| l.addr == addr && l.state.can_read())
        {
            line.lru = tick;
            self.hits += 1;
            Some(line)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Returns the line for `addr` without updating LRU or counters.
    pub fn peek(&self, addr: LineAddr) -> Option<&CacheLine<M>> {
        let idx = self.set_index(addr);
        self.sets[idx]
            .iter()
            .find(|l| l.addr == addr && l.state.can_read())
    }

    /// Returns a mutable reference without updating LRU or counters.
    pub fn peek_mut(&mut self, addr: LineAddr) -> Option<&mut CacheLine<M>> {
        let idx = self.set_index(addr);
        self.sets[idx]
            .iter_mut()
            .find(|l| l.addr == addr && l.state.can_read())
    }

    /// Whether `addr` is present and readable.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts `addr` with the given state and metadata, evicting the LRU line
    /// of the set if it is full. If the line is already present its state and
    /// metadata are overwritten instead (no duplicate entries are created).
    pub fn insert(&mut self, addr: LineAddr, state: MesiState, meta: M) -> Eviction<M> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(addr);
        let ways = self.ways;
        let set = &mut self.sets[idx];

        if let Some(line) = set
            .iter_mut()
            .find(|l| l.addr == addr && l.state.can_read())
        {
            line.state = state;
            line.meta = meta;
            line.lru = tick;
            return Eviction { victim: None };
        }

        // Reuse an invalid slot if one exists.
        if let Some(slot) = set.iter_mut().find(|l| !l.state.can_read()) {
            *slot = CacheLine {
                addr,
                state,
                dirty: false,
                lru: tick,
                meta,
            };
            return Eviction { victim: None };
        }

        if set.len() < ways {
            set.push(CacheLine {
                addr,
                state,
                dirty: false,
                lru: tick,
                meta,
            });
            return Eviction { victim: None };
        }

        // Evict the least recently used line.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("non-empty set");
        let victim = std::mem::replace(
            &mut set[victim_idx],
            CacheLine {
                addr,
                state,
                dirty: false,
                lru: tick,
                meta,
            },
        );
        Eviction {
            victim: Some(victim),
        }
    }

    /// Invalidates `addr` if present, returning the removed line.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheLine<M>> {
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        let pos = set
            .iter()
            .position(|l| l.addr == addr && l.state.can_read())?;
        let mut line = set.remove(pos);
        line.state = MesiState::Invalid;
        Some(line)
    }

    /// Invalidates every line, returning how many were valid. This is the
    /// single-cycle "clear every valid bit" operation of §4.3.
    pub fn invalidate_all(&mut self) -> usize {
        let mut count = 0;
        for set in &mut self.sets {
            count += set.iter().filter(|l| l.state.can_read()).count();
            set.clear();
        }
        count
    }

    /// Applies `f` to every valid line.
    pub fn for_each_valid(&self, mut f: impl FnMut(&CacheLine<M>)) {
        for set in &self.sets {
            for line in set.iter().filter(|l| l.state.can_read()) {
                f(line);
            }
        }
    }

    /// Applies `f` to every valid line mutably.
    pub fn for_each_valid_mut(&mut self, mut f: impl FnMut(&mut CacheLine<M>)) {
        for set in &mut self.sets {
            for line in set.iter_mut().filter(|l| l.state.can_read()) {
                f(line);
            }
        }
    }

    /// Collects the addresses of all valid lines (useful in tests).
    pub fn resident_lines(&self) -> Vec<LineAddr> {
        let mut lines = Vec::new();
        self.for_each_valid(|l| lines.push(l.addr));
        lines.sort_unstable();
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::config::CacheConfig;

    fn small_cache() -> CacheArray<()> {
        // 4 sets x 2 ways of 64-byte lines = 512 bytes.
        CacheArray::new(&CacheConfig::new(512, 2, 1, 4), 64)
    }

    #[test]
    fn geometry_from_config() {
        let c = small_cache();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn fully_associative_when_ways_exceed_lines() {
        let c: CacheArray<()> = CacheArray::new(&CacheConfig::new(256, 64, 1, 4), 64);
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c = small_cache();
        c.insert(LineAddr::new(12), MesiState::Shared, ());
        assert!(c.lookup(LineAddr::new(12)).is_some());
        assert!(c.lookup(LineAddr::new(13)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_picks_least_recently_used() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways available.
        c.insert(LineAddr::new(0), MesiState::Shared, ());
        c.insert(LineAddr::new(4), MesiState::Shared, ());
        // Touch line 0 so line 4 becomes LRU.
        assert!(c.lookup(LineAddr::new(0)).is_some());
        let ev = c.insert(LineAddr::new(8), MesiState::Shared, ());
        assert_eq!(
            ev.victim.expect("one line must be evicted").addr,
            LineAddr::new(4)
        );
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(8)));
        assert!(!c.contains(LineAddr::new(4)));
    }

    #[test]
    fn reinserting_existing_line_does_not_duplicate() {
        let mut c = small_cache();
        c.insert(LineAddr::new(3), MesiState::Shared, ());
        c.insert(LineAddr::new(3), MesiState::Modified, ());
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.peek(LineAddr::new(3)).unwrap().state, MesiState::Modified);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.insert(LineAddr::new(5), MesiState::Exclusive, ());
        let removed = c.invalidate(LineAddr::new(5)).expect("line was present");
        assert_eq!(removed.addr, LineAddr::new(5));
        assert!(!c.contains(LineAddr::new(5)));
        assert!(c.invalidate(LineAddr::new(5)).is_none());
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut c = small_cache();
        for i in 0..8 {
            c.insert(LineAddr::new(i), MesiState::Shared, ());
        }
        assert_eq!(c.occupancy(), 8);
        assert_eq!(c.invalidate_all(), 8);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn peek_does_not_disturb_lru_or_counters() {
        let mut c = small_cache();
        c.insert(LineAddr::new(0), MesiState::Shared, ());
        c.insert(LineAddr::new(4), MesiState::Shared, ());
        let hits_before = c.hits();
        // Peek line 0 (would make it MRU if it updated LRU), then insert a
        // conflicting line; the victim must still be line 0 because peek must
        // not have refreshed it.
        assert!(c.peek(LineAddr::new(0)).is_some());
        assert_eq!(c.hits(), hits_before);
        let ev = c.insert(LineAddr::new(8), MesiState::Shared, ());
        assert_eq!(ev.victim.unwrap().addr, LineAddr::new(0));
    }

    #[test]
    fn metadata_round_trips() {
        let mut c: CacheArray<u32> = CacheArray::with_geometry(2, 2);
        c.insert(LineAddr::new(1), MesiState::Shared, 99);
        assert_eq!(c.peek(LineAddr::new(1)).unwrap().meta, 99);
        c.peek_mut(LineAddr::new(1)).unwrap().meta = 7;
        assert_eq!(c.peek(LineAddr::new(1)).unwrap().meta, 7);
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = small_cache();
        assert_eq!(c.occupancy(), 0);
        c.insert(LineAddr::new(1), MesiState::Shared, ());
        c.insert(LineAddr::new(2), MesiState::Shared, ());
        assert_eq!(c.occupancy(), 2);
        c.invalidate(LineAddr::new(1));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn resident_lines_are_sorted() {
        let mut c = small_cache();
        c.insert(LineAddr::new(9), MesiState::Shared, ());
        c.insert(LineAddr::new(2), MesiState::Shared, ());
        assert_eq!(c.resident_lines(), vec![LineAddr::new(2), LineAddr::new(9)]);
    }
}
