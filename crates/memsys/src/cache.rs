//! Generic set-associative cache arrays.
//!
//! [`CacheArray`] models the tag array of a cache: which lines are present, in
//! which coherence state, with LRU replacement inside each set. It is generic
//! over a per-line metadata type so the MuonTrap filter cache can attach its
//! committed bit, virtual tag and fill-level tag without this crate knowing
//! about them.
//!
//! The array is stored as **one contiguous `Vec`** indexed by
//! `set * ways + way` — not a `Vec` of per-set `Vec`s. Every simulated memory
//! access walks at least one set, so the flat layout keeps lookups on a
//! single allocation with predictable strides and removes a pointer chase per
//! set. Empty ways hold an [`MesiState::Invalid`] line; a `valid` counter
//! keeps [`occupancy`](CacheArray::occupancy) O(1) and allocation-free.

use simkit::addr::LineAddr;
use simkit::config::CacheConfig;

use crate::mesi::MesiState;

/// One line in a [`CacheArray`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLine<M> {
    /// The physical line address stored here.
    pub addr: LineAddr,
    /// Coherence state (Invalid lines are treated as empty slots).
    pub state: MesiState,
    /// Dirty bit (tracked separately from MESI for the shared L2, which does
    /// not participate in MESI as an owner).
    pub dirty: bool,
    /// LRU timestamp: larger means more recently used.
    pub lru: u64,
    /// Caller-defined metadata (e.g. the filter cache's committed bit).
    pub meta: M,
}

/// The result of inserting a line into a set.
#[derive(Debug, Clone, PartialEq)]
pub struct Eviction<M> {
    /// The line that was evicted to make room, if a valid line had to go.
    pub victim: Option<CacheLine<M>>,
}

/// A set-associative cache tag array with per-set LRU replacement.
///
/// The array is indexed by physical line address. Lookups update LRU;
/// [`CacheArray::peek`] does not, and exists so coherence probes stay
/// side-effect free.
#[derive(Debug, Clone)]
pub struct CacheArray<M> {
    /// All ways of all sets, flattened: way `w` of set `s` lives at
    /// `s * ways + w`. Invalid lines are empty slots.
    lines: Vec<CacheLine<M>>,
    num_sets: usize,
    ways: usize,
    /// Number of currently valid (readable) lines.
    valid: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<M: Default + Clone> CacheArray<M> {
    /// Creates a cache array from a configuration and the line size.
    ///
    /// # Panics
    /// Panics if the configuration describes fewer than one line.
    pub fn new(config: &CacheConfig, line_bytes: u64) -> Self {
        let lines = config.num_lines(line_bytes);
        assert!(lines >= 1, "cache must hold at least one line");
        let ways = config.ways.min(lines);
        let num_sets = (lines / ways).max(1);
        Self::with_geometry(num_sets, ways)
    }

    /// Creates a cache array with explicit geometry (used in tests and sweeps).
    pub fn with_geometry(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets >= 1 && ways >= 1, "geometry must be at least 1x1");
        let mut lines = Vec::new();
        lines.resize_with(num_sets * ways, Self::empty_slot);
        CacheArray {
            lines,
            num_sets,
            ways,
            valid: 0,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn empty_slot() -> CacheLine<M> {
        CacheLine {
            addr: LineAddr::new(0),
            state: MesiState::Invalid,
            dirty: false,
            lru: 0,
            meta: M::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets * self.ways
    }

    /// Number of valid lines currently resident. O(1): maintained by
    /// insert/invalidate, never recounted.
    pub fn occupancy(&self) -> usize {
        self.valid
    }

    /// Hits recorded by [`CacheArray::lookup`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`CacheArray::lookup`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        addr.set_index(self.num_sets)
    }

    fn set_range(&self, addr: LineAddr) -> std::ops::Range<usize> {
        let start = self.set_index(addr) * self.ways;
        start..start + self.ways
    }

    /// Looks up `addr`, updating LRU and hit/miss counters. Returns a mutable
    /// reference to the line if present and readable.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<&mut CacheLine<M>> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        if let Some(line) = self.lines[range]
            .iter_mut()
            .find(|l| l.addr == addr && l.state.can_read())
        {
            line.lru = tick;
            self.hits += 1;
            Some(line)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Returns the line for `addr` without updating LRU or counters.
    pub fn peek(&self, addr: LineAddr) -> Option<&CacheLine<M>> {
        let range = self.set_range(addr);
        self.lines[range]
            .iter()
            .find(|l| l.addr == addr && l.state.can_read())
    }

    /// Returns a mutable reference without updating LRU or counters.
    pub fn peek_mut(&mut self, addr: LineAddr) -> Option<&mut CacheLine<M>> {
        let range = self.set_range(addr);
        self.lines[range]
            .iter_mut()
            .find(|l| l.addr == addr && l.state.can_read())
    }

    /// Whether `addr` is present and readable.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts `addr` with the given state and metadata, evicting the LRU line
    /// of the set if it is full. If the line is already present its state and
    /// metadata are overwritten instead (no duplicate entries are created).
    pub fn insert(&mut self, addr: LineAddr, state: MesiState, meta: M) -> Eviction<M> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        let set = &mut self.lines[range];

        if let Some(line) = set
            .iter_mut()
            .find(|l| l.addr == addr && l.state.can_read())
        {
            line.state = state;
            line.meta = meta;
            line.lru = tick;
            return Eviction { victim: None };
        }

        let fresh = CacheLine {
            addr,
            state,
            dirty: false,
            lru: tick,
            meta,
        };

        // Reuse an invalid slot if one exists.
        if let Some(slot) = set.iter_mut().find(|l| !l.state.can_read()) {
            *slot = fresh;
            self.valid += 1;
            return Eviction { victim: None };
        }

        // Evict the least recently used line (LRU stamps are unique — the
        // global tick increments on every insert and lookup — so the victim
        // does not depend on slot order).
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("non-empty set");
        let victim = std::mem::replace(&mut set[victim_idx], fresh);
        Eviction {
            victim: Some(victim),
        }
    }

    /// Invalidates `addr` if present, returning the removed line.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheLine<M>> {
        let range = self.set_range(addr);
        let slot = self.lines[range]
            .iter_mut()
            .find(|l| l.addr == addr && l.state.can_read())?;
        let mut line = std::mem::replace(slot, Self::empty_slot());
        line.state = MesiState::Invalid;
        self.valid -= 1;
        Some(line)
    }

    /// Invalidates every line, returning how many were valid. This is the
    /// single-cycle "clear every valid bit" operation of §4.3 — and like the
    /// hardware it models, it only clears state bits: no allocation, no
    /// per-line drop beyond resetting the slot.
    pub fn invalidate_all(&mut self) -> usize {
        let count = self.valid;
        for slot in &mut self.lines {
            if slot.state.can_read() {
                *slot = Self::empty_slot();
            }
        }
        self.valid = 0;
        count
    }

    /// Iterates over every valid line, set-major. Allocation-free; the basis
    /// of every stat helper on this type.
    pub fn iter_valid(&self) -> impl Iterator<Item = &CacheLine<M>> {
        self.lines.iter().filter(|l| l.state.can_read())
    }

    /// Applies `f` to every valid line.
    pub fn for_each_valid(&self, mut f: impl FnMut(&CacheLine<M>)) {
        for line in self.iter_valid() {
            f(line);
        }
    }

    /// Applies `f` to every valid line mutably.
    pub fn for_each_valid_mut(&mut self, mut f: impl FnMut(&mut CacheLine<M>)) {
        for line in self.lines.iter_mut().filter(|l| l.state.can_read()) {
            f(line);
        }
    }

    /// The addresses of all valid lines, in set-major storage order.
    /// Allocation-free; collect and sort when a canonical order is needed
    /// (tests do).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.iter_valid().map(|l| l.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::config::CacheConfig;

    fn small_cache() -> CacheArray<()> {
        // 4 sets x 2 ways of 64-byte lines = 512 bytes.
        CacheArray::new(&CacheConfig::new(512, 2, 1, 4), 64)
    }

    #[test]
    fn geometry_from_config() {
        let c = small_cache();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn fully_associative_when_ways_exceed_lines() {
        let c: CacheArray<()> = CacheArray::new(&CacheConfig::new(256, 64, 1, 4), 64);
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c = small_cache();
        c.insert(LineAddr::new(12), MesiState::Shared, ());
        assert!(c.lookup(LineAddr::new(12)).is_some());
        assert!(c.lookup(LineAddr::new(13)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_picks_least_recently_used() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways available.
        c.insert(LineAddr::new(0), MesiState::Shared, ());
        c.insert(LineAddr::new(4), MesiState::Shared, ());
        // Touch line 0 so line 4 becomes LRU.
        assert!(c.lookup(LineAddr::new(0)).is_some());
        let ev = c.insert(LineAddr::new(8), MesiState::Shared, ());
        assert_eq!(
            ev.victim.expect("one line must be evicted").addr,
            LineAddr::new(4)
        );
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(8)));
        assert!(!c.contains(LineAddr::new(4)));
    }

    #[test]
    fn reinserting_existing_line_does_not_duplicate() {
        let mut c = small_cache();
        c.insert(LineAddr::new(3), MesiState::Shared, ());
        c.insert(LineAddr::new(3), MesiState::Modified, ());
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.peek(LineAddr::new(3)).unwrap().state, MesiState::Modified);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.insert(LineAddr::new(5), MesiState::Exclusive, ());
        let removed = c.invalidate(LineAddr::new(5)).expect("line was present");
        assert_eq!(removed.addr, LineAddr::new(5));
        assert!(!c.contains(LineAddr::new(5)));
        assert!(c.invalidate(LineAddr::new(5)).is_none());
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut c = small_cache();
        for i in 0..8 {
            c.insert(LineAddr::new(i), MesiState::Shared, ());
        }
        assert_eq!(c.occupancy(), 8);
        assert_eq!(c.invalidate_all(), 8);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn peek_does_not_disturb_lru_or_counters() {
        let mut c = small_cache();
        c.insert(LineAddr::new(0), MesiState::Shared, ());
        c.insert(LineAddr::new(4), MesiState::Shared, ());
        let hits_before = c.hits();
        // Peek line 0 (would make it MRU if it updated LRU), then insert a
        // conflicting line; the victim must still be line 0 because peek must
        // not have refreshed it.
        assert!(c.peek(LineAddr::new(0)).is_some());
        assert_eq!(c.hits(), hits_before);
        let ev = c.insert(LineAddr::new(8), MesiState::Shared, ());
        assert_eq!(ev.victim.unwrap().addr, LineAddr::new(0));
    }

    #[test]
    fn metadata_round_trips() {
        let mut c: CacheArray<u32> = CacheArray::with_geometry(2, 2);
        c.insert(LineAddr::new(1), MesiState::Shared, 99);
        assert_eq!(c.peek(LineAddr::new(1)).unwrap().meta, 99);
        c.peek_mut(LineAddr::new(1)).unwrap().meta = 7;
        assert_eq!(c.peek(LineAddr::new(1)).unwrap().meta, 7);
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = small_cache();
        assert_eq!(c.occupancy(), 0);
        c.insert(LineAddr::new(1), MesiState::Shared, ());
        c.insert(LineAddr::new(2), MesiState::Shared, ());
        assert_eq!(c.occupancy(), 2);
        c.invalidate(LineAddr::new(1));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn occupancy_counter_survives_eviction_and_overwrite() {
        let mut c = small_cache();
        // Fill set 0 (lines 0 and 4), then evict by inserting line 8.
        c.insert(LineAddr::new(0), MesiState::Shared, ());
        c.insert(LineAddr::new(4), MesiState::Shared, ());
        assert_eq!(c.occupancy(), 2);
        let ev = c.insert(LineAddr::new(8), MesiState::Shared, ());
        assert!(ev.victim.is_some());
        assert_eq!(c.occupancy(), 2, "eviction replaces, not grows");
        // Overwriting a present line must not change the count either.
        c.insert(LineAddr::new(8), MesiState::Modified, ());
        assert_eq!(c.occupancy(), 2);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn resident_lines_iterates_without_allocating_per_line() {
        let mut c = small_cache();
        c.insert(LineAddr::new(9), MesiState::Shared, ());
        c.insert(LineAddr::new(2), MesiState::Shared, ());
        let mut lines: Vec<LineAddr> = c.resident_lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![LineAddr::new(2), LineAddr::new(9)]);
        assert_eq!(c.iter_valid().count(), 2);
    }
}
