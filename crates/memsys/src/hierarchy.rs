//! The multi-core memory hierarchy.
//!
//! [`MemoryHierarchy`] owns the private L1 instruction and data caches of
//! every core, the shared L2, the DRAM model and the L2 stride prefetcher, and
//! implements MESI coherence between the private L1s. It exposes both the
//! conventional access path (used by the unprotected baseline) and the
//! fine-grained operations the defense layers need:
//!
//! * fills that bypass the non-speculative levels ([`FillLevel::None`]), used
//!   by MuonTrap for speculative accesses,
//! * commit-time write-through and asynchronous exclusive upgrades,
//! * side-effect-free coherence probes (is a line private to another core?),
//! * per-core invalidation queues so external structures (filter caches) can
//!   observe exclusive upgrades performed by other cores.
//!
//! The model mutates cache state immediately at access time and returns a
//! latency, rather than exchanging timed coherence messages. DESIGN.md §3
//! discusses this fidelity trade-off.

use simkit::addr::LineAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;
use simkit::timeq::{ServiceLaw, TimedServer};

use crate::cache::CacheArray;
use crate::dram::Dram;
use crate::mesi::MesiState;
use crate::mshr::MshrFile;
use crate::prefetch::StridePrefetcher;
use crate::types::{AccessKind, AccessRequest, AccessResponse, FillLevel, ServiceLevel};

/// Extra latency of forwarding data from a remote core's L1 (on top of the L2
/// tag lookup that discovered it).
const REMOTE_FORWARD_LATENCY: u64 = 12;

/// Latency of an upgrade (invalidation) bus transaction.
const UPGRADE_LATENCY: u64 = 8;

/// One core's private cache resources.
#[derive(Debug)]
struct CoreCaches {
    l1i: CacheArray<()>,
    l1d: CacheArray<()>,
    l1d_mshrs: MshrFile,
    l1i_mshrs: MshrFile,
}

/// The full multi-core cache hierarchy.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cores: Vec<CoreCaches>,
    l2: CacheArray<()>,
    l2_mshrs: MshrFile,
    dram: Dram,
    prefetcher: StridePrefetcher,
    /// Lines invalidated by exclusive upgrades, queued per core for external
    /// structures (filter caches) to consume.
    invalidation_queues: Vec<Vec<LineAddr>>,
    stats: StatSet,
    l1d_hit_latency: u64,
    l1i_hit_latency: u64,
    /// The shared L2 lookup path as a timed server: a latency pipe whose
    /// service law is the L2 hit latency with the line transfer folded in
    /// (`bytes_per_cycle = 0`), reproducing the original constant exactly.
    l2_server: TimedServer,
    line_bytes: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &SystemConfig) -> Self {
        let cores = (0..config.cores)
            .map(|_| CoreCaches {
                l1i: CacheArray::new(&config.l1i, config.line_bytes),
                l1d: CacheArray::new(&config.l1d, config.line_bytes),
                l1d_mshrs: MshrFile::new(config.l1d.mshrs),
                l1i_mshrs: MshrFile::new(config.l1i.mshrs),
            })
            .collect();
        MemoryHierarchy {
            cores,
            l2: CacheArray::new(&config.l2, config.line_bytes),
            l2_mshrs: MshrFile::new(config.l2.mshrs),
            dram: Dram::new(config.dram, config.line_bytes),
            prefetcher: StridePrefetcher::new(config.prefetch_degree),
            invalidation_queues: vec![Vec::new(); config.cores],
            stats: StatSet::new(),
            l1d_hit_latency: config.l1d.hit_latency,
            l1i_hit_latency: config.l1i.hit_latency,
            l2_server: TimedServer::pipe(ServiceLaw::fixed(config.l2.hit_latency)),
            line_bytes: config.line_bytes,
        }
    }

    /// One L2 tag/data lookup through the timed-server model: returns the
    /// lookup latency (the service law applied to one line).
    fn l2_lookup_latency(&mut self, when: Cycle) -> u64 {
        let ticket = self
            .l2_server
            .request(when, self.line_bytes)
            .expect("the L2 lookup pipe is unbounded");
        ticket.latency(when)
    }

    /// Number of cores the hierarchy was built for.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Read-only access to the accumulated statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Drains the pending filter-cache invalidation notifications for `core`.
    ///
    /// Exclusive upgrades by *other* cores append the upgraded line here; the
    /// defense layer applies them to its filter structures when it next runs.
    pub fn take_invalidations(&mut self, core: usize) -> Vec<LineAddr> {
        std::mem::take(&mut self.invalidation_queues[core])
    }

    /// Drains `core`'s pending invalidations into `buf` (cleared first) by
    /// swapping buffers, so the per-cycle drain in the defense layers'
    /// `tick` never allocates: the queue keeps `buf`'s capacity and `buf`
    /// receives the queued lines. Equivalent to
    /// [`take_invalidations`](Self::take_invalidations) minus the `Vec`
    /// churn.
    pub fn drain_invalidations_into(&mut self, core: usize, buf: &mut Vec<LineAddr>) {
        buf.clear();
        std::mem::swap(&mut self.invalidation_queues[core], buf);
    }

    /// Whether `core` has invalidation notifications queued and not yet
    /// drained. The system loop consults this (through
    /// `MemoryModel::is_idle`) before fast-forwarding over idle cycles: a
    /// non-empty queue means the next `tick` does real work.
    pub fn has_pending_invalidations(&self, core: usize) -> bool {
        !self.invalidation_queues[core].is_empty()
    }

    /// Whether `line` is held in Modified or Exclusive state by the private L1
    /// data cache of any core other than `core`. Side-effect free.
    pub fn remote_private_holds_exclusive(&self, core: usize, line: LineAddr) -> bool {
        self.cores.iter().enumerate().any(|(i, c)| {
            i != core
                && c.l1d
                    .peek(line)
                    .map(|l| l.state.is_private())
                    .unwrap_or(false)
        })
    }

    /// Whether any cache in the system other than `core`'s own private caches
    /// holds a copy of `line` (any state). Side-effect free.
    pub fn any_other_copy(&self, core: usize, line: LineAddr) -> bool {
        let remote_l1 = self
            .cores
            .iter()
            .enumerate()
            .any(|(i, c)| i != core && c.l1d.contains(line));
        remote_l1 || self.l2.contains(line)
    }

    /// Whether `core`'s own L1 data cache holds `line` with write permission.
    pub fn own_l1_exclusive(&self, core: usize, line: LineAddr) -> bool {
        self.cores[core]
            .l1d
            .peek(line)
            .map(|l| l.state.can_write())
            .unwrap_or(false)
    }

    /// Whether `core`'s own L1 data cache holds `line` at all.
    pub fn own_l1_contains(&self, core: usize, line: LineAddr) -> bool {
        self.cores[core].l1d.contains(line)
    }

    /// Whether `core`'s own L1 instruction cache holds `line`.
    pub fn own_l1i_contains(&self, core: usize, line: LineAddr) -> bool {
        self.cores[core].l1i.contains(line)
    }

    /// Whether the shared L2 holds `line`.
    pub fn l2_contains(&self, line: LineAddr) -> bool {
        self.l2.contains(line)
    }

    /// Performs a memory access, mutating cache and coherence state and
    /// returning the latency and serving level.
    pub fn access(&mut self, req: &AccessRequest) -> AccessResponse {
        assert!(req.core < self.cores.len(), "core index out of range");
        match req.kind {
            AccessKind::InstFetch => self.access_instruction(req),
            _ => self.access_data(req),
        }
    }

    /// Installs `line` into `core`'s L1 data cache with at least shared
    /// permission, fetching it from below if absent, and returns the fill
    /// latency. Used by defenses for commit-time write-through (§4.2).
    pub fn commit_fill_l1(&mut self, core: usize, line: LineAddr, when: Cycle) -> AccessResponse {
        let req = AccessRequest::new(core, line, AccessKind::Load, when)
            .with_fill(FillLevel::Normal)
            .without_prefetch_training();
        self.access(&req)
    }

    /// Performs an asynchronous upgrade of `line` to exclusive ownership for
    /// `core` (the commit-time `SE` upgrade of §4.5). Invalidates all other
    /// copies and notifies other cores' filter structures. Returns the number
    /// of remote copies invalidated.
    pub fn upgrade_exclusive(&mut self, core: usize, line: LineAddr, _when: Cycle) -> u32 {
        let invalidated = self.invalidate_remote_copies(core, line, true);
        if let Some(l) = self.cores[core].l1d.peek_mut(line) {
            if !l.state.can_write() {
                l.state = MesiState::Exclusive;
            }
        }
        self.stats.bump("hierarchy.exclusive_upgrades");
        invalidated
    }

    /// Fills `line` into the shared L2 (prefetch fill). No latency is charged
    /// to any requester; the benefit shows up as later hits.
    pub fn prefetch_fill_l2(&mut self, line: LineAddr) {
        if !self.l2.contains(line) {
            self.stats.bump("hierarchy.prefetch_fills");
            let ev = self.l2.insert(line, MesiState::Shared, ());
            if let Some(victim) = ev.victim {
                if victim.dirty {
                    self.stats.bump("hierarchy.l2_writebacks");
                }
            }
        }
    }

    /// Explicitly trains the prefetcher with a committed access and performs
    /// any prefetch fills it requests. MuonTrap calls this at commit time
    /// (§4.6); the baseline trains implicitly inside [`MemoryHierarchy::access`].
    pub fn train_prefetcher(&mut self, pc: u64, line: LineAddr) {
        let candidates = self.prefetcher.train(pc, line);
        for candidate in candidates {
            self.prefetch_fill_l2(candidate);
        }
    }

    /// Invalidates `line` from `core`'s own L1 data cache (used by defenses
    /// that must undo speculative installs, e.g. CleanupSpec-style rollback in
    /// tests). Returns whether a line was removed.
    pub fn invalidate_own_l1(&mut self, core: usize, line: LineAddr) -> bool {
        self.cores[core].l1d.invalidate(line).is_some()
    }

    /// Total number of lines currently valid in `core`'s L1 data cache.
    pub fn l1d_occupancy(&self, core: usize) -> usize {
        self.cores[core].l1d.occupancy()
    }

    // ------------------------------------------------------------------
    // internal paths
    // ------------------------------------------------------------------

    fn access_instruction(&mut self, req: &AccessRequest) -> AccessResponse {
        self.stats.bump("hierarchy.ifetch_accesses");
        let mut latency = self.l1i_hit_latency;
        if self.cores[req.core].l1i.lookup(req.line).is_some() {
            self.stats.bump("hierarchy.l1i_hits");
            return AccessResponse {
                latency,
                served_by: ServiceLevel::L1,
                coherence_delayed: false,
                invalidations: 0,
                writeback: false,
            };
        }
        self.stats.bump("hierarchy.l1i_misses");
        let mshr = self.cores[req.core].l1i_mshrs.check(req.line, req.when);
        if mshr.coalesced {
            // The fill is already in flight; ride along with it. The line is
            // still installed according to this request's fill policy because
            // the returning data satisfies this request too.
            latency += mshr.fill_ready_at.since(req.when);
            if req.fill == FillLevel::Normal {
                self.cores[req.core]
                    .l1i
                    .insert(req.line, MesiState::Shared, ());
            }
            return AccessResponse {
                latency,
                served_by: ServiceLevel::L2,
                coherence_delayed: false,
                invalidations: 0,
                writeback: false,
            };
        }
        latency += mshr.issue_delay(req.when);
        let (below_latency, served_by) = self.fetch_from_l2_or_memory(req.line, req.when, req.fill);
        latency += below_latency;
        self.cores[req.core]
            .l1i_mshrs
            .allocate(req.line, req.when.saturating_add(latency));
        if req.fill == FillLevel::Normal {
            self.cores[req.core]
                .l1i
                .insert(req.line, MesiState::Shared, ());
        }
        AccessResponse {
            latency,
            served_by,
            coherence_delayed: false,
            invalidations: 0,
            writeback: false,
        }
    }

    fn access_data(&mut self, req: &AccessRequest) -> AccessResponse {
        self.stats.bump("hierarchy.data_accesses");
        let wants_exclusive = req.kind.wants_exclusive();
        let mut latency = self.l1d_hit_latency;
        let mut invalidations = 0u32;

        // L1 hit path.
        let hit_state = self.cores[req.core].l1d.lookup(req.line).map(|l| l.state);
        if let Some(state) = hit_state {
            self.stats.bump("hierarchy.l1d_hits");
            if wants_exclusive && !state.can_write() {
                // Upgrade: invalidate every other copy.
                if !req.allow_remote_downgrade
                    && self.remote_private_holds_exclusive(req.core, req.line)
                {
                    self.stats.bump("hierarchy.coherence_delays");
                    return AccessResponse::delayed(latency);
                }
                invalidations = self.invalidate_remote_copies(req.core, req.line, true);
                latency += UPGRADE_LATENCY;
                self.stats.bump("hierarchy.upgrades");
            }
            if let Some(l) = self.cores[req.core].l1d.peek_mut(req.line) {
                if wants_exclusive {
                    l.state = MesiState::Modified;
                    l.dirty = true;
                }
            }
            if req.train_prefetcher && req.kind != AccessKind::Prefetch {
                self.train_prefetcher(req.pc, req.line);
            }
            return AccessResponse {
                latency,
                served_by: ServiceLevel::L1,
                coherence_delayed: false,
                invalidations,
                writeback: false,
            };
        }

        // L1 miss.
        self.stats.bump("hierarchy.l1d_misses");

        // Check whether another core holds the line privately.
        let remote_exclusive = self.remote_private_holds_exclusive(req.core, req.line);
        if remote_exclusive && !req.allow_remote_downgrade {
            self.stats.bump("hierarchy.coherence_delays");
            return AccessResponse::delayed(latency);
        }

        let mshr = self.cores[req.core].l1d_mshrs.check(req.line, req.when);
        if mshr.coalesced {
            // A fill for this line is already in flight; ride along with it.
            // The returning data also satisfies this request, so it is still
            // installed according to this request's fill policy.
            latency += mshr.fill_ready_at.since(req.when).max(1);
            let mut invalidations = 0;
            if wants_exclusive {
                invalidations = self.invalidate_remote_copies(req.core, req.line, true);
            }
            if req.fill == FillLevel::Normal {
                let state = if wants_exclusive {
                    MesiState::Modified
                } else {
                    MesiState::Shared
                };
                let _ = self.cores[req.core].l1d.insert(req.line, state, ());
                if wants_exclusive {
                    if let Some(l) = self.cores[req.core].l1d.peek_mut(req.line) {
                        l.dirty = true;
                    }
                }
            }
            return AccessResponse {
                latency,
                served_by: ServiceLevel::L2,
                coherence_delayed: false,
                invalidations,
                writeback: false,
            };
        }
        latency += mshr.issue_delay(req.when);

        let served_by;
        let mut writeback = false;

        if remote_exclusive {
            // Dirty/exclusive data forwarded from a remote L1; downgrade it.
            // The forward rides through the L2 lookup (which discovered the
            // remote owner) plus the core-to-core transfer.
            served_by = ServiceLevel::RemoteL1;
            latency += self.l2_lookup_latency(req.when) + REMOTE_FORWARD_LATENCY;
            let was_dirty = self.downgrade_remote_copies(req.core, req.line, wants_exclusive);
            writeback = was_dirty;
            if was_dirty {
                // Dirty data gets written back into the shared L2 on the way.
                self.l2.insert(req.line, MesiState::Shared, ());
            }
            self.stats.bump("hierarchy.remote_forwards");
        } else {
            let (below_latency, level) = self.fetch_from_l2_or_memory(req.line, req.when, req.fill);
            latency += below_latency;
            served_by = level;
        }

        if wants_exclusive {
            invalidations = self.invalidate_remote_copies(req.core, req.line, true);
        }

        self.cores[req.core]
            .l1d_mshrs
            .allocate(req.line, req.when.saturating_add(latency));

        // Install into the L1 according to the fill policy.
        if req.fill == FillLevel::Normal {
            let no_other_copy = !self.any_other_copy(req.core, req.line)
                && !self
                    .cores
                    .iter()
                    .enumerate()
                    .any(|(i, c)| i != req.core && c.l1d.contains(req.line));
            let new_state = if wants_exclusive {
                MesiState::Modified
            } else if no_other_copy {
                MesiState::Exclusive
            } else {
                MesiState::Shared
            };
            let ev = self.cores[req.core].l1d.insert(req.line, new_state, ());
            if wants_exclusive {
                if let Some(l) = self.cores[req.core].l1d.peek_mut(req.line) {
                    l.dirty = true;
                }
            }
            if let Some(victim) = ev.victim {
                if victim.state.is_dirty() || victim.dirty {
                    // Dirty victim written back into the L2.
                    writeback = true;
                    self.stats.bump("hierarchy.l1d_writebacks");
                    let l2ev = self.l2.insert(victim.addr, MesiState::Shared, ());
                    if let Some(l) = self.l2.peek_mut(victim.addr) {
                        l.dirty = true;
                    }
                    if let Some(l2victim) = l2ev.victim {
                        if l2victim.dirty {
                            self.stats.bump("hierarchy.l2_writebacks");
                        }
                    }
                }
            }
        }

        if req.train_prefetcher && req.kind != AccessKind::Prefetch {
            self.train_prefetcher(req.pc, req.line);
        }

        AccessResponse {
            latency,
            served_by,
            coherence_delayed: false,
            invalidations,
            writeback,
        }
    }

    /// Looks `line` up in the L2, going to DRAM on a miss, and returns the
    /// additional latency below the L1 plus the serving level. Fills the L2
    /// unless the fill policy says not to install anywhere.
    fn fetch_from_l2_or_memory(
        &mut self,
        line: LineAddr,
        when: Cycle,
        fill: FillLevel,
    ) -> (u64, ServiceLevel) {
        let mut latency = self.l2_lookup_latency(when);
        if self.l2.lookup(line).is_some() {
            self.stats.bump("hierarchy.l2_hits");
            return (latency, ServiceLevel::L2);
        }
        self.stats.bump("hierarchy.l2_misses");
        let mshr = self.l2_mshrs.check(line, when);
        if mshr.coalesced {
            latency += mshr.fill_ready_at.since(when).max(1);
            if fill != FillLevel::None {
                let _ = self.l2.insert(line, MesiState::Shared, ());
            }
            return (latency, ServiceLevel::Dram);
        }
        latency += mshr.issue_delay(when);
        let dram = self.dram.access(line, when.saturating_add(latency));
        latency += dram.latency;
        self.l2_mshrs.allocate(line, when.saturating_add(latency));
        if fill != FillLevel::None {
            let ev = self.l2.insert(line, MesiState::Shared, ());
            if let Some(victim) = ev.victim {
                if victim.dirty {
                    self.stats.bump("hierarchy.l2_writebacks");
                }
            }
        }
        (latency, ServiceLevel::Dram)
    }

    /// Invalidates every remote L1 copy of `line`; returns how many were
    /// invalidated, and queues notifications for external filter structures.
    fn invalidate_remote_copies(&mut self, core: usize, line: LineAddr, notify: bool) -> u32 {
        let mut count = 0;
        for i in 0..self.cores.len() {
            if i == core {
                continue;
            }
            if self.cores[i].l1d.invalidate(line).is_some() {
                count += 1;
                self.stats.bump("hierarchy.remote_invalidations");
            }
            if notify {
                self.invalidation_queues[i].push(line);
            }
        }
        count
    }

    /// Downgrades remote private copies of `line` to shared (read) or invalid
    /// (write). Returns whether any copy was dirty.
    fn downgrade_remote_copies(&mut self, core: usize, line: LineAddr, invalidate: bool) -> bool {
        let mut was_dirty = false;
        for i in 0..self.cores.len() {
            if i == core {
                continue;
            }
            if invalidate {
                if let Some(l) = self.cores[i].l1d.invalidate(line) {
                    was_dirty |= l.state.is_dirty() || l.dirty;
                    self.invalidation_queues[i].push(line);
                }
            } else if let Some(l) = self.cores[i].l1d.peek_mut(line) {
                was_dirty |= l.state.is_dirty() || l.dirty;
                l.state = l.state.after_remote_read();
                l.dirty = false;
            }
        }
        was_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&SystemConfig::paper_default())
    }

    fn load(core: usize, line: u64, when: u64) -> AccessRequest {
        AccessRequest::new(
            core,
            LineAddr::new(line),
            AccessKind::Load,
            Cycle::new(when),
        )
    }

    fn store(core: usize, line: u64, when: u64) -> AccessRequest {
        AccessRequest::new(
            core,
            LineAddr::new(line),
            AccessKind::Store,
            Cycle::new(when),
        )
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits_in_l1() {
        let mut h = hierarchy();
        let first = h.access(&load(0, 42, 0));
        assert_eq!(first.served_by, ServiceLevel::Dram);
        assert!(first.latency > 50);
        let second = h.access(&load(0, 42, 1000));
        assert_eq!(second.served_by, ServiceLevel::L1);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn second_core_hits_in_l2_after_first_core_fetches() {
        let mut h = hierarchy();
        let _ = h.access(&load(0, 7, 0));
        let r = h.access(&load(1, 7, 1000));
        assert_eq!(r.served_by, ServiceLevel::L2);
        assert!(r.latency < 60);
    }

    #[test]
    fn store_gains_modified_state_and_invalidates_sharers() {
        let mut h = hierarchy();
        let _ = h.access(&load(0, 9, 0));
        let _ = h.access(&load(1, 9, 500)); // both cores share the line
        let r = h.access(&store(0, 9, 1000));
        assert!(
            r.invalidations >= 1,
            "the sharer in core 1 must be invalidated"
        );
        assert!(h.own_l1_exclusive(0, LineAddr::new(9)));
        assert!(!h.own_l1_contains(1, LineAddr::new(9)));
        // Core 1's filter-cache notification queue sees the invalidation.
        let invs = h.take_invalidations(1);
        assert!(invs.contains(&LineAddr::new(9)));
    }

    #[test]
    fn remote_modified_line_is_forwarded_and_downgraded() {
        let mut h = hierarchy();
        let _ = h.access(&store(0, 11, 0));
        assert!(h.own_l1_exclusive(0, LineAddr::new(11)));
        let r = h.access(&load(1, 11, 500));
        assert_eq!(r.served_by, ServiceLevel::RemoteL1);
        assert!(r.writeback, "dirty data must be written back");
        // Core 0 must no longer have exclusive permission.
        assert!(!h.own_l1_exclusive(0, LineAddr::new(11)));
    }

    #[test]
    fn disallowed_remote_downgrade_is_reported_as_delay() {
        let mut h = hierarchy();
        let _ = h.access(&store(0, 13, 0));
        let req = load(1, 13, 500).without_remote_downgrade();
        let r = h.access(&req);
        assert!(r.coherence_delayed);
        // The remote line must be untouched.
        assert!(h.own_l1_exclusive(0, LineAddr::new(13)));
        assert_eq!(h.stats().counter("hierarchy.coherence_delays"), 1);
    }

    #[test]
    fn fill_level_none_leaves_caches_untouched() {
        let mut h = hierarchy();
        let req = load(0, 21, 0).with_fill(FillLevel::None);
        let r = h.access(&req);
        assert_eq!(r.served_by, ServiceLevel::Dram);
        assert!(!h.own_l1_contains(0, LineAddr::new(21)));
        assert!(!h.l2_contains(LineAddr::new(21)));
    }

    #[test]
    fn exclusive_upgrade_notifies_other_cores() {
        let mut h = hierarchy();
        let _ = h.access(&load(1, 30, 0));
        let invalidated = h.upgrade_exclusive(0, LineAddr::new(30), Cycle::new(100));
        assert_eq!(invalidated, 1);
        assert!(h.take_invalidations(1).contains(&LineAddr::new(30)));
        assert!(
            h.take_invalidations(1).is_empty(),
            "queue drains once taken"
        );
    }

    #[test]
    fn prefetcher_brings_lines_into_l2_on_streaming_access() {
        let mut h = hierarchy();
        // Stream with unit stride from one PC; after a few accesses the
        // prefetcher should have filled the next line(s) into the L2.
        for i in 0..6u64 {
            let req = load(0, 100 + i, i * 10).with_pc(0x4000);
            let _ = h.access(&req);
        }
        assert!(h.l2_contains(LineAddr::new(106)) || h.l2_contains(LineAddr::new(107)));
        assert!(h.stats().counter("hierarchy.prefetch_fills") > 0);
    }

    #[test]
    fn prefetch_training_can_be_suppressed() {
        let mut h = hierarchy();
        for i in 0..6u64 {
            let req = load(0, 200 + i, i * 10)
                .with_pc(0x5000)
                .without_prefetch_training();
            let _ = h.access(&req);
        }
        assert!(!h.l2_contains(LineAddr::new(206)));
        assert!(!h.l2_contains(LineAddr::new(207)));
    }

    #[test]
    fn commit_fill_installs_into_l1() {
        let mut h = hierarchy();
        assert!(!h.own_l1_contains(0, LineAddr::new(55)));
        let _ = h.commit_fill_l1(0, LineAddr::new(55), Cycle::new(10));
        assert!(h.own_l1_contains(0, LineAddr::new(55)));
    }

    #[test]
    fn instruction_fetches_use_the_l1i() {
        let mut h = hierarchy();
        let req = AccessRequest::new(0, LineAddr::new(900), AccessKind::InstFetch, Cycle::ZERO);
        let first = h.access(&req);
        assert_ne!(first.served_by, ServiceLevel::L1);
        let again = h.access(&AccessRequest::new(
            0,
            LineAddr::new(900),
            AccessKind::InstFetch,
            Cycle::new(100),
        ));
        assert_eq!(again.served_by, ServiceLevel::L1);
        assert_eq!(again.latency, 1);
    }

    #[test]
    fn probes_are_side_effect_free() {
        let mut h = hierarchy();
        let _ = h.access(&store(2, 77, 0));
        let before = h.stats().clone();
        assert!(h.remote_private_holds_exclusive(0, LineAddr::new(77)));
        assert!(!h.remote_private_holds_exclusive(2, LineAddr::new(77)));
        assert!(h.any_other_copy(0, LineAddr::new(77)));
        assert_eq!(h.stats(), &before);
    }

    #[test]
    fn own_l1_invalidate_removes_line() {
        let mut h = hierarchy();
        let _ = h.access(&load(0, 88, 0));
        assert!(h.invalidate_own_l1(0, LineAddr::new(88)));
        assert!(!h.own_l1_contains(0, LineAddr::new(88)));
        assert!(!h.invalidate_own_l1(0, LineAddr::new(88)));
    }

    #[test]
    fn l1_eviction_of_dirty_line_writes_back_to_l2() {
        let cfg = SystemConfig::small_test();
        let mut h = MemoryHierarchy::new(&cfg);
        // Dirty a line, then stream enough conflicting lines through the small
        // L1 to force its eviction.
        let _ = h.access(&store(0, 0, 0));
        let l1_lines = cfg.l1d.num_lines(cfg.line_bytes) as u64;
        for i in 1..(l1_lines * 3) {
            let _ = h.access(&load(0, i, 10 + i));
        }
        assert!(h.stats().counter("hierarchy.l1d_writebacks") > 0);
        assert!(h.l2_contains(LineAddr::new(0)));
    }

    #[test]
    fn mshr_pressure_increases_latency() {
        let mut cfg = SystemConfig::paper_default();
        cfg.l1d.mshrs = 1;
        let mut h = MemoryHierarchy::new(&cfg);
        // Two different cold misses at the same cycle: the second must wait for
        // the single MSHR.
        let a = h.access(&load(0, 1000, 0));
        let b = h.access(&load(0, 2000, 0));
        assert!(
            b.latency > a.latency,
            "structural hazard should delay the second miss"
        );
    }
}
