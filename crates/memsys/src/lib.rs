//! Cache-hierarchy substrate for the MuonTrap reproduction.
//!
//! The paper's evaluation platform is a 4-core system with private L1
//! instruction/data caches, a shared L2 with a stride prefetcher, MESI
//! coherence, split TLBs and DDR3 memory (Table 1). None of that exists as a
//! reusable Rust library, so this crate implements it:
//!
//! * [`cache`] — generic set-associative cache arrays with LRU replacement and
//!   per-line metadata,
//! * [`mesi`] — the MESI coherence states and legal transitions,
//! * [`mshr`] — miss-status-holding registers bounding outstanding misses,
//! * [`dram`] — a banked, open-row DRAM timing model,
//! * [`prefetch`] — a stride prefetcher (the one the paper attaches to the L2),
//! * [`tlb`] — translation look-aside buffers with a fixed-cost walker,
//! * [`hierarchy`] — the multi-core [`hierarchy::MemoryHierarchy`] tying the
//!   above together and exposing the fine-grained operations the defenses
//!   (MuonTrap, InvisiSpec, STT) need: fills that bypass the non-speculative
//!   levels, exclusive upgrades, coherence probes and invalidation queues.
//!
//! The hierarchy is a *timing and state* model: it tracks which lines are
//! where and in which coherence state, and reports access latencies. Data
//! values live in the functional memory owned by each process
//! (`uarch_isa::mem::SparseMemory`), which keeps coherence bookkeeping and
//! functional correctness cleanly separated.
//!
//! # Example
//!
//! ```
//! use memsys::hierarchy::MemoryHierarchy;
//! use memsys::types::{AccessKind, AccessRequest, FillLevel, ServiceLevel};
//! use simkit::addr::LineAddr;
//! use simkit::config::SystemConfig;
//! use simkit::cycles::Cycle;
//!
//! let mut hier = MemoryHierarchy::new(&SystemConfig::paper_default());
//! let req = AccessRequest::new(0, LineAddr::new(100), AccessKind::Load, Cycle::ZERO);
//! let first = hier.access(&req);
//! assert_eq!(first.served_by, ServiceLevel::Dram);
//! let again = hier.access(&AccessRequest::new(0, LineAddr::new(100), AccessKind::Load, Cycle::new(500)));
//! assert_eq!(again.served_by, ServiceLevel::L1);
//! assert!(again.latency < first.latency);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mesi;
pub mod mshr;
pub mod prefetch;
pub mod tlb;
pub mod types;

pub use cache::CacheArray;
pub use hierarchy::MemoryHierarchy;
pub use mesi::MesiState;
pub use tlb::{Mmu, PageTable, Tlb, Translation};
pub use types::{AccessKind, AccessRequest, AccessResponse, FillLevel, ServiceLevel};
