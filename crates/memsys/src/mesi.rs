//! MESI coherence states.
//!
//! Every line in a private cache carries a [`MesiState`]. The shared L2 tracks
//! presence only (its lines are either valid or not, with a dirty bit), while
//! the per-core L1s and the MuonTrap filter caches use the full state machine.
//! Section 4.5 of the paper restricts filter caches to the `Shared` state plus
//! an `SE` bookkeeping pseudo-state; that pseudo-state lives in the `muontrap`
//! crate because it is not a real coherence state.

use std::fmt;

/// A MESI coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MesiState {
    /// The line is not present.
    #[default]
    Invalid,
    /// The line is present, clean, and may be present elsewhere.
    Shared,
    /// The line is present, clean, and no other cache holds it.
    Exclusive,
    /// The line is present, dirty, and no other cache holds it.
    Modified,
}

impl MesiState {
    /// Whether the line can be read without a coherence transaction.
    #[inline]
    pub const fn can_read(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether the line can be written without a coherence transaction.
    #[inline]
    pub const fn can_write(self) -> bool {
        matches!(self, MesiState::Exclusive | MesiState::Modified)
    }

    /// Whether the state implies no other cache holds the line.
    #[inline]
    pub const fn is_private(self) -> bool {
        matches!(self, MesiState::Exclusive | MesiState::Modified)
    }

    /// Whether the line holds data that must be written back before eviction.
    #[inline]
    pub const fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }

    /// The state a remote cache's copy moves to when this core performs a
    /// read (a `GetS` snoop): M/E/S collapse to Shared, Invalid stays Invalid.
    #[inline]
    pub const fn after_remote_read(self) -> MesiState {
        match self {
            MesiState::Invalid => MesiState::Invalid,
            _ => MesiState::Shared,
        }
    }

    /// The state a remote cache's copy moves to when this core performs a
    /// write (a `GetX`/upgrade snoop): everything is invalidated.
    #[inline]
    pub const fn after_remote_write(self) -> MesiState {
        MesiState::Invalid
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letter = match self {
            MesiState::Invalid => "I",
            MesiState::Shared => "S",
            MesiState::Exclusive => "E",
            MesiState::Modified => "M",
        };
        f.write_str(letter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_permissions() {
        assert!(!MesiState::Invalid.can_read());
        assert!(MesiState::Shared.can_read());
        assert!(!MesiState::Shared.can_write());
        assert!(MesiState::Exclusive.can_write());
        assert!(MesiState::Modified.can_write());
    }

    #[test]
    fn privacy_and_dirtiness() {
        assert!(MesiState::Exclusive.is_private());
        assert!(MesiState::Modified.is_private());
        assert!(!MesiState::Shared.is_private());
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
    }

    #[test]
    fn snoop_transitions() {
        assert_eq!(MesiState::Modified.after_remote_read(), MesiState::Shared);
        assert_eq!(MesiState::Exclusive.after_remote_read(), MesiState::Shared);
        assert_eq!(MesiState::Shared.after_remote_read(), MesiState::Shared);
        assert_eq!(MesiState::Invalid.after_remote_read(), MesiState::Invalid);
        for s in [
            MesiState::Modified,
            MesiState::Exclusive,
            MesiState::Shared,
            MesiState::Invalid,
        ] {
            assert_eq!(s.after_remote_write(), MesiState::Invalid);
        }
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(MesiState::default(), MesiState::Invalid);
    }

    #[test]
    fn display_is_single_letter() {
        assert_eq!(format!("{}", MesiState::Modified), "M");
        assert_eq!(format!("{}", MesiState::Invalid), "I");
    }
}
