//! Miss status holding registers (MSHRs).
//!
//! Each cache level has a small number of MSHRs bounding the misses it can
//! have outstanding at once. In this latency-annotated model an MSHR entry is
//! simply "line X will be filled at cycle T": a new miss to the same line
//! coalesces onto the existing entry; a miss with no free entry must wait
//! until the earliest entry retires.

use simkit::addr::LineAddr;
use simkit::cycles::Cycle;
use simkit::timeq::Backpressure;

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    line: LineAddr,
    ready_at: Cycle,
}

/// What happened when a miss consulted the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrOutcome {
    /// Set when every MSHR was busy: the file refused to issue the miss
    /// until `retry_at` (when the earliest in-flight fill retires). In this
    /// latency-annotated model the requester absorbs the stall as
    /// [`issue_delay`](Self::issue_delay) cycles rather than literally
    /// retrying.
    pub backpressure: Option<Backpressure>,
    /// Whether the miss coalesced onto an existing in-flight entry for the
    /// same line; if so `fill_ready_at` is that entry's completion time.
    pub coalesced: bool,
    /// When the fill for this line completes (only meaningful if `coalesced`).
    pub fill_ready_at: Cycle,
}

impl MshrOutcome {
    /// Extra cycles the requester must wait *before* its miss can even be
    /// issued — zero unless the file pushed back.
    pub fn issue_delay(&self, now: Cycle) -> u64 {
        self.backpressure.map_or(0, |bp| bp.retry_at.since(now))
    }
}

/// A file of miss-status-holding registers.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    coalesced_count: u64,
    structural_stalls: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            entries: Vec::new(),
            capacity: capacity.max(1),
            coalesced_count: 0,
            structural_stalls: 0,
        }
    }

    /// Number of entries still in flight at `now`.
    pub fn in_flight(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.ready_at > now).count()
    }

    /// Total number of coalesced (secondary) misses observed.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced_count
    }

    /// Total number of structural stalls (no free MSHR) observed.
    pub fn structural_stalls(&self) -> u64 {
        self.structural_stalls
    }

    /// Consults the MSHR file for a miss to `line` at cycle `now`.
    ///
    /// If the line is already being fetched, the miss coalesces. Otherwise, if
    /// all MSHRs are busy, the returned outcome carries [`Backpressure`]
    /// naming the cycle a register frees up. The caller is expected to call
    /// [`MshrFile::allocate`] afterwards with the final completion time.
    pub fn check(&mut self, line: LineAddr, now: Cycle) -> MshrOutcome {
        self.retire_completed(now);
        if let Some(entry) = self.entries.iter().find(|e| e.line == line) {
            self.coalesced_count += 1;
            return MshrOutcome {
                backpressure: None,
                coalesced: true,
                fill_ready_at: entry.ready_at,
            };
        }
        if self.entries.len() < self.capacity {
            return MshrOutcome {
                backpressure: None,
                coalesced: false,
                fill_ready_at: now,
            };
        }
        // All MSHRs busy: push back until the earliest retires.
        let earliest = self.entries.iter().map(|e| e.ready_at).min().unwrap_or(now);
        self.structural_stalls += 1;
        MshrOutcome {
            backpressure: Some(Backpressure { retry_at: earliest }),
            coalesced: false,
            fill_ready_at: earliest,
        }
    }

    /// Records that a miss to `line` will complete at `ready_at`.
    ///
    /// Callers should have used [`MshrFile::check`] first; allocating past
    /// capacity silently evicts the earliest-completing entry (the model
    /// equivalent of that entry having retired).
    pub fn allocate(&mut self, line: LineAddr, ready_at: Cycle) {
        if self.entries.iter().any(|e| e.line == line) {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.ready_at)
                .map(|(i, _)| i)
            {
                self.entries.remove(pos);
            }
        }
        self.entries.push(MshrEntry { line, ready_at });
    }

    /// Drops entries whose fills have completed by `now`.
    pub fn retire_completed(&mut self, now: Cycle) {
        self.entries.retain(|e| e.ready_at > now);
    }

    /// Clears every entry (used on context switches in some configurations).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_repeat_misses_to_same_line() {
        let mut m = MshrFile::new(4);
        let first = m.check(LineAddr::new(7), Cycle::new(0));
        assert!(!first.coalesced);
        m.allocate(LineAddr::new(7), Cycle::new(100));
        let second = m.check(LineAddr::new(7), Cycle::new(10));
        assert!(second.coalesced);
        assert_eq!(second.fill_ready_at, Cycle::new(100));
        assert_eq!(m.coalesced_count(), 1);
    }

    #[test]
    fn structural_stall_when_full() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(1), Cycle::new(50));
        m.allocate(LineAddr::new(2), Cycle::new(80));
        let outcome = m.check(LineAddr::new(3), Cycle::new(10));
        assert!(!outcome.coalesced);
        // Pushes back until line 1 retires at cycle 50.
        let bp = outcome.backpressure.expect("file is full");
        assert_eq!(bp.retry_at, Cycle::new(50));
        assert_eq!(outcome.issue_delay(Cycle::new(10)), 40);
        assert_eq!(m.structural_stalls(), 1);
    }

    #[test]
    fn completed_entries_retire() {
        let mut m = MshrFile::new(1);
        m.allocate(LineAddr::new(1), Cycle::new(20));
        // At cycle 30 the entry has completed, so a new miss issues freely.
        let outcome = m.check(LineAddr::new(2), Cycle::new(30));
        assert_eq!(outcome.backpressure, None);
        assert_eq!(m.in_flight(Cycle::new(30)), 0);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut m = MshrFile::new(0);
        let outcome = m.check(LineAddr::new(9), Cycle::new(0));
        assert_eq!(outcome.backpressure, None);
    }

    #[test]
    fn duplicate_allocate_is_ignored() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(5), Cycle::new(40));
        m.allocate(LineAddr::new(5), Cycle::new(90));
        let outcome = m.check(LineAddr::new(5), Cycle::new(0));
        assert_eq!(outcome.fill_ready_at, Cycle::new(40));
    }

    #[test]
    fn clear_empties_the_file() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(5), Cycle::new(40));
        m.clear();
        assert_eq!(m.in_flight(Cycle::new(0)), 0);
    }
}
