//! Miss status holding registers (MSHRs).
//!
//! Each cache level has a small number of MSHRs bounding the misses it can
//! have outstanding at once. In this latency-annotated model an MSHR entry is
//! simply "line X will be filled at cycle T": a new miss to the same line
//! coalesces onto the existing entry; a miss with no free entry must wait
//! until the earliest entry retires.

use simkit::addr::LineAddr;
use simkit::cycles::Cycle;

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    line: LineAddr,
    ready_at: Cycle,
}

/// What happened when a miss consulted the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrOutcome {
    /// Extra cycles the requester must wait *before* its miss can even be
    /// issued (structural stall because every MSHR was busy).
    pub issue_delay: u64,
    /// Whether the miss coalesced onto an existing in-flight entry for the
    /// same line; if so `fill_ready_at` is that entry's completion time.
    pub coalesced: bool,
    /// When the fill for this line completes (only meaningful if `coalesced`).
    pub fill_ready_at: Cycle,
}

/// A file of miss-status-holding registers.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    coalesced_count: u64,
    structural_stalls: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            entries: Vec::new(),
            capacity: capacity.max(1),
            coalesced_count: 0,
            structural_stalls: 0,
        }
    }

    /// Number of entries still in flight at `now`.
    pub fn in_flight(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.ready_at > now).count()
    }

    /// Total number of coalesced (secondary) misses observed.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced_count
    }

    /// Total number of structural stalls (no free MSHR) observed.
    pub fn structural_stalls(&self) -> u64 {
        self.structural_stalls
    }

    /// Consults the MSHR file for a miss to `line` at cycle `now`.
    ///
    /// If the line is already being fetched, the miss coalesces. Otherwise, if
    /// all MSHRs are busy, the returned `issue_delay` says how long the
    /// requester must wait for one to free up. The caller is expected to call
    /// [`MshrFile::allocate`] afterwards with the final completion time.
    pub fn check(&mut self, line: LineAddr, now: Cycle) -> MshrOutcome {
        self.retire_completed(now);
        if let Some(entry) = self.entries.iter().find(|e| e.line == line) {
            self.coalesced_count += 1;
            return MshrOutcome {
                issue_delay: 0,
                coalesced: true,
                fill_ready_at: entry.ready_at,
            };
        }
        if self.entries.len() < self.capacity {
            return MshrOutcome {
                issue_delay: 0,
                coalesced: false,
                fill_ready_at: now,
            };
        }
        // All MSHRs busy: wait for the earliest to retire.
        let earliest = self.entries.iter().map(|e| e.ready_at).min().unwrap_or(now);
        self.structural_stalls += 1;
        MshrOutcome {
            issue_delay: earliest.since(now),
            coalesced: false,
            fill_ready_at: earliest,
        }
    }

    /// Records that a miss to `line` will complete at `ready_at`.
    ///
    /// Callers should have used [`MshrFile::check`] first; allocating past
    /// capacity silently evicts the earliest-completing entry (the model
    /// equivalent of that entry having retired).
    pub fn allocate(&mut self, line: LineAddr, ready_at: Cycle) {
        if self.entries.iter().any(|e| e.line == line) {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.ready_at)
                .map(|(i, _)| i)
            {
                self.entries.remove(pos);
            }
        }
        self.entries.push(MshrEntry { line, ready_at });
    }

    /// Drops entries whose fills have completed by `now`.
    pub fn retire_completed(&mut self, now: Cycle) {
        self.entries.retain(|e| e.ready_at > now);
    }

    /// Clears every entry (used on context switches in some configurations).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_repeat_misses_to_same_line() {
        let mut m = MshrFile::new(4);
        let first = m.check(LineAddr::new(7), Cycle::new(0));
        assert!(!first.coalesced);
        m.allocate(LineAddr::new(7), Cycle::new(100));
        let second = m.check(LineAddr::new(7), Cycle::new(10));
        assert!(second.coalesced);
        assert_eq!(second.fill_ready_at, Cycle::new(100));
        assert_eq!(m.coalesced_count(), 1);
    }

    #[test]
    fn structural_stall_when_full() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(1), Cycle::new(50));
        m.allocate(LineAddr::new(2), Cycle::new(80));
        let outcome = m.check(LineAddr::new(3), Cycle::new(10));
        assert!(!outcome.coalesced);
        assert_eq!(outcome.issue_delay, 40); // waits for line 1 at cycle 50
        assert_eq!(m.structural_stalls(), 1);
    }

    #[test]
    fn completed_entries_retire() {
        let mut m = MshrFile::new(1);
        m.allocate(LineAddr::new(1), Cycle::new(20));
        // At cycle 30 the entry has completed, so a new miss issues freely.
        let outcome = m.check(LineAddr::new(2), Cycle::new(30));
        assert_eq!(outcome.issue_delay, 0);
        assert_eq!(m.in_flight(Cycle::new(30)), 0);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut m = MshrFile::new(0);
        let outcome = m.check(LineAddr::new(9), Cycle::new(0));
        assert_eq!(outcome.issue_delay, 0);
    }

    #[test]
    fn duplicate_allocate_is_ignored() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(5), Cycle::new(40));
        m.allocate(LineAddr::new(5), Cycle::new(90));
        let outcome = m.check(LineAddr::new(5), Cycle::new(0));
        assert_eq!(outcome.fill_ready_at, Cycle::new(40));
    }

    #[test]
    fn clear_empties_the_file() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr::new(5), Cycle::new(40));
        m.clear();
        assert_eq!(m.in_flight(Cycle::new(0)), 0);
    }
}
