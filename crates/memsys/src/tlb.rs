//! Translation look-aside buffers and a simple page-table abstraction.
//!
//! Each core has split instruction/data TLBs (Table 1: 64-entry, fully
//! associative). A TLB miss costs a fixed walk latency; the walker's cache
//! accesses are accounted by the hierarchy via a synthetic page-table address
//! so that walks touch the caches, which §4.7 of the paper discusses.
//!
//! The MuonTrap *filter TLB* lives in the `muontrap` crate and wraps one of
//! these TLBs; this module is the non-speculative substrate.

use std::collections::HashMap;

use simkit::addr::{PhysAddr, VirtAddr};

/// A per-process page table.
///
/// The default mapping places each process at a fixed physical offset so that
/// distinct processes never alias, and lets the OS model add explicit shared
/// mappings (used for attacker/victim shared memory in the litmus tests).
#[derive(Debug, Clone)]
pub struct PageTable {
    page_bytes: u64,
    phys_offset: u64,
    shared: HashMap<u64, u64>,
}

impl PageTable {
    /// Creates a page table whose default mapping is `pa = va + phys_offset`.
    ///
    /// # Panics
    /// Panics if `page_bytes` is not a power of two or `phys_offset` is not
    /// page aligned.
    pub fn new(page_bytes: u64, phys_offset: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert_eq!(
            phys_offset % page_bytes,
            0,
            "physical offset must be page aligned"
        );
        PageTable {
            page_bytes,
            phys_offset,
            shared: HashMap::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Maps virtual page `vpn` to physical page `ppn` explicitly (shared
    /// memory between processes is built from identical `ppn`s).
    pub fn map_shared(&mut self, vpn: u64, ppn: u64) {
        self.shared.insert(vpn, ppn);
    }

    /// Translates a virtual address to a physical address.
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        let vpn = va.page_number(self.page_bytes);
        let offset = va.page_offset(self.page_bytes);
        let ppn = self
            .shared
            .get(&vpn)
            .copied()
            .unwrap_or(vpn + self.phys_offset / self.page_bytes);
        PhysAddr::new(ppn * self.page_bytes + offset)
    }

    /// Translates a virtual page number to a physical page number.
    pub fn translate_page(&self, vpn: u64) -> u64 {
        self.shared
            .get(&vpn)
            .copied()
            .unwrap_or(vpn + self.phys_offset / self.page_bytes)
    }

    /// A synthetic physical address representing the page-table entry for
    /// `vpn`, used so hardware walks touch the cache hierarchy.
    pub fn pte_phys_addr(&self, vpn: u64) -> PhysAddr {
        // Page tables live in a dedicated physical region above 1 TiB so they
        // never collide with data.
        PhysAddr::new((1 << 40) + self.phys_offset + vpn * 8)
    }
}

/// Outcome of a TLB access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbAccess {
    /// The translated physical page number.
    pub ppn: u64,
    /// Whether the translation was already cached.
    pub hit: bool,
}

/// A fully-associative TLB with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64, u64)>, // (vpn, ppn, lru)
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        Tlb {
            entries: Vec::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached translations.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Looks up `vpn` without filling on a miss and without statistics.
    pub fn peek(&self, vpn: u64) -> Option<u64> {
        self.entries
            .iter()
            .find(|(v, _, _)| *v == vpn)
            .map(|(_, p, _)| *p)
    }

    /// Looks up `vpn`, consulting `page_table` and filling the TLB on a miss.
    pub fn access(&mut self, vpn: u64, page_table: &PageTable) -> TlbAccess {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.iter_mut().find(|(v, _, _)| *v == vpn) {
            entry.2 = tick;
            self.hits += 1;
            return TlbAccess {
                ppn: entry.1,
                hit: true,
            };
        }
        self.misses += 1;
        let ppn = page_table.translate_page(vpn);
        self.fill(vpn, ppn);
        TlbAccess { ppn, hit: false }
    }

    /// Inserts a translation, evicting the LRU entry if full.
    pub fn fill(&mut self, vpn: u64, ppn: u64) {
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(v, _, _)| *v == vpn) {
            entry.1 = ppn;
            entry.2 = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, lru))| *lru)
                .map(|(i, _)| i)
            {
                self.entries.remove(pos);
            }
        }
        self.entries.push((vpn, ppn, self.tick));
    }

    /// Invalidates every entry (context switch).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

/// Result of translating an address through an [`Mmu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical address.
    pub paddr: PhysAddr,
    /// Extra cycles spent on translation (zero on a TLB hit with zero-latency
    /// TLBs; the walk latency on a miss).
    pub latency: u64,
    /// Whether a page-table walk was required.
    pub walked: bool,
    /// The virtual page number that was translated (for filter-TLB tracking).
    pub vpn: u64,
}

/// Per-core memory-management unit: split instruction/data TLBs in front of a
/// process page table. The defenses own one of these per core; the OS model
/// swaps the page table on context switches.
#[derive(Debug, Clone)]
pub struct Mmu {
    itlb: Tlb,
    dtlb: Tlb,
    page_table: PageTable,
    hit_latency: u64,
    walk_latency: u64,
}

impl Mmu {
    /// Creates an MMU from the TLB configuration, initially mapping through
    /// `page_table`.
    pub fn new(config: &simkit::config::TlbConfig, page_table: PageTable) -> Self {
        Mmu {
            itlb: Tlb::new(config.entries),
            dtlb: Tlb::new(config.entries),
            page_table,
            hit_latency: config.hit_latency,
            walk_latency: config.walk_latency,
        }
    }

    /// Replaces the page table (context switch) and flushes both TLBs.
    pub fn set_page_table(&mut self, page_table: PageTable) {
        self.page_table = page_table;
        self.itlb.flush();
        self.dtlb.flush();
    }

    /// The page table currently installed.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Translates a data address.
    pub fn translate_data(&mut self, va: VirtAddr) -> Translation {
        Self::translate_with(
            &mut self.dtlb,
            &self.page_table,
            va,
            self.hit_latency,
            self.walk_latency,
        )
    }

    /// Translates an instruction address.
    pub fn translate_inst(&mut self, va: VirtAddr) -> Translation {
        Self::translate_with(
            &mut self.itlb,
            &self.page_table,
            va,
            self.hit_latency,
            self.walk_latency,
        )
    }

    /// Translates a data address *without* filling the main data TLB on a
    /// miss. MuonTrap uses this for speculative accesses whose translations
    /// must go to the filter TLB instead (§4.7).
    pub fn translate_data_no_fill(&mut self, va: VirtAddr) -> Translation {
        let vpn = va.page_number(self.page_table.page_bytes());
        let offset = va.page_offset(self.page_table.page_bytes());
        if let Some(ppn) = self.dtlb.peek(vpn) {
            return Translation {
                paddr: PhysAddr::new(ppn * self.page_table.page_bytes() + offset),
                latency: self.hit_latency,
                walked: false,
                vpn,
            };
        }
        let ppn = self.page_table.translate_page(vpn);
        Translation {
            paddr: PhysAddr::new(ppn * self.page_table.page_bytes() + offset),
            latency: self.walk_latency,
            walked: true,
            vpn,
        }
    }

    /// Installs a translation for `vpn` into the main data TLB (used when a
    /// speculative filter-TLB entry commits).
    pub fn fill_data_tlb(&mut self, vpn: u64) {
        let ppn = self.page_table.translate_page(vpn);
        self.dtlb.fill(vpn, ppn);
    }

    /// Data-TLB statistics: (hits, misses).
    pub fn dtlb_stats(&self) -> (u64, u64) {
        (self.dtlb.hits(), self.dtlb.misses())
    }

    fn translate_with(
        tlb: &mut Tlb,
        page_table: &PageTable,
        va: VirtAddr,
        hit_latency: u64,
        walk_latency: u64,
    ) -> Translation {
        let vpn = va.page_number(page_table.page_bytes());
        let offset = va.page_offset(page_table.page_bytes());
        let access = tlb.access(vpn, page_table);
        let latency = if access.hit {
            hit_latency
        } else {
            walk_latency
        };
        Translation {
            paddr: PhysAddr::new(access.ppn * page_table.page_bytes() + offset),
            latency,
            walked: !access.hit,
            vpn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable {
        PageTable::new(4096, 0x1000_0000)
    }

    #[test]
    fn default_mapping_adds_offset() {
        let table = pt();
        let pa = table.translate(VirtAddr::new(0x2345));
        assert_eq!(pa.raw(), 0x1000_0000 + 0x2345);
    }

    #[test]
    fn shared_mappings_override_default() {
        let mut table = pt();
        table.map_shared(4, 999);
        let pa = table.translate(VirtAddr::new(4 * 4096 + 12));
        assert_eq!(pa.raw(), 999 * 4096 + 12);
    }

    #[test]
    fn two_tables_with_same_shared_page_alias() {
        let mut a = PageTable::new(4096, 0x1000_0000);
        let mut b = PageTable::new(4096, 0x2000_0000);
        a.map_shared(10, 5000);
        b.map_shared(77, 5000);
        assert_eq!(
            a.translate(VirtAddr::new(10 * 4096)),
            b.translate(VirtAddr::new(77 * 4096))
        );
    }

    #[test]
    fn tlb_hits_after_fill() {
        let table = pt();
        let mut tlb = Tlb::new(4);
        let first = tlb.access(7, &table);
        assert!(!first.hit);
        let second = tlb.access(7, &table);
        assert!(second.hit);
        assert_eq!(first.ppn, second.ppn);
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn tlb_evicts_lru_when_full() {
        let table = pt();
        let mut tlb = Tlb::new(2);
        tlb.access(1, &table);
        tlb.access(2, &table);
        tlb.access(1, &table); // refresh 1; 2 becomes LRU
        tlb.access(3, &table); // evicts 2
        assert!(tlb.peek(1).is_some());
        assert!(tlb.peek(2).is_none());
        assert!(tlb.peek(3).is_some());
    }

    #[test]
    fn flush_empties_the_tlb() {
        let table = pt();
        let mut tlb = Tlb::new(4);
        tlb.access(1, &table);
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert!(!tlb.access(1, &table).hit);
    }

    #[test]
    fn pte_addresses_are_distinct_per_page() {
        let table = pt();
        assert_ne!(table.pte_phys_addr(1), table.pte_phys_addr(2));
        assert!(table.pte_phys_addr(1).raw() >= 1 << 40);
    }

    #[test]
    #[should_panic]
    fn misaligned_offset_panics() {
        let _ = PageTable::new(4096, 100);
    }

    fn mmu() -> Mmu {
        let cfg = simkit::config::SystemConfig::paper_default();
        Mmu::new(&cfg.tlb, pt())
    }

    #[test]
    fn mmu_translation_charges_walk_then_hits() {
        let mut m = mmu();
        let first = m.translate_data(VirtAddr::new(0x5000));
        assert!(first.walked);
        assert!(first.latency > 0);
        let second = m.translate_data(VirtAddr::new(0x5008));
        assert!(!second.walked);
        assert_eq!(second.paddr.raw(), first.paddr.raw() + 8);
    }

    #[test]
    fn mmu_instruction_and_data_tlbs_are_split() {
        let mut m = mmu();
        let _ = m.translate_inst(VirtAddr::new(0x40_0000));
        // The same page translated on the data side must still walk.
        let d = m.translate_data(VirtAddr::new(0x40_0000));
        assert!(d.walked);
    }

    #[test]
    fn mmu_no_fill_translation_leaves_dtlb_cold() {
        let mut m = mmu();
        let t = m.translate_data_no_fill(VirtAddr::new(0x7000));
        assert!(t.walked);
        // The main TLB was not filled, so a normal translation still walks.
        assert!(m.translate_data(VirtAddr::new(0x7000)).walked);
        // After an explicit fill it hits.
        m.fill_data_tlb(t.vpn);
        assert!(!m.translate_data(VirtAddr::new(0x7000)).walked);
    }

    #[test]
    fn mmu_page_table_swap_flushes_tlbs() {
        let mut m = mmu();
        let _ = m.translate_data(VirtAddr::new(0x5000));
        m.set_page_table(PageTable::new(4096, 0x2000_0000));
        let t = m.translate_data(VirtAddr::new(0x5000));
        assert!(t.walked);
        assert_eq!(t.paddr.raw(), 0x2000_0000 + 0x5000);
    }
}
