//! Banked open-row DRAM timing model.
//!
//! The paper's system uses DDR3-1600. We model the first-order behaviour that
//! matters for relative comparisons: per-bank row buffers (row hits are much
//! cheaper than row misses) and per-bank busy time, so bursts of misses to the
//! same bank queue behind each other.
//!
//! Each bank is a serialized [`TimedServer`]: an access starts when the bank
//! frees up, occupies it for the row hit/miss service time, and the returned
//! [`Ticket`](simkit::timeq::Ticket) names the completion cycle. The service
//! law's `bytes_per_cycle` is 0 (the data-bus transfer is folded into the
//! row latencies), which reproduces the original latency-annotated model
//! bit-for-bit.

use simkit::addr::LineAddr;
use simkit::config::DramConfig;
use simkit::cycles::Cycle;
use simkit::timeq::{ServiceLaw, TimedServer};

/// The result of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Total latency from the request cycle until data is returned.
    pub latency: u64,
    /// Whether the access hit in the open row of its bank.
    pub row_hit: bool,
}

#[derive(Debug, Clone)]
struct Bank {
    open_row: Option<u64>,
    /// One access at a time; requests queue behind the busy window. The
    /// per-request row hit/miss latency is supplied at request time.
    server: TimedServer,
}

/// A banked DRAM timing model with open-row tracking.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    line_bytes: u64,
    accesses: u64,
    row_hits: u64,
}

impl Dram {
    /// Creates a DRAM model.
    pub fn new(config: DramConfig, line_bytes: u64) -> Self {
        let bank = Bank {
            open_row: None,
            server: TimedServer::serialized(ServiceLaw::fixed(0)),
        };
        Dram {
            banks: vec![bank; config.banks.max(1)],
            config,
            line_bytes,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hits among those accesses.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Performs an access for `line` at cycle `now`, returning its latency and
    /// updating bank state.
    pub fn access(&mut self, line: LineAddr, now: Cycle) -> DramAccess {
        self.accesses += 1;
        let addr_bytes = line.raw() * self.line_bytes;
        let row = addr_bytes / self.config.row_bytes;
        let bank_idx = (row as usize) % self.banks.len();
        let line_bytes = self.line_bytes;
        let bank = &mut self.banks[bank_idx];

        let row_hit = bank.open_row == Some(row);
        let service = if row_hit {
            self.config.row_hit_latency
        } else {
            self.config.row_miss_latency
        };
        if row_hit {
            self.row_hits += 1;
        }
        bank.open_row = Some(row);
        // The bank is occupied for the service time; with the neutral law
        // (bytes_per_cycle = 0) the data-bus transfer is folded into it. The
        // queue is unbounded, so the request is always accepted.
        let ticket = bank
            .server
            .request_with_latency(now, service, line_bytes)
            .expect("unbounded bank queue never pushes back");

        DramAccess {
            latency: ticket.latency(now),
            row_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::config::SystemConfig;

    fn dram() -> Dram {
        let cfg = SystemConfig::paper_default();
        Dram::new(cfg.dram, cfg.line_bytes)
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut d = dram();
        let a = d.access(LineAddr::new(0), Cycle::ZERO);
        assert!(!a.row_hit);
        assert_eq!(
            a.latency,
            SystemConfig::paper_default().dram.row_miss_latency
        );
    }

    #[test]
    fn adjacent_lines_hit_the_open_row() {
        let mut d = dram();
        let _ = d.access(LineAddr::new(0), Cycle::ZERO);
        let a = d.access(LineAddr::new(1), Cycle::new(1000));
        assert!(a.row_hit);
        assert!(a.latency < SystemConfig::paper_default().dram.row_miss_latency);
    }

    #[test]
    fn distant_lines_in_same_bank_miss_the_row() {
        let cfg = SystemConfig::paper_default();
        let mut d = dram();
        let lines_per_row = cfg.dram.row_bytes / cfg.line_bytes;
        let banks = cfg.dram.banks as u64;
        let _ = d.access(LineAddr::new(0), Cycle::ZERO);
        // Same bank (row index differs by `banks`), different row.
        let far = LineAddr::new(lines_per_row * banks);
        let a = d.access(far, Cycle::new(10_000));
        assert!(!a.row_hit);
    }

    #[test]
    fn back_to_back_accesses_queue_behind_bank_busy_time() {
        let mut d = dram();
        let first = d.access(LineAddr::new(0), Cycle::ZERO);
        // Immediately issue another access to the same bank: it must wait.
        let second = d.access(LineAddr::new(1), Cycle::ZERO);
        assert!(
            second.latency > first.latency / 2,
            "second access should see queueing delay"
        );
        assert!(second.latency >= d.config.row_hit_latency);
    }

    #[test]
    fn statistics_accumulate() {
        let mut d = dram();
        let _ = d.access(LineAddr::new(0), Cycle::ZERO);
        let _ = d.access(LineAddr::new(1), Cycle::new(500));
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.row_hits(), 1);
    }
}
