//! System configuration mirroring Table 1 of the MuonTrap paper.
//!
//! Every experiment in the evaluation starts from [`SystemConfig::paper_default`]
//! and then adjusts the knobs it sweeps (filter-cache size, associativity,
//! protection toggles). The configuration is deliberately a plain data structure
//! with public fields so harnesses can tweak it, but constructed through
//! validated builders/constructors.

use std::fmt;

use crate::json::{Json, ToJson};

/// Parameters of a single set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set). Use `ways == lines` for full associativity.
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub hit_latency: u64,
    /// Number of Miss Status Holding Registers (outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Creates a cache configuration.
    ///
    /// # Panics
    /// Panics if `size_bytes` is zero or `ways` is zero.
    pub fn new(size_bytes: u64, ways: usize, hit_latency: u64, mshrs: usize) -> Self {
        assert!(size_bytes > 0, "cache size must be positive");
        assert!(ways > 0, "associativity must be positive");
        CacheConfig {
            size_bytes,
            ways,
            hit_latency,
            mshrs,
        }
    }

    /// Number of cache lines this cache holds for the given line size.
    pub fn num_lines(&self, line_bytes: u64) -> usize {
        ((self.size_bytes / line_bytes).max(1)) as usize
    }

    /// Number of sets for the given line size (lines / ways, at least one).
    pub fn num_sets(&self, line_bytes: u64) -> usize {
        let lines = self.num_lines(line_bytes);
        (lines / self.ways.min(lines)).max(1)
    }
}

/// Out-of-order pipeline parameters (Table 1, "Main cores").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    /// Fetch/issue/commit width in instructions per cycle.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Instruction-queue entries.
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Integer ALUs.
    pub int_alus: usize,
    /// Floating-point ALUs.
    pub fp_alus: usize,
    /// Multiply/divide units.
    pub mul_div_units: usize,
    /// Branch misprediction front-end refill penalty, in cycles.
    pub mispredict_penalty: u64,
}

/// Branch-predictor parameters (Table 1, "Tournament Branch Pred.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchPredictorConfig {
    /// Local history table entries.
    pub local_entries: usize,
    /// Global history table entries.
    pub global_entries: usize,
    /// Chooser table entries.
    pub chooser_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
}

/// TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Entries per TLB (split I/D).
    pub entries: usize,
    /// Hit latency in cycles (on top of the access).
    pub hit_latency: u64,
    /// Page-table walk latency in cycles on a TLB miss (memory accesses are
    /// modelled through the cache hierarchy in addition to this fixed cost).
    pub walk_latency: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
}

/// DRAM timing parameters (roughly DDR3-1600 11-11-11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Latency of a row-buffer hit, in core cycles.
    pub row_hit_latency: u64,
    /// Latency of a row-buffer miss (precharge + activate + CAS), in core cycles.
    pub row_miss_latency: u64,
    /// Number of banks (row buffers tracked).
    pub banks: usize,
    /// Bytes per DRAM row.
    pub row_bytes: u64,
}

/// Knobs of the MuonTrap protection mechanisms, used both by the `muontrap`
/// crate and by the cost-breakdown experiments (figures 8 and 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtectionConfig {
    /// Add the data filter cache (L0D).
    pub data_filter_cache: bool,
    /// Enforce the filter-cache commit/write-through protections. When false
    /// but `data_filter_cache` is true, the L0 behaves as an insecure L0.
    pub secure_filter: bool,
    /// Restrict speculative coherence transactions (§4.5).
    pub coherence_protection: bool,
    /// Add the instruction filter cache (§4.7).
    pub instruction_filter_cache: bool,
    /// Train/notify the prefetcher only at commit (§4.6).
    pub prefetch_at_commit: bool,
    /// Clear the filter caches on every misspeculation (§4.9).
    pub clear_on_misspeculate: bool,
    /// Access the L0 filter cache and L1 in parallel (§6.5).
    pub parallel_l1_access: bool,
    /// Add the filter TLB (§4.7).
    pub filter_tlb: bool,
}

impl ProtectionConfig {
    /// No protections at all: the unprotected baseline without any L0.
    pub fn unprotected() -> Self {
        ProtectionConfig {
            data_filter_cache: false,
            secure_filter: false,
            coherence_protection: false,
            instruction_filter_cache: false,
            prefetch_at_commit: false,
            clear_on_misspeculate: false,
            parallel_l1_access: false,
            filter_tlb: false,
        }
    }

    /// An insecure L0 cache with none of MuonTrap's protections (figure 8/9
    /// "insecure L0" series).
    pub fn insecure_l0() -> Self {
        ProtectionConfig {
            data_filter_cache: true,
            ..ProtectionConfig::unprotected()
        }
    }

    /// The full MuonTrap configuration used for figures 3 and 4.
    pub fn muontrap_default() -> Self {
        ProtectionConfig {
            data_filter_cache: true,
            secure_filter: true,
            coherence_protection: true,
            instruction_filter_cache: true,
            prefetch_at_commit: true,
            clear_on_misspeculate: false,
            parallel_l1_access: false,
            filter_tlb: true,
        }
    }

    /// MuonTrap plus clearing on every misspeculation (figure 8/9 final bar).
    pub fn muontrap_clear_on_misspeculate() -> Self {
        ProtectionConfig {
            clear_on_misspeculate: true,
            ..ProtectionConfig::muontrap_default()
        }
    }

    /// MuonTrap with parallel L0/L1 lookup (figure 9 "parallel L1d").
    pub fn muontrap_parallel_l1() -> Self {
        ProtectionConfig {
            parallel_l1_access: true,
            ..ProtectionConfig::muontrap_default()
        }
    }
}

impl Default for ProtectionConfig {
    fn default() -> Self {
        ProtectionConfig::muontrap_default()
    }
}

/// Complete system configuration, mirroring Table 1 of the paper.
///
/// All fields are integers/booleans, so the whole configuration is `Eq` and
/// `Hash`; the experiment session uses that to key its baseline-run cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Cache-line size in bytes, identical at every level (§4.1).
    pub line_bytes: u64,
    /// Out-of-order pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Branch-predictor parameters.
    pub branch_predictor: BranchPredictorConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Data filter cache (L0D).
    pub data_filter: CacheConfig,
    /// Instruction filter cache (L0I).
    pub inst_filter: CacheConfig,
    /// TLB parameters.
    pub tlb: TlbConfig,
    /// Filter TLB entries.
    pub filter_tlb_entries: usize,
    /// DRAM timing.
    pub dram: DramConfig,
    /// L2 stride-prefetcher degree (lines fetched ahead); zero disables it.
    pub prefetch_degree: usize,
    /// Scheduler time quantum in cycles (full-system runs context switch on it).
    pub scheduler_quantum: u64,
    /// Protection mechanism toggles.
    pub protection: ProtectionConfig,
}

impl SystemConfig {
    /// The configuration from Table 1 of the paper.
    pub fn paper_default() -> Self {
        SystemConfig {
            cores: 4,
            line_bytes: 64,
            pipeline: PipelineConfig {
                width: 8,
                rob_entries: 192,
                iq_entries: 64,
                lq_entries: 32,
                sq_entries: 32,
                int_alus: 6,
                fp_alus: 4,
                mul_div_units: 2,
                mispredict_penalty: 12,
            },
            branch_predictor: BranchPredictorConfig {
                local_entries: 2048,
                global_entries: 8192,
                chooser_entries: 2048,
                btb_entries: 4096,
                ras_entries: 16,
            },
            l1i: CacheConfig::new(32 * 1024, 2, 1, 4),
            l1d: CacheConfig::new(64 * 1024, 2, 2, 4),
            l2: CacheConfig::new(2 * 1024 * 1024, 8, 20, 16),
            data_filter: CacheConfig::new(2 * 1024, 4, 1, 4),
            inst_filter: CacheConfig::new(2 * 1024, 4, 1, 4),
            tlb: TlbConfig {
                entries: 64,
                hit_latency: 0,
                walk_latency: 30,
                page_bytes: 4096,
            },
            filter_tlb_entries: 16,
            dram: DramConfig {
                row_hit_latency: 80,
                row_miss_latency: 160,
                banks: 16,
                row_bytes: 8 * 1024,
            },
            prefetch_degree: 2,
            scheduler_quantum: 200_000,
            protection: ProtectionConfig::muontrap_default(),
        }
    }

    /// A scaled-down configuration for fast unit/integration tests: same shape,
    /// smaller structures so that simulations finish quickly.
    pub fn small_test() -> Self {
        let mut cfg = SystemConfig::paper_default();
        cfg.pipeline.rob_entries = 32;
        cfg.pipeline.iq_entries = 16;
        cfg.pipeline.lq_entries = 8;
        cfg.pipeline.sq_entries = 8;
        cfg.l1i = CacheConfig::new(4 * 1024, 2, 1, 4);
        cfg.l1d = CacheConfig::new(4 * 1024, 2, 2, 4);
        cfg.l2 = CacheConfig::new(64 * 1024, 8, 20, 8);
        cfg.data_filter = CacheConfig::new(512, 4, 1, 4);
        cfg.inst_filter = CacheConfig::new(512, 4, 1, 4);
        cfg.scheduler_quantum = 20_000;
        cfg
    }

    /// Returns a copy with the data filter cache resized to `size_bytes`
    /// bytes and `ways` ways, keeping its latency and MSHR count (used by the
    /// figure 5/6 filter-cache sweeps).
    pub fn with_data_filter(&self, size_bytes: u64, ways: usize) -> SystemConfig {
        let mut cfg = self.clone();
        cfg.data_filter = CacheConfig::new(
            size_bytes,
            ways,
            cfg.data_filter.hit_latency,
            cfg.data_filter.mshrs,
        );
        cfg
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("core count must be positive"));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new("line size must be a power of two"));
        }
        if self.pipeline.width == 0 || self.pipeline.rob_entries == 0 {
            return Err(ConfigError::new(
                "pipeline width and ROB size must be positive",
            ));
        }
        if self.pipeline.lq_entries == 0 || self.pipeline.sq_entries == 0 {
            return Err(ConfigError::new("load/store queues must be non-empty"));
        }
        for (name, c) in [
            ("l1i", &self.l1i),
            ("l1d", &self.l1d),
            ("l2", &self.l2),
            ("data_filter", &self.data_filter),
            ("inst_filter", &self.inst_filter),
        ] {
            if c.size_bytes < self.line_bytes {
                return Err(ConfigError::new(format!(
                    "cache {name} smaller than one line ({} < {})",
                    c.size_bytes, self.line_bytes
                )));
            }
        }
        if !self.tlb.page_bytes.is_power_of_two() {
            return Err(ConfigError::new("page size must be a power of two"));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cores: {}, line: {} B", self.cores, self.line_bytes)?;
        writeln!(
            f,
            "pipeline: {}-wide, ROB {}, IQ {}, LQ {}, SQ {}",
            self.pipeline.width,
            self.pipeline.rob_entries,
            self.pipeline.iq_entries,
            self.pipeline.lq_entries,
            self.pipeline.sq_entries
        )?;
        writeln!(
            f,
            "L1I {} KiB/{}-way/{}c  L1D {} KiB/{}-way/{}c  L2 {} KiB/{}-way/{}c",
            self.l1i.size_bytes / 1024,
            self.l1i.ways,
            self.l1i.hit_latency,
            self.l1d.size_bytes / 1024,
            self.l1d.ways,
            self.l1d.hit_latency,
            self.l2.size_bytes / 1024,
            self.l2.ways,
            self.l2.hit_latency
        )?;
        writeln!(
            f,
            "filter caches: D {} B/{}-way, I {} B/{}-way",
            self.data_filter.size_bytes,
            self.data_filter.ways,
            self.inst_filter.size_bytes,
            self.inst_filter.ways
        )?;
        write!(f, "protection: {:?}", self.protection)
    }
}

// The configuration's JSON form exists for one consumer: the result store's
// fingerprints. Field order is fixed and every knob that can change a
// simulation's outcome appears, so two configs fingerprint equal exactly when
// the simulations they describe are interchangeable.

impl ToJson for CacheConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("size_bytes", Json::UInt(self.size_bytes)),
            ("ways", Json::UInt(self.ways as u64)),
            ("hit_latency", Json::UInt(self.hit_latency)),
            ("mshrs", Json::UInt(self.mshrs as u64)),
        ])
    }
}

impl ToJson for PipelineConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("width", Json::UInt(self.width as u64)),
            ("rob_entries", Json::UInt(self.rob_entries as u64)),
            ("iq_entries", Json::UInt(self.iq_entries as u64)),
            ("lq_entries", Json::UInt(self.lq_entries as u64)),
            ("sq_entries", Json::UInt(self.sq_entries as u64)),
            ("int_alus", Json::UInt(self.int_alus as u64)),
            ("fp_alus", Json::UInt(self.fp_alus as u64)),
            ("mul_div_units", Json::UInt(self.mul_div_units as u64)),
            ("mispredict_penalty", Json::UInt(self.mispredict_penalty)),
        ])
    }
}

impl ToJson for BranchPredictorConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("local_entries", Json::UInt(self.local_entries as u64)),
            ("global_entries", Json::UInt(self.global_entries as u64)),
            ("chooser_entries", Json::UInt(self.chooser_entries as u64)),
            ("btb_entries", Json::UInt(self.btb_entries as u64)),
            ("ras_entries", Json::UInt(self.ras_entries as u64)),
        ])
    }
}

impl ToJson for TlbConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("entries", Json::UInt(self.entries as u64)),
            ("hit_latency", Json::UInt(self.hit_latency)),
            ("walk_latency", Json::UInt(self.walk_latency)),
            ("page_bytes", Json::UInt(self.page_bytes)),
        ])
    }
}

impl ToJson for DramConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("row_hit_latency", Json::UInt(self.row_hit_latency)),
            ("row_miss_latency", Json::UInt(self.row_miss_latency)),
            ("banks", Json::UInt(self.banks as u64)),
            ("row_bytes", Json::UInt(self.row_bytes)),
        ])
    }
}

impl ToJson for ProtectionConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("data_filter_cache", Json::Bool(self.data_filter_cache)),
            ("secure_filter", Json::Bool(self.secure_filter)),
            (
                "coherence_protection",
                Json::Bool(self.coherence_protection),
            ),
            (
                "instruction_filter_cache",
                Json::Bool(self.instruction_filter_cache),
            ),
            ("prefetch_at_commit", Json::Bool(self.prefetch_at_commit)),
            (
                "clear_on_misspeculate",
                Json::Bool(self.clear_on_misspeculate),
            ),
            ("parallel_l1_access", Json::Bool(self.parallel_l1_access)),
            ("filter_tlb", Json::Bool(self.filter_tlb)),
        ])
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cores", Json::UInt(self.cores as u64)),
            ("line_bytes", Json::UInt(self.line_bytes)),
            ("pipeline", self.pipeline.to_json()),
            ("branch_predictor", self.branch_predictor.to_json()),
            ("l1i", self.l1i.to_json()),
            ("l1d", self.l1d.to_json()),
            ("l2", self.l2.to_json()),
            ("data_filter", self.data_filter.to_json()),
            ("inst_filter", self.inst_filter.to_json()),
            ("tlb", self.tlb.to_json()),
            (
                "filter_tlb_entries",
                Json::UInt(self.filter_tlb_entries as u64),
            ),
            ("dram", self.dram.to_json()),
            ("prefetch_degree", Json::UInt(self.prefetch_degree as u64)),
            ("scheduler_quantum", Json::UInt(self.scheduler_quantum)),
            ("protection", self.protection.to_json()),
        ])
    }
}

/// Error returned by [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_1() {
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.pipeline.rob_entries, 192);
        assert_eq!(cfg.pipeline.iq_entries, 64);
        assert_eq!(cfg.pipeline.lq_entries, 32);
        assert_eq!(cfg.pipeline.sq_entries, 32);
        assert_eq!(cfg.l1i.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1d.size_bytes, 64 * 1024);
        assert_eq!(cfg.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.data_filter.size_bytes, 2 * 1024);
        assert_eq!(cfg.data_filter.ways, 4);
        assert_eq!(cfg.branch_predictor.btb_entries, 4096);
        assert_eq!(cfg.branch_predictor.ras_entries, 16);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn small_test_config_is_valid() {
        assert!(SystemConfig::small_test().validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_cores() {
        let mut cfg = SystemConfig::paper_default();
        cfg.cores = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_non_power_of_two_lines() {
        let mut cfg = SystemConfig::paper_default();
        cfg.line_bytes = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_sub_line_cache() {
        let mut cfg = SystemConfig::paper_default();
        cfg.data_filter = CacheConfig::new(32, 1, 1, 1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cache_geometry_is_consistent() {
        let c = CacheConfig::new(2048, 4, 1, 4);
        assert_eq!(c.num_lines(64), 32);
        assert_eq!(c.num_sets(64), 8);
        // Fully associative: ways larger than lines collapses to one set.
        let fa = CacheConfig::new(256, 64, 1, 4);
        assert_eq!(fa.num_lines(64), 4);
        assert_eq!(fa.num_sets(64), 1);
    }

    #[test]
    fn protection_presets_differ() {
        assert_ne!(
            ProtectionConfig::unprotected(),
            ProtectionConfig::muontrap_default()
        );
        assert!(ProtectionConfig::insecure_l0().data_filter_cache);
        assert!(!ProtectionConfig::insecure_l0().secure_filter);
        assert!(ProtectionConfig::muontrap_clear_on_misspeculate().clear_on_misspeculate);
        assert!(ProtectionConfig::muontrap_parallel_l1().parallel_l1_access);
    }

    #[test]
    fn config_json_covers_every_simulation_relevant_knob() {
        let json = SystemConfig::paper_default().to_json();
        for field in [
            "cores",
            "line_bytes",
            "pipeline",
            "branch_predictor",
            "l1i",
            "l1d",
            "l2",
            "data_filter",
            "inst_filter",
            "tlb",
            "filter_tlb_entries",
            "dram",
            "prefetch_degree",
            "scheduler_quantum",
            "protection",
        ] {
            assert!(json.get(field).is_some(), "missing field {field}");
        }
        // Changing any knob must change the JSON (spot-check a nested one).
        let mut swept = SystemConfig::paper_default();
        swept.protection.clear_on_misspeculate = true;
        assert_ne!(swept.to_json(), SystemConfig::paper_default().to_json());
        assert_ne!(
            SystemConfig::paper_default()
                .with_data_filter(64, 1)
                .to_json(),
            SystemConfig::paper_default().to_json()
        );
    }

    #[test]
    fn display_mentions_key_parameters() {
        let text = format!("{}", SystemConfig::paper_default());
        assert!(text.contains("ROB 192"));
        assert!(text.contains("filter caches"));
    }
}
