//! Address newtypes and cache-line arithmetic.
//!
//! The simulator distinguishes virtual addresses (what the core issues) from
//! physical addresses (what the memory hierarchy is indexed by), because the
//! MuonTrap filter cache is virtually indexed from the CPU side and physically
//! indexed from the memory side (§4.4 of the paper). [`LineAddr`] identifies a
//! cache line within the physical address space.

use std::fmt;

/// A virtual address as issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical address after translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A physical cache-line number (physical address divided by the line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw numeric value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Self {
        VirtAddr(self.0.wrapping_add(bytes))
    }

    /// Returns the virtual page number for a given page size.
    ///
    /// # Panics
    /// Panics if `page_bytes` is not a power of two.
    #[inline]
    pub fn page_number(self, page_bytes: u64) -> u64 {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.0 / page_bytes
    }

    /// Returns the offset of this address within its page.
    #[inline]
    pub fn page_offset(self, page_bytes: u64) -> u64 {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.0 & (page_bytes - 1)
    }
}

impl PhysAddr {
    /// Creates a physical address from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw numeric value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Self {
        PhysAddr(self.0.wrapping_add(bytes))
    }
}

impl LineAddr {
    /// Creates a line address directly from a line number.
    #[inline]
    pub const fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Computes the line containing physical address `pa` for `line_bytes`-byte lines.
    ///
    /// # Panics
    /// Panics if `line_bytes` is not a power of two.
    #[inline]
    pub fn from_phys(pa: PhysAddr, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(pa.0 / line_bytes)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of the line.
    #[inline]
    pub const fn base(self, line_bytes: u64) -> PhysAddr {
        PhysAddr(self.0 * line_bytes)
    }

    /// Returns the line `n` lines after this one.
    #[inline]
    pub const fn next(self, n: u64) -> Self {
        LineAddr(self.0.wrapping_add(n))
    }

    /// Returns the set index within a cache of `num_sets` sets.
    ///
    /// # Panics
    /// Panics if `num_sets` is zero.
    #[inline]
    pub fn set_index(self, num_sets: usize) -> usize {
        assert!(num_sets > 0, "cache must have at least one set");
        (self.0 % num_sets as u64) as usize
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_from_phys_truncates_offset() {
        let pa = PhysAddr::new(0x1043);
        let line = LineAddr::from_phys(pa, 64);
        assert_eq!(line.raw(), 0x1043 / 64);
        assert_eq!(line.base(64).raw(), 0x1040);
    }

    #[test]
    fn page_number_and_offset_partition_address() {
        let va = VirtAddr::new(0xdead_beef);
        let page = va.page_number(4096);
        let off = va.page_offset(4096);
        assert_eq!(page * 4096 + off, 0xdead_beef);
    }

    #[test]
    fn set_index_stays_in_range() {
        for l in 0..1000u64 {
            let idx = LineAddr::new(l).set_index(8);
            assert!(idx < 8);
        }
    }

    #[test]
    fn offsets_advance_addresses() {
        assert_eq!(VirtAddr::new(16).offset(48).raw(), 64);
        assert_eq!(PhysAddr::new(16).offset(48).raw(), 64);
        assert_eq!(LineAddr::new(3).next(2).raw(), 5);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_line_size_panics() {
        let _ = LineAddr::from_phys(PhysAddr::new(0), 48);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", VirtAddr::new(1)).is_empty());
        assert!(!format!("{}", PhysAddr::new(1)).is_empty());
        assert!(!format!("{}", LineAddr::new(1)).is_empty());
    }
}
